"""A data node: one partition's storage, locks, and processing capacity.

Mirrors the paper's deployment — each EC2 instance runs one PostgreSQL
server holding one data partition.  A node bundles:

* a :class:`~repro.storage.partition_store.PartitionStore` (the data),
* a :class:`~repro.locking.lock_manager.LockManager` (2PL on its tuples),
* a :class:`~repro.sim.resources.WorkServer` (CPU/IO capacity), and
* a connection-limit :class:`~repro.sim.resources.Resource` (the paper
  configures 100 simultaneous PostgreSQL connections per node).

Optionally a *capacity noise* process perturbs the node's service rate
over time, reproducing the cloud-environment capacity fluctuations the
paper's feedback controller is designed to absorb (§3.3).
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Any, Generator, Optional

from ..locking.deadlock import DeadlockDetector
from ..locking.lock_manager import LockManager
from ..sim.events import Event
from ..sim.resources import Resource, WorkServer
from ..storage.partition_store import PartitionStore
from ..types import NodeId, PartitionId

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.environment import Environment
    from ..storage.wal import WriteAheadLog


class DataNode:
    """One shared-nothing data node hosting a single partition."""

    def __init__(
        self,
        env: "Environment",
        node_id: NodeId,
        partition_id: PartitionId,
        capacity_units_per_s: float,
        max_connections: int = 100,
        detector: Optional[DeadlockDetector] = None,
    ) -> None:
        self.env = env
        self.node_id = node_id
        self.partition_id = partition_id
        self.store = PartitionStore(partition_id)
        self.locks = LockManager(env, detector, name=f"node{node_id}")
        self.server = WorkServer(env, rate=capacity_units_per_s, concurrency=1)
        self.connections = Resource(env, max_connections)
        self.base_rate = float(capacity_units_per_s)
        #: Optional write-ahead log; enabled via :meth:`enable_wal`.
        self.wal: Optional["WriteAheadLog"] = None
        #: ``True`` while crashed (between :meth:`crash` and :meth:`restart`).
        self.is_down = False
        self.crash_count = 0
        self._noise_process = None

    def enable_wal(self) -> "WriteAheadLog":
        """Attach a write-ahead log; the executor journals through it."""
        from ..storage.wal import WriteAheadLog

        if self.wal is None:
            self.wal = WriteAheadLog(self.partition_id)
        return self.wal

    # ------------------------------------------------------------------
    # Crash / restart (failure injection between transactions)
    # ------------------------------------------------------------------
    def crash(self) -> None:
        """Lose all volatile state: store contents and lock table.

        The write-ahead log (if enabled) survives, as durable storage
        would.  Intended for failure injection *between* transactions;
        crashing under in-flight transactions is outside the executor's
        supported envelope (as it would be for the paper's prototype
        without XA recovery).
        """
        if self.is_down:
            raise RuntimeError(f"node {self.node_id} is already down")
        self.is_down = True
        self.crash_count += 1
        self.store = PartitionStore(self.partition_id)
        self.locks = LockManager(
            self.env, self.locks.detector, name=f"node{self.node_id}"
        )

    def restart(self) -> "PartitionStore":
        """Come back up, recovering the store from the WAL if present."""
        if not self.is_down:
            raise RuntimeError(f"node {self.node_id} is not down")
        if self.wal is not None:
            from ..storage.wal import recover

            self.store = recover(self.wal)
        self.is_down = False
        return self.store

    def work(self, units: float) -> Generator[Event, Any, None]:
        """Process generator: consume ``units`` of this node's capacity."""
        yield from self.server.work(units)

    # ------------------------------------------------------------------
    # Capacity noise
    # ------------------------------------------------------------------
    def start_capacity_noise(
        self,
        rng: random.Random,
        interval_s: float,
        relative_sigma: float,
        floor_fraction: float = 0.3,
    ) -> None:
        """Perturb the service rate every ``interval_s`` seconds.

        Each tick draws a multiplicative factor from a normal distribution
        centred on 1 with standard deviation ``relative_sigma``, floored at
        ``floor_fraction`` of the base rate so the node never stalls.
        """
        if self._noise_process is not None:
            raise RuntimeError(f"capacity noise already running on {self!r}")
        if interval_s <= 0:
            raise ValueError(f"noise interval must be positive: {interval_s}")

        def noise() -> Generator[Event, Any, None]:
            while True:
                yield self.env.timeout(interval_s)
                factor = max(floor_fraction, rng.gauss(1.0, relative_sigma))
                self.server.rate = self.base_rate * factor

        self._noise_process = self.env.process(noise())

    def __repr__(self) -> str:
        return (
            f"<DataNode {self.node_id} partition={self.partition_id} "
            f"tuples={len(self.store)}>"
        )
