"""A data node: one partition's storage, locks, and processing capacity.

Mirrors the paper's deployment — each EC2 instance runs one PostgreSQL
server holding one data partition.  A node bundles:

* a :class:`~repro.storage.partition_store.PartitionStore` (the data),
* a :class:`~repro.locking.lock_manager.LockManager` (2PL on its tuples),
* a :class:`~repro.sim.resources.WorkServer` (CPU/IO capacity), and
* a connection-limit :class:`~repro.sim.resources.Resource` (the paper
  configures 100 simultaneous PostgreSQL connections per node).

Optionally a *capacity noise* process perturbs the node's service rate
over time, reproducing the cloud-environment capacity fluctuations the
paper's feedback controller is designed to absorb (§3.3).

Crash/restart semantics: :meth:`crash` is legal at any instant,
including under in-flight transactions — pending lock waits and queued
or in-service jobs fail with :class:`~repro.errors.NodeDownError`
(in-service jobs require :meth:`enable_fault_injection` first), the
volatile store and lock table are lost, and the capacity-noise process
pauses.  :meth:`restart` runs the recovery driver: replay the WAL,
checkpoint + truncate it when quiescent, restore the base service rate,
resume capacity noise, and rejoin the cluster.
"""

from __future__ import annotations

import enum
import random
from typing import TYPE_CHECKING, Any, Callable, Generator, Optional

from ..errors import NodeDownError
from ..locking.deadlock import DeadlockDetector
from ..locking.lock_manager import LockManager
from ..sim.events import Event, Interrupt
from ..sim.resources import Resource, WorkServer
from ..storage.partition_store import PartitionStore
from ..storage.wal import TupleStore
from ..types import NodeId, PartitionId

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.environment import Environment
    from ..storage.wal import WriteAheadLog

#: Builds the node's tuple store for its partition id.  The default is
#: the standard per-record store; large presets inject the memory-lean
#: :class:`~repro.storage.compact_store.CompactPartitionStore`.
StoreFactory = Callable[[PartitionId], TupleStore]


class NodeState(enum.Enum):
    """Membership lifecycle of a data node.

    ``JOINING → ACTIVE → DRAINING → RETIRED``, transitions driven only
    by the :class:`~repro.cluster.cluster.Cluster` membership API (the
    repro-lint rule RPR007 enforces this).  A node's crash/restart state
    (:attr:`DataNode.is_down`) is orthogonal: a DRAINING node can crash
    and be restarted mid-drain.
    """

    #: Provisioned and serving as a placement *target*, but not yet
    #: counted as a full member (no resident data initially).
    JOINING = "joining"
    #: Full member: serves reads/writes and is a placement target.
    ACTIVE = "active"
    #: Scheduled for removal: still serves its resident tuples, but mass
    #: migration is moving them off; no new placements land here.
    DRAINING = "draining"
    #: Removed from the serving set: holds no tuples, routes to it abort.
    RETIRED = "retired"


class DataNode:
    """One shared-nothing data node hosting a single partition."""

    def __init__(
        self,
        env: "Environment",
        node_id: NodeId,
        partition_id: PartitionId,
        capacity_units_per_s: float,
        max_connections: int = 100,
        detector: Optional[DeadlockDetector] = None,
        store_factory: StoreFactory = PartitionStore,
    ) -> None:
        self.env = env
        self.node_id = node_id
        self.partition_id = partition_id
        self.store_factory = store_factory
        self.store: TupleStore = store_factory(partition_id)
        self.locks = LockManager(env, detector, name=f"node{node_id}")
        self.server = WorkServer(env, rate=capacity_units_per_s, concurrency=1)
        self.connections = Resource(env, max_connections)
        self.base_rate = float(capacity_units_per_s)
        #: Optional write-ahead log; enabled via :meth:`enable_wal`.
        self.wal: Optional["WriteAheadLog"] = None
        #: Membership lifecycle state.  Mutated only by the cluster's
        #: membership API (:meth:`Cluster.add_node` and friends).
        self.state = NodeState.ACTIVE
        #: Fast-path mirror of ``state is NodeState.RETIRED`` for the
        #: transaction executor's per-lock admission check.
        self.retired = False
        #: ``True`` while crashed (between :meth:`crash` and :meth:`restart`).
        self.is_down = False
        self.crash_count = 0
        self.total_down_time_s = 0.0
        self._down_since: Optional[float] = None
        self._noise_process = None
        self._noise_config: Optional[
            tuple[random.Random, float, float, float]
        ] = None

    def enable_wal(self) -> "WriteAheadLog":
        """Attach a write-ahead log; the executor journals through it."""
        from ..storage.wal import WriteAheadLog

        if self.wal is None:
            self.wal = WriteAheadLog(self.partition_id)
        return self.wal

    def enable_fault_injection(self) -> None:
        """Prepare this node for mid-flight crashes.

        Makes the WAL the mandatory write path (attaching one and
        checkpointing the current store contents so pre-existing data
        survives a crash) and makes the work server interruptible so
        in-service jobs die with the node instead of completing on
        phantom capacity.
        """
        wal = self.enable_wal()
        if not wal.open_transactions:
            wal.log_checkpoint(self.store)
        self.server.make_interruptible()

    # ------------------------------------------------------------------
    # Crash / restart (failure injection, including mid-transaction)
    # ------------------------------------------------------------------
    def crash(self) -> None:
        """Lose all volatile state: store contents and lock table.

        The write-ahead log (if enabled) survives, as durable storage
        would.  Legal under in-flight transactions: every pending lock
        wait and queued job fails with
        :class:`~repro.errors.NodeDownError` immediately, and in-service
        jobs are killed too when :meth:`enable_fault_injection` was
        called.  The capacity-noise process (if any) is paused so a dead
        node's service rate stops fluctuating.
        """
        if self.is_down:
            raise RuntimeError(f"node {self.node_id} is already down")
        self.is_down = True
        self.crash_count += 1
        self._down_since = self.env.now
        self._pause_capacity_noise()
        # Wake everyone parked on this node before discarding the lock
        # table: events inside the old table would otherwise dangle
        # forever and deadlock the simulation.
        self.locks.fail_all_waiters(
            lambda txn_id, _key: NodeDownError(self.node_id, txn_id)
        )
        self.server.fail_all(lambda: NodeDownError(self.node_id))
        self.connections.fail_waiting(lambda: NodeDownError(self.node_id))
        self.store = self.store_factory(self.partition_id)
        self.locks = LockManager(
            self.env, self.locks.detector, name=f"node{self.node_id}"
        )

    def restart(self) -> TupleStore:
        """Recovery driver: replay the WAL, compact it, rejoin.

        The store is rebuilt from the log (committed effects only);
        when no distributed transaction still has an open BEGIN in the
        log, a fresh checkpoint is taken and older records truncated so
        the log does not grow without bound across crash cycles.  The
        service rate returns to ``base_rate`` and capacity noise, if it
        was running at crash time, resumes.
        """
        if not self.is_down:
            raise RuntimeError(f"node {self.node_id} is not down")
        if self.wal is not None:
            from ..storage.wal import recover

            self.store = recover(self.wal, self.store_factory)
            if not self.wal.open_transactions:
                self.wal.log_checkpoint(self.store)
                self.wal.truncate_before_checkpoint()
        self.is_down = False
        if self._down_since is not None:
            self.total_down_time_s += self.env.now - self._down_since
            self._down_since = None
        self.server.rate = self.base_rate
        self._resume_capacity_noise()
        return self.store

    def work(self, units: float) -> Generator[Event, Any, None]:
        """Process generator: consume ``units`` of this node's capacity."""
        if self.is_down:
            raise NodeDownError(self.node_id)
        yield from self.server.work(units)

    # ------------------------------------------------------------------
    # Capacity noise
    # ------------------------------------------------------------------
    def start_capacity_noise(
        self,
        rng: random.Random,
        interval_s: float,
        relative_sigma: float,
        floor_fraction: float = 0.3,
    ) -> None:
        """Perturb the service rate every ``interval_s`` seconds.

        Each tick draws a multiplicative factor from a normal distribution
        centred on 1 with standard deviation ``relative_sigma``, floored at
        ``floor_fraction`` of the base rate so the node never stalls.
        """
        if self._noise_process is not None:
            raise RuntimeError(f"capacity noise already running on {self!r}")
        if interval_s <= 0:
            raise ValueError(f"noise interval must be positive: {interval_s}")
        self._noise_config = (rng, interval_s, relative_sigma, floor_fraction)

        def noise() -> Generator[Event, Any, None]:
            try:
                while True:
                    yield self.env.timeout(interval_s)
                    factor = max(
                        floor_fraction, rng.gauss(1.0, relative_sigma)
                    )
                    self.server.rate = self.base_rate * factor
            except Interrupt:
                return

        self._noise_process = self.env.process(noise())

    def stop_capacity_noise(self) -> None:
        """Stop the noise process and restore the base service rate."""
        self._pause_capacity_noise()
        self._noise_config = None
        self.server.rate = self.base_rate

    def _pause_capacity_noise(self) -> None:
        """Halt noise ticks (node down); the config survives for resume."""
        process = self._noise_process
        self._noise_process = None
        if process is not None and process.is_alive:
            process.interrupt("node down")

    def _resume_capacity_noise(self) -> None:
        if self._noise_config is not None and self._noise_process is None:
            rng, interval_s, sigma, floor = self._noise_config
            self._noise_config = None
            self.start_capacity_noise(rng, interval_s, sigma, floor)

    def __repr__(self) -> str:
        return (
            f"<DataNode {self.node_id} partition={self.partition_id} "
            f"tuples={len(self.store)}>"
        )
