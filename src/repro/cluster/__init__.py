"""Simulated shared-nothing cluster: data nodes, network, deadlock scope."""

from .cluster import Cluster, ClusterConfig
from .node import DataNode

__all__ = ["Cluster", "ClusterConfig", "DataNode"]
