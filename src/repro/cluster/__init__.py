"""Simulated shared-nothing cluster: data nodes, network, deadlock scope."""

from .cluster import Cluster, ClusterConfig
from .node import DataNode, NodeState

__all__ = ["Cluster", "ClusterConfig", "DataNode", "NodeState"]
