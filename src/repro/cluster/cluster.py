"""Cluster assembly: nodes, the network, and shared deadlock detection."""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional

from ..errors import ConfigError, MembershipError
from ..locking.deadlock import DeadlockDetector
from ..sim.network import Network
from ..sim.random import RandomStreams
from ..storage.partition_store import PartitionStore
from ..types import NodeId, PartitionId
from .node import DataNode, NodeState, StoreFactory

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.environment import Environment


@dataclass(frozen=True)
class ClusterConfig:
    """Static description of the simulated cluster.

    Defaults follow the paper's testbed: 5 data nodes, one partition per
    node, 100 connections per node.  ``capacity_units_per_s`` is the work
    a node can serve per second; workload calibration expresses offered
    load relative to the sum of these rates.
    """

    node_count: int = 5
    capacity_units_per_s: float = 100.0
    max_connections: int = 100
    network_latency_s: float = 0.0005
    network_bandwidth_bytes_per_s: float = 100e6
    capacity_noise_sigma: float = 0.0
    capacity_noise_interval_s: float = 5.0

    def __post_init__(self) -> None:
        if self.node_count < 1:
            raise ConfigError(f"need at least one node, got {self.node_count}")
        if self.capacity_units_per_s <= 0:
            raise ConfigError("node capacity must be positive")
        if self.max_connections < 1:
            raise ConfigError("need at least one connection per node")
        if self.capacity_noise_sigma < 0:
            raise ConfigError("capacity noise sigma cannot be negative")


class Cluster:
    """The simulated shared-nothing cluster (one partition per node).

    Besides assembling the nodes, the cluster is the *membership
    authority*: every node-set mutation — adding a node, walking one
    through ``JOINING → ACTIVE → DRAINING → RETIRED`` — goes through
    the methods in the "Membership" section below.  Nothing outside
    ``repro.cluster`` may mutate ``nodes`` or a node's lifecycle state
    directly (enforced by repro-lint rule RPR007).
    """

    def __init__(
        self,
        env: "Environment",
        config: ClusterConfig,
        streams: Optional[RandomStreams] = None,
        store_factory: StoreFactory = PartitionStore,
    ) -> None:
        self.env = env
        self.config = config
        self._streams = streams
        self._store_factory = store_factory
        #: Called with each node added after construction (scale-out);
        #: the experiment runner uses this to wire fault injection and
        #: store loading for late joiners.
        self.on_node_added: list[Callable[[DataNode], None]] = []
        self.detector = DeadlockDetector()
        self.network = Network(
            env,
            latency_s=config.network_latency_s,
            bandwidth_bytes_per_s=config.network_bandwidth_bytes_per_s,
        )
        self.nodes: list[DataNode] = [
            DataNode(
                env,
                node_id=i,
                partition_id=i,
                capacity_units_per_s=config.capacity_units_per_s,
                max_connections=config.max_connections,
                detector=self.detector,
                store_factory=store_factory,
            )
            for i in range(config.node_count)
        ]
        self._by_partition: dict[PartitionId, DataNode] = {
            node.partition_id: node for node in self.nodes
        }
        if config.capacity_noise_sigma > 0:
            if streams is None:
                raise ConfigError(
                    "capacity noise requires a RandomStreams instance"
                )
            for node in self.nodes:
                node.start_capacity_noise(
                    streams.stream(f"capacity-noise-{node.node_id}"),
                    interval_s=config.capacity_noise_interval_s,
                    relative_sigma=config.capacity_noise_sigma,
                )

    @property
    def partition_ids(self) -> list[PartitionId]:
        """Partition ids of all non-RETIRED nodes, in node order."""
        return [
            node.partition_id
            for node in self.nodes
            if node.state is not NodeState.RETIRED
        ]

    @property
    def placement_partition_ids(self) -> list[PartitionId]:
        """Partitions new placements may target (ACTIVE ∪ JOINING).

        This is the node set the optimizer and the drain/rebalance
        planners work against: the *post-transition* serving set, so
        migrations never land tuples on a node that is on its way out.
        """
        return [
            node.partition_id
            for node in self.nodes
            if node.state in (NodeState.ACTIVE, NodeState.JOINING)
        ]

    @property
    def total_capacity_units_per_s(self) -> float:
        """Aggregate base service rate across non-RETIRED nodes."""
        return sum(
            node.base_rate
            for node in self.nodes
            if node.state is not NodeState.RETIRED
        )

    def node(self, node_id: NodeId) -> DataNode:
        """Node by id."""
        try:
            return self.nodes[node_id]
        except IndexError:
            raise ConfigError(f"unknown node id {node_id}") from None

    def node_for_partition(self, partition_id: PartitionId) -> DataNode:
        """The node hosting ``partition_id``."""
        node = self._by_partition.get(partition_id)
        if node is None:
            raise ConfigError(f"no node hosts partition {partition_id}")
        return node

    def tuples_per_partition(self) -> dict[PartitionId, int]:
        """Resident tuple counts, for balance assertions in tests."""
        return {node.partition_id: len(node.store) for node in self.nodes}

    # ------------------------------------------------------------------
    # Membership (the only legal way to mutate the node set)
    # ------------------------------------------------------------------
    def add_node(self) -> DataNode:
        """Provision one new node in JOINING state (scale-out).

        The node gets the next id and its own fresh partition, inherits
        the cluster's capacity/connection configuration, and — like the
        seed nodes — a deterministic per-node capacity-noise stream when
        noise is configured.  ``on_node_added`` observers fire last so
        they see a fully wired node.
        """
        config = self.config
        node = DataNode(
            self.env,
            node_id=len(self.nodes),
            partition_id=len(self.nodes),
            capacity_units_per_s=config.capacity_units_per_s,
            max_connections=config.max_connections,
            detector=self.detector,
            store_factory=self._store_factory,
        )
        node.state = NodeState.JOINING
        self.nodes.append(node)
        self._by_partition[node.partition_id] = node
        if config.capacity_noise_sigma > 0:
            if self._streams is None:
                raise ConfigError(
                    "capacity noise requires a RandomStreams instance"
                )
            node.start_capacity_noise(
                self._streams.stream(f"capacity-noise-{node.node_id}"),
                interval_s=config.capacity_noise_interval_s,
                relative_sigma=config.capacity_noise_sigma,
            )
        for callback in self.on_node_added:
            callback(node)
        return node

    def state_of(self, node_id: NodeId) -> NodeState:
        """Lifecycle state of ``node_id``."""
        return self.node(node_id).state

    def activate(self, node_id: NodeId) -> None:
        """JOINING → ACTIVE: the joiner finished absorbing its share."""
        node = self.node(node_id)
        if node.state is not NodeState.JOINING:
            raise MembershipError(
                f"cannot activate node {node_id} in state {node.state.value}"
            )
        node.state = NodeState.ACTIVE

    def begin_drain(self, node_id: NodeId) -> None:
        """ACTIVE → DRAINING: stop targeting the node, start moving data."""
        node = self.node(node_id)
        if node.state is not NodeState.ACTIVE:
            raise MembershipError(
                f"cannot drain node {node_id} in state {node.state.value}"
            )
        node.state = NodeState.DRAINING

    def retire(self, node_id: NodeId) -> None:
        """DRAINING → RETIRED: the drain finished; leave the serving set.

        Refuses while the node still holds tuples — retirement must
        never strand data.  The retired node stays in ``nodes`` (ids and
        list indices remain stable) but stops counting toward capacity,
        stops fluctuating, and the executor aborts any stale route that
        still points at it.
        """
        node = self.node(node_id)
        if node.state is not NodeState.DRAINING:
            raise MembershipError(
                f"cannot retire node {node_id} in state {node.state.value}"
            )
        if len(node.store) > 0:
            raise MembershipError(
                f"cannot retire node {node_id}: "
                f"{len(node.store)} tuple(s) still resident"
            )
        node.state = NodeState.RETIRED
        node.retired = True
        if node._noise_config is not None or node._noise_process is not None:
            node.stop_capacity_noise()

    def nodes_in(self, *states: NodeState) -> list[DataNode]:
        """All nodes currently in any of ``states``, in node order."""
        return [node for node in self.nodes if node.state in states]

    def state_counts(self) -> dict[str, int]:
        """Node count per lifecycle state (keys are state values)."""
        counts = {state.value: 0 for state in NodeState}
        for node in self.nodes:
            counts[node.state.value] += 1
        return counts
