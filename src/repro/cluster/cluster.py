"""Cluster assembly: nodes, the network, and shared deadlock detection."""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from ..errors import ConfigError
from ..locking.deadlock import DeadlockDetector
from ..sim.network import Network
from ..sim.random import RandomStreams
from ..storage.partition_store import PartitionStore
from ..types import NodeId, PartitionId
from .node import DataNode, StoreFactory

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.environment import Environment


@dataclass(frozen=True)
class ClusterConfig:
    """Static description of the simulated cluster.

    Defaults follow the paper's testbed: 5 data nodes, one partition per
    node, 100 connections per node.  ``capacity_units_per_s`` is the work
    a node can serve per second; workload calibration expresses offered
    load relative to the sum of these rates.
    """

    node_count: int = 5
    capacity_units_per_s: float = 100.0
    max_connections: int = 100
    network_latency_s: float = 0.0005
    network_bandwidth_bytes_per_s: float = 100e6
    capacity_noise_sigma: float = 0.0
    capacity_noise_interval_s: float = 5.0

    def __post_init__(self) -> None:
        if self.node_count < 1:
            raise ConfigError(f"need at least one node, got {self.node_count}")
        if self.capacity_units_per_s <= 0:
            raise ConfigError("node capacity must be positive")
        if self.max_connections < 1:
            raise ConfigError("need at least one connection per node")
        if self.capacity_noise_sigma < 0:
            raise ConfigError("capacity noise sigma cannot be negative")


class Cluster:
    """The simulated shared-nothing cluster (one partition per node)."""

    def __init__(
        self,
        env: "Environment",
        config: ClusterConfig,
        streams: Optional[RandomStreams] = None,
        store_factory: StoreFactory = PartitionStore,
    ) -> None:
        self.env = env
        self.config = config
        self.detector = DeadlockDetector()
        self.network = Network(
            env,
            latency_s=config.network_latency_s,
            bandwidth_bytes_per_s=config.network_bandwidth_bytes_per_s,
        )
        self.nodes: list[DataNode] = [
            DataNode(
                env,
                node_id=i,
                partition_id=i,
                capacity_units_per_s=config.capacity_units_per_s,
                max_connections=config.max_connections,
                detector=self.detector,
                store_factory=store_factory,
            )
            for i in range(config.node_count)
        ]
        self._by_partition: dict[PartitionId, DataNode] = {
            node.partition_id: node for node in self.nodes
        }
        if config.capacity_noise_sigma > 0:
            if streams is None:
                raise ConfigError(
                    "capacity noise requires a RandomStreams instance"
                )
            for node in self.nodes:
                node.start_capacity_noise(
                    streams.stream(f"capacity-noise-{node.node_id}"),
                    interval_s=config.capacity_noise_interval_s,
                    relative_sigma=config.capacity_noise_sigma,
                )

    @property
    def partition_ids(self) -> list[PartitionId]:
        """All partition ids, in node order."""
        return [node.partition_id for node in self.nodes]

    @property
    def total_capacity_units_per_s(self) -> float:
        """Aggregate base service rate across all nodes."""
        return sum(node.base_rate for node in self.nodes)

    def node(self, node_id: NodeId) -> DataNode:
        """Node by id."""
        try:
            return self.nodes[node_id]
        except IndexError:
            raise ConfigError(f"unknown node id {node_id}") from None

    def node_for_partition(self, partition_id: PartitionId) -> DataNode:
        """The node hosting ``partition_id``."""
        node = self._by_partition.get(partition_id)
        if node is None:
            raise ConfigError(f"no node hosts partition {partition_id}")
        return node

    def tuples_per_partition(self) -> dict[PartitionId, int]:
        """Resident tuple counts, for balance assertions in tests."""
        return {node.partition_id: len(node.store) for node in self.nodes}
