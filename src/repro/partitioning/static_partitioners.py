"""Static (workload-oblivious) partitioners: hash and range.

These are the "basic algorithms using some static functions" the paper's
related-work section contrasts with workload-aware approaches.  They are
used to create the *initial* placement a workload-aware plan then
improves on, and serve as baselines in the ablation benchmarks.
"""

from __future__ import annotations

from typing import Sequence

from ..errors import PartitioningError
from ..types import PartitionId, TupleKey
from .plan import PartitionPlan


def _check_partitions(partitions: Sequence[PartitionId]) -> None:
    if not partitions:
        raise PartitioningError("need at least one partition")
    if len(set(partitions)) != len(partitions):
        raise PartitioningError(f"duplicate partition ids: {partitions}")


class HashPartitioner:
    """Assigns each key to ``partitions[key mod n]``."""

    def __init__(self, partitions: Sequence[PartitionId]) -> None:
        _check_partitions(partitions)
        self.partitions = list(partitions)

    def partition_of(self, key: TupleKey) -> PartitionId:
        """Partition for one key."""
        return self.partitions[key % len(self.partitions)]

    def plan_for(self, keys: Sequence[TupleKey]) -> PartitionPlan:
        """Build a full plan for ``keys``."""
        plan = PartitionPlan()
        for key in keys:
            plan.assign(key, self.partition_of(key))
        return plan


class RangePartitioner:
    """Splits the key space ``[0, key_space)`` into contiguous ranges."""

    def __init__(
        self, partitions: Sequence[PartitionId], key_space: int
    ) -> None:
        _check_partitions(partitions)
        if key_space < 1:
            raise PartitioningError(f"key space must be >= 1: {key_space}")
        self.partitions = list(partitions)
        self.key_space = key_space
        n = len(self.partitions)
        self._range_size = (key_space + n - 1) // n

    def partition_of(self, key: TupleKey) -> PartitionId:
        """Partition for one key."""
        if not 0 <= key < self.key_space:
            raise PartitioningError(
                f"key {key} outside key space [0, {self.key_space})"
            )
        return self.partitions[key // self._range_size]

    def boundaries(self) -> list[tuple[TupleKey, TupleKey]]:
        """Half-open key ranges per partition, in partition order."""
        result = []
        for i in range(len(self.partitions)):
            low = i * self._range_size
            high = min(self.key_space, (i + 1) * self._range_size)
            result.append((low, high))
        return result

    def plan_for(self, keys: Sequence[TupleKey]) -> PartitionPlan:
        """Build a full plan for ``keys``."""
        plan = PartitionPlan()
        for key in keys:
            plan.assign(key, self.partition_of(key))
        return plan
