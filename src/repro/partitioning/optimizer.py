"""The cost-based repartition optimizer (paper §2.2).

The optimizer periodically inspects the workload history, estimates near-
future performance, and — when the estimate falls below a threshold —
derives a repartition plan.  The planning strategy here is the
collocation heuristic underlying Schism-style partitioners specialised to
the paper's workload: for every transaction type whose tuples are spread
over several partitions, pick a single target partition (preferring the
partition already holding most of its tuples, tie-broken toward the
least-loaded partition) and collocate the type's tuples there.

Load balance is maintained by tracking the frequency-weighted work each
partition will carry under the plan.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Sequence

from ..errors import ConfigError
from ..routing.epoch import MapView
from ..types import PartitionId
from .cost_model import CostModel
from .plan import PartitionPlan



if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from repro.workload.profile import TransactionType, WorkloadProfile

@dataclass(frozen=True)
class OptimizerConfig:
    """Tuning knobs for the collocation optimizer."""

    #: Re-plan is triggered when estimated utilisation exceeds this.
    utilisation_threshold: float = 0.9
    #: Only consider types whose cost actually improves (paper line 4 of
    #: Algorithm 1 drops zero-benefit operations).
    require_positive_benefit: bool = True


class RepartitionOptimizer:
    """Derives collocation plans and decides when repartitioning is due."""

    def __init__(
        self,
        cost_model: CostModel,
        partitions: Sequence[PartitionId],
        config: Optional[OptimizerConfig] = None,
    ) -> None:
        if not partitions:
            raise ConfigError("optimizer needs at least one partition")
        self.cost_model = cost_model
        self.partitions = list(partitions)
        self.config = config or OptimizerConfig()

    # ------------------------------------------------------------------
    # Trigger
    # ------------------------------------------------------------------
    def should_repartition(
        self,
        arrival_rate_txn_per_s: float,
        profile: WorkloadProfile,
        current: MapView,
        capacity_units_per_s: float,
    ) -> bool:
        """Whether estimated utilisation breaches the threshold."""
        if capacity_units_per_s <= 0:
            raise ConfigError("capacity must be positive")
        mean_cost = self.cost_model.expected_cost_per_txn(
            profile.types, current
        )
        utilisation = arrival_rate_txn_per_s * mean_cost / capacity_units_per_s
        return utilisation > self.config.utilisation_threshold

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------
    def derive_plan(
        self,
        profile: WorkloadProfile,
        current: MapView,
        types_to_fix: Optional[Sequence[TransactionType]] = None,
    ) -> PartitionPlan:
        """Collocate each (selected) type's tuples on one partition.

        Types are processed hottest-first so the most beneficial
        placements get first pick of partitions; keys claimed by a hotter
        type are not reassigned by a colder one.
        """
        plan = PartitionPlan()
        load: dict[PartitionId, float] = {p: 0.0 for p in self.partitions}

        # Seed loads with what is already resident.
        index = profile.key_index()
        for ttype in profile.types:
            home = self._current_home(ttype, current)
            load[home] = load.get(home, 0.0) + ttype.frequency

        candidates = list(types_to_fix) if types_to_fix is not None else list(
            profile.types
        )
        candidates.sort(key=lambda t: (-t.frequency, t.type_id))

        claimed: set[int] = set()
        for ttype in candidates:
            keys = [k for k in ttype.keys if k not in claimed]
            if not keys:
                continue
            partitions_now = {current.primary_of(k) for k in ttype.keys}
            if len(partitions_now) == 1:
                continue  # already collocated, nothing to plan
            target = self._choose_target(ttype, current, load)
            for key in ttype.keys:
                plan.assign(key, target)
                claimed.add(key)
            # Update load estimate: the type now runs on its target.
            previous_home = self._current_home(ttype, current)
            load[previous_home] -= ttype.frequency
            load[target] += ttype.frequency
            # Types sharing keys with this one are constrained; skip them
            # by claiming their keys is sufficient (handled above).
            for key in ttype.keys:
                for other in index.get(key, ()):  # pragma: no branch
                    if other.type_id != ttype.type_id:
                        claimed.update(other.keys)
        return plan

    def _current_home(
        self, ttype: TransactionType, current: MapView
    ) -> PartitionId:
        """The partition carrying the type's work now (majority partition)."""
        counts: dict[PartitionId, int] = {}
        for key in ttype.keys:
            pid = current.primary_of(key)
            counts[pid] = counts.get(pid, 0) + 1
        return min(counts, key=lambda p: (-counts[p], p))

    def _choose_target(
        self,
        ttype: TransactionType,
        current: MapView,
        load: dict[PartitionId, float],
    ) -> PartitionId:
        """Pick the collocation target for one type.

        Prefer the partition already holding the most of the type's
        tuples (fewest migrations); break ties toward the least-loaded
        partition, then by id for determinism.
        """
        counts: dict[PartitionId, int] = {p: 0 for p in self.partitions}
        for key in ttype.keys:
            pid = current.primary_of(key)
            if pid in counts:
                counts[pid] += 1
        return min(
            self.partitions,
            key=lambda p: (-counts[p], load.get(p, 0.0), p),
        )
