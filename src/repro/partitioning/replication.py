"""Read-replication planning (the paper's other two operation kinds).

The optimizer of §2.2 emits three operation types; migrations dominate
the paper's evaluation, but *new replica creation* and *replica
deletion* exist for spreading read load over copies, with the query
router choosing which replica a read visits.

:class:`ReadReplicationPlanner` emits those operations: it replicates
the hottest read-mostly tuples onto the least-loaded partitions (one
:class:`CreateReplica` per new copy) and plans :class:`DeleteReplica`
cleanups for tuples that are no longer hot.  The resulting operations
are packaged into ranked specs directly (one repartition transaction
per tuple), compatible with every SOAP scheduler.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import count
from typing import TYPE_CHECKING, Sequence

from ..errors import PartitioningError
from ..routing.epoch import MapView
from ..types import PartitionId, TupleKey
from .cost_model import CostModel
from .operations import CreateReplica, DeleteReplica, RepartitionOperation

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from repro.workload.profile import WorkloadProfile


@dataclass(frozen=True)
class ReplicationConfig:
    """Replication policy knobs."""

    #: Replicas each hot tuple should end up with (including primary).
    target_replicas: int = 2
    #: Fraction of profiled tuples (by access frequency) considered hot.
    hot_fraction: float = 0.05

    def __post_init__(self) -> None:
        if self.target_replicas < 1:
            raise PartitioningError("need at least one replica")
        if not 0.0 < self.hot_fraction <= 1.0:
            raise PartitioningError("hot fraction must be in (0, 1]")


class ReadReplicationPlanner:
    """Plans replica creation/deletion for hot tuples."""

    def __init__(
        self,
        partitions: Sequence[PartitionId],
        config: ReplicationConfig | None = None,
    ) -> None:
        if not partitions:
            raise PartitioningError("need at least one partition")
        self.partitions = list(partitions)
        self.config = config or ReplicationConfig()

    # ------------------------------------------------------------------
    # Hot-set selection
    # ------------------------------------------------------------------
    def hot_keys(self, profile: "WorkloadProfile") -> list[TupleKey]:
        """The hottest keys by summed accessing-type frequency."""
        heat: dict[TupleKey, float] = {}
        for ttype in profile.types:
            for key in ttype.keys:
                heat[key] = heat.get(key, 0.0) + ttype.frequency
        ordered = sorted(heat, key=lambda k: (-heat[k], k))
        take = max(1, int(len(ordered) * self.config.hot_fraction))
        return ordered[:take]

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------
    def plan_replication(
        self,
        profile: "WorkloadProfile",
        current: MapView,
        start_op_id: int = 0,
    ) -> list[RepartitionOperation]:
        """CreateReplica ops bringing hot keys to the target count."""
        ids = count(start_op_id)
        load = dict.fromkeys(self.partitions, 0)
        for pid, size in current.partition_sizes().items():
            if pid in load:
                load[pid] = size
        ops: list[RepartitionOperation] = []
        for key in self.hot_keys(profile):
            replicas = set(current.replicas_of(key))
            needed = min(
                self.config.target_replicas, len(self.partitions)
            ) - len(replicas)
            source = current.primary_of(key)
            for _ in range(max(0, needed)):
                candidates = [
                    p for p in self.partitions if p not in replicas
                ]
                if not candidates:
                    break
                target = min(candidates, key=lambda p: (load[p], p))
                ops.append(
                    CreateReplica(
                        op_id=next(ids),
                        key=key,
                        source=source,
                        destination=target,
                    )
                )
                replicas.add(target)
                load[target] += 1
        return ops

    def plan_cleanup(
        self,
        profile: "WorkloadProfile",
        current: MapView,
        start_op_id: int = 0,
    ) -> list[RepartitionOperation]:
        """DeleteReplica ops removing extra copies of no-longer-hot keys."""
        ids = count(start_op_id)
        hot = set(self.hot_keys(profile))
        ops: list[RepartitionOperation] = []
        for key in current.keys():
            replicas = current.replicas_of(key)
            if key in hot or len(replicas) <= 1:
                continue
            for pid in replicas[1:]:  # keep the primary
                ops.append(
                    DeleteReplica(op_id=next(ids), key=key, partition=pid)
                )
        return ops

    # ------------------------------------------------------------------
    # Packaging for the schedulers
    # ------------------------------------------------------------------
    def build_specs(
        self,
        ops: Sequence[RepartitionOperation],
        profile: "WorkloadProfile",
        cost_model: CostModel,
    ) -> list:
        """One ranked repartition transaction (spec) per tuple.

        The benefit of replicating a tuple is proportional to the read
        frequency the extra copy absorbs.  Returns
        :class:`~repro.core.ranking.RepartitionTransactionSpec` objects
        (imported lazily: ``core`` builds on ``partitioning``).
        """
        from ..core.ranking import RepartitionTransactionSpec

        index = profile.key_index()
        by_key: dict[TupleKey, list[RepartitionOperation]] = {}
        for op in ops:
            by_key.setdefault(op.key, []).append(op)
        specs = []
        for key, group in by_key.items():
            accessing = index.get(key, [])
            heat = sum(t.frequency for t in accessing)
            type_id = accessing[0].type_id if accessing else -1
            specs.append(
                RepartitionTransactionSpec(
                    ops=list(group),
                    type_id=type_id,
                    benefit=heat,
                    cost=cost_model.rep_txn_cost(group),
                )
            )
        specs.sort(key=lambda spec: (-spec.benefit_density, spec.type_id))
        return specs
