"""A Schism-style graph partitioner (Curino et al., VLDB 2010).

Schism models tuples as graph nodes with edges weighted by how often two
tuples are accessed by the same transaction, then partitions the graph
to minimise the weight of cut edges (distributed transactions) subject
to balance.  This implementation:

1. builds the co-access graph from a :class:`WorkloadProfile` (each
   transaction type contributes a clique over its keys, weighted by the
   type's frequency);
2. collapses connected components (indivisible tuple groups — cutting
   inside one would create a distributed transaction);
3. bin-packs components onto partitions by descending weight, always
   into the currently lightest partition (LPT scheduling), which keeps
   the frequency-weighted load balanced;
4. optionally refines oversized components with Kernighan–Lin bisection
   when a single component exceeds a partition's fair share.

The result is a :class:`PartitionPlan` usable by the SOAP pipeline
exactly like the collocation optimizer's plans.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Sequence

import networkx as nx

from ..errors import PartitioningError
from ..types import PartitionId, TupleKey
from .plan import PartitionPlan



if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from repro.workload.profile import WorkloadProfile

@dataclass(frozen=True)
class GraphPartitionerConfig:
    """Tuning knobs for the graph partitioner."""

    #: Components heavier than ``oversize_factor * fair_share`` get split.
    oversize_factor: float = 1.5
    #: Maximum Kernighan–Lin refinement passes per split.
    kl_max_iter: int = 10
    #: Seed for the (deterministic) KL refinement.
    seed: int = 0


class GraphPartitioner:
    """Workload-aware graph partitioning in the spirit of Schism."""

    def __init__(
        self,
        partitions: Sequence[PartitionId],
        config: Optional[GraphPartitionerConfig] = None,
    ) -> None:
        if not partitions:
            raise PartitioningError("need at least one partition")
        self.partitions = list(partitions)
        self.config = config or GraphPartitionerConfig()

    # ------------------------------------------------------------------
    # Graph construction
    # ------------------------------------------------------------------
    def build_graph(self, profile: WorkloadProfile) -> nx.Graph:
        """Co-access graph: nodes are keys, edge weights are co-access freq."""
        graph = nx.Graph()
        for ttype in profile.types:
            keys = ttype.keys
            graph.add_nodes_from(keys)
            for i, key_a in enumerate(keys):
                for key_b in keys[i + 1 :]:
                    if graph.has_edge(key_a, key_b):
                        graph[key_a][key_b]["weight"] += ttype.frequency
                    else:
                        graph.add_edge(key_a, key_b, weight=ttype.frequency)
            for key in keys:
                node = graph.nodes[key]
                node["weight"] = node.get("weight", 0.0) + ttype.frequency
        return graph

    # ------------------------------------------------------------------
    # Partitioning
    # ------------------------------------------------------------------
    def derive_plan(self, profile: WorkloadProfile) -> PartitionPlan:
        """Partition the co-access graph into a placement plan."""
        graph = self.build_graph(profile)
        if graph.number_of_nodes() == 0:
            return PartitionPlan()

        components = self._weighted_components(graph)
        fair_share = sum(w for _keys, w in components) / len(self.partitions)
        limit = self.config.oversize_factor * max(fair_share, 1e-12)

        pieces: list[tuple[list[TupleKey], float]] = []
        for keys, weight in components:
            if weight > limit and len(keys) > 1:
                pieces.extend(self._split(graph, keys, weight, limit))
            else:
                pieces.append((keys, weight))

        # LPT bin packing: heaviest piece first onto the lightest partition.
        pieces.sort(key=lambda item: (-item[1], item[0][0]))
        load: dict[PartitionId, float] = {p: 0.0 for p in self.partitions}
        plan = PartitionPlan()
        for keys, weight in pieces:
            target = min(self.partitions, key=lambda p: (load[p], p))
            for key in keys:
                plan.assign(key, target)
            load[target] += weight
        return plan

    def cut_weight(self, profile: WorkloadProfile, plan: PartitionPlan) -> float:
        """Total frequency of transaction types the plan leaves distributed."""
        cut = 0.0
        for ttype in profile.types:
            targets = {plan.target_of(k) for k in ttype.keys}
            if len(targets) > 1:
                cut += ttype.frequency
        return cut

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _weighted_components(
        self, graph: nx.Graph
    ) -> list[tuple[list[TupleKey], float]]:
        components = []
        for nodes in nx.connected_components(graph):
            ordered = sorted(nodes)
            weight = sum(graph.nodes[n].get("weight", 0.0) for n in ordered)
            components.append((ordered, weight))
        components.sort(key=lambda item: item[0][0])
        return components

    def _split(
        self,
        graph: nx.Graph,
        keys: list[TupleKey],
        weight: float,
        limit: float,
    ) -> list[tuple[list[TupleKey], float]]:
        """Recursively bisect an oversized component with Kernighan–Lin."""
        if weight <= limit or len(keys) <= 1:
            return [(keys, weight)]
        subgraph = graph.subgraph(keys)
        side_a, side_b = nx.algorithms.community.kernighan_lin_bisection(
            subgraph,
            max_iter=self.config.kl_max_iter,
            weight="weight",
            seed=self.config.seed,
        )
        result: list[tuple[list[TupleKey], float]] = []
        for side in (side_a, side_b):
            side_keys = sorted(side)
            side_weight = sum(
                graph.nodes[n].get("weight", 0.0) for n in side_keys
            )
            result.extend(self._split(graph, side_keys, side_weight, limit))
        return result
