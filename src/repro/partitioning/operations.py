"""Repartition operations — the unit of work in a repartition plan.

The paper's optimizer emits three operation types (§2.2):

* **new replica creation** — insert a replica of a tuple into a partition
  that holds none;
* **replica deletion** — remove one specific replica of a multi-replica
  tuple;
* **objects migration** — relocate a tuple between partitions, realised
  as replica creation at the destination followed by deletion at the
  source.

Each operation carries a mutable ``benefit`` accumulator filled in by
Algorithm 1 (see :mod:`repro.core.ranking`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from ..errors import PartitioningError
from ..types import PartitionId, TupleKey


@dataclass
class RepartitionOperation:
    """Base class for the three repartition operation kinds."""

    op_id: int
    key: TupleKey
    benefit: float = field(default=0.0, compare=False)

    @property
    def partitions_touched(self) -> frozenset[PartitionId]:
        """Partitions that participate in executing this operation."""
        raise NotImplementedError

    @property
    def kind(self) -> str:
        """Short operation-kind tag for logs and reports."""
        raise NotImplementedError


@dataclass
class CreateReplica(RepartitionOperation):
    """Insert a new replica of ``key`` into ``destination``."""

    source: PartitionId = 0
    destination: PartitionId = 0

    def __post_init__(self) -> None:
        if self.source == self.destination:
            raise PartitioningError(
                f"replica creation for tuple {self.key} has identical "
                f"source and destination {self.source}"
            )

    @property
    def partitions_touched(self) -> frozenset[PartitionId]:
        return frozenset((self.source, self.destination))

    @property
    def kind(self) -> str:
        return "create-replica"


@dataclass
class DeleteReplica(RepartitionOperation):
    """Delete the replica of ``key`` residing on ``partition``."""

    partition: PartitionId = 0

    @property
    def partitions_touched(self) -> frozenset[PartitionId]:
        return frozenset((self.partition,))

    @property
    def kind(self) -> str:
        return "delete-replica"


@dataclass
class Migrate(RepartitionOperation):
    """Relocate ``key`` from ``source`` to ``destination``."""

    source: PartitionId = 0
    destination: PartitionId = 0

    def __post_init__(self) -> None:
        if self.source == self.destination:
            raise PartitioningError(
                f"migration of tuple {self.key} has identical source and "
                f"destination {self.source}"
            )

    @property
    def partitions_touched(self) -> frozenset[PartitionId]:
        return frozenset((self.source, self.destination))

    @property
    def kind(self) -> str:
        return "migrate"


def keys_of(operations: Iterator[RepartitionOperation]) -> set[TupleKey]:
    """The set of tuple keys an operation list touches."""
    return {op.key for op in operations}
