"""Partition plans and plan diffing.

A :class:`PartitionPlan` is the *target* placement the optimizer wants:
a mapping from tuple key to the partition that should hold its primary
replica.  :func:`diff_plan` compares a plan against the current
:class:`~repro.routing.partition_map.PartitionMap` and emits the
repartition operations needed to realise it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import count
from typing import Iterator, Optional

from ..errors import PartitioningError
from ..routing.partition_map import PartitionMap
from ..types import PartitionId, TupleKey
from .operations import Migrate, RepartitionOperation


@dataclass
class PartitionPlan:
    """Target primary placement for a set of tuples.

    Tuples absent from the plan keep their current placement.
    """

    assignment: dict[TupleKey, PartitionId] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.assignment)

    def __contains__(self, key: TupleKey) -> bool:
        return key in self.assignment

    def target_of(self, key: TupleKey) -> Optional[PartitionId]:
        """Planned partition of ``key``, or ``None`` if unconstrained."""
        return self.assignment.get(key)

    def assign(self, key: TupleKey, partition_id: PartitionId) -> None:
        """Set (or overwrite) the target partition for ``key``."""
        self.assignment[key] = partition_id

    def partitions_used(self) -> frozenset[PartitionId]:
        """All partitions the plan places tuples on."""
        return frozenset(self.assignment.values())

    def keys(self) -> Iterator[TupleKey]:
        """Iterate planned keys."""
        return iter(self.assignment)

    def effective_partition(
        self, key: TupleKey, current: PartitionMap
    ) -> PartitionId:
        """Where ``key`` lives once the plan is deployed."""
        target = self.assignment.get(key)
        if target is not None:
            return target
        return current.primary_of(key)


def diff_plan(
    current: PartitionMap,
    plan: PartitionPlan,
    start_op_id: int = 0,
) -> list[RepartitionOperation]:
    """Compute the migrations turning ``current`` into ``plan``.

    Only primary placement is diffed (the paper's evaluation moves
    single-replica tuples); replica-creation/deletion operations are
    emitted by replication-oriented planners directly.
    """
    ids = count(start_op_id)
    operations: list[RepartitionOperation] = []
    for key, target in plan.assignment.items():
        if key not in current:
            raise PartitioningError(f"plan references unmapped tuple {key}")
        source = current.primary_of(key)
        if source != target:
            operations.append(
                Migrate(op_id=next(ids), key=key, source=source, destination=target)
            )
    return operations


def plan_from_map(current: PartitionMap) -> PartitionPlan:
    """Snapshot the current placement as a plan (identity plan)."""
    plan = PartitionPlan()
    for key in current.keys():
        plan.assign(key, current.primary_of(key))
    return plan
