"""Partition plans and plan diffing.

A :class:`PartitionPlan` is the *target* placement the optimizer wants:
a mapping from tuple key to the partition that should hold its primary
replica.  :func:`diff_plan` compares a plan against the current
placement — a mutable :class:`~repro.routing.partition_map.PartitionMap`
or, preferably, an immutable :class:`~repro.routing.epoch.MapEpoch`
snapshot so the diff is computed against one consistent map version —
and emits the repartition operations needed to realise it.
:func:`deltas_for_operations` expresses those operations as the
canonical :class:`~repro.routing.epoch.MapDelta` records the
:class:`~repro.routing.epoch.PartitionMapStore` publishes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import count
from typing import Iterator, Optional, Sequence

from ..errors import PartitioningError
from ..routing.epoch import MapDelta, MapView
from ..types import PartitionId, TupleKey
from .operations import (
    CreateReplica,
    DeleteReplica,
    Migrate,
    RepartitionOperation,
)


@dataclass
class PartitionPlan:
    """Target primary placement for a set of tuples.

    Tuples absent from the plan keep their current placement.
    """

    assignment: dict[TupleKey, PartitionId] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.assignment)

    def __contains__(self, key: TupleKey) -> bool:
        return key in self.assignment

    def target_of(self, key: TupleKey) -> Optional[PartitionId]:
        """Planned partition of ``key``, or ``None`` if unconstrained."""
        return self.assignment.get(key)

    def assign(self, key: TupleKey, partition_id: PartitionId) -> None:
        """Set (or overwrite) the target partition for ``key``."""
        self.assignment[key] = partition_id

    def partitions_used(self) -> frozenset[PartitionId]:
        """All partitions the plan places tuples on."""
        return frozenset(self.assignment.values())

    def keys(self) -> Iterator[TupleKey]:
        """Iterate planned keys."""
        return iter(self.assignment)

    def effective_partition(
        self, key: TupleKey, current: MapView
    ) -> PartitionId:
        """Where ``key`` lives once the plan is deployed."""
        target = self.assignment.get(key)
        if target is not None:
            return target
        return current.primary_of(key)


def diff_plan(
    current: MapView,
    plan: PartitionPlan,
    start_op_id: int = 0,
) -> list[RepartitionOperation]:
    """Compute the migrations turning ``current`` into ``plan``.

    Only primary placement is diffed (the paper's evaluation moves
    single-replica tuples); replica-creation/deletion operations are
    emitted by replication-oriented planners directly.
    """
    ids = count(start_op_id)
    operations: list[RepartitionOperation] = []
    for key, target in plan.assignment.items():
        if key not in current:
            raise PartitioningError(f"plan references unmapped tuple {key}")
        source = current.primary_of(key)
        if source != target:
            operations.append(
                Migrate(op_id=next(ids), key=key, source=source, destination=target)
            )
    return operations


def plan_from_map(current: MapView) -> PartitionPlan:
    """Snapshot the current placement as a plan (identity plan)."""
    plan = PartitionPlan()
    for key in current.keys():
        plan.assign(key, current.primary_of(key))
    return plan


def deltas_for_operations(
    current: MapView, operations: Sequence[RepartitionOperation]
) -> list[MapDelta]:
    """Express repartition operations as canonical map deltas.

    Each delta captures the full replica tuple ``before`` → ``after``
    against ``current`` (with earlier operations of the same sequence
    already applied), which is exactly what a
    :class:`~repro.routing.epoch.PartitionMapStore` stage publishes —
    useful for previewing an epoch transition without touching the map.
    """
    pending: dict[TupleKey, tuple[PartitionId, ...]] = {}

    def replicas(key: TupleKey) -> tuple[PartitionId, ...]:
        return pending.get(key, tuple(current.replicas_of(key)))

    for op in operations:
        before = replicas(op.key)
        if isinstance(op, Migrate):
            if op.source not in before or op.destination in before:
                raise PartitioningError(
                    f"migration of tuple {op.key} does not apply to "
                    f"replicas {before}"
                )
            after = tuple(
                op.destination if pid == op.source else pid
                for pid in before
            )
        elif isinstance(op, CreateReplica):
            if op.destination in before:
                raise PartitioningError(
                    f"tuple {op.key} already has a replica on partition "
                    f"{op.destination}"
                )
            after = before + (op.destination,)
        elif isinstance(op, DeleteReplica):
            if op.partition not in before or len(before) == 1:
                raise PartitioningError(
                    f"replica deletion of tuple {op.key} does not apply "
                    f"to replicas {before}"
                )
            after = tuple(pid for pid in before if pid != op.partition)
        else:  # pragma: no cover - future op kinds
            raise PartitioningError(f"unknown operation {op!r}")
        pending[op.key] = after

    return [
        MapDelta(
            key=key,
            before=tuple(current.replicas_of(key)),
            after=after,
        )
        for key, after in sorted(pending.items())
    ]
