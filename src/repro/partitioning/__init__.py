"""Partitioning: plans, repartition operations, cost model, and planners."""

from .cost_model import DISTRIBUTED_COST_FACTOR, CostModel
from .graph_partitioner import GraphPartitioner, GraphPartitionerConfig
from .operations import (
    CreateReplica,
    DeleteReplica,
    Migrate,
    RepartitionOperation,
)
from .optimizer import OptimizerConfig, RepartitionOptimizer
from .plan import (
    PartitionPlan,
    deltas_for_operations,
    diff_plan,
    plan_from_map,
)
from .replication import ReadReplicationPlanner, ReplicationConfig
from .static_partitioners import HashPartitioner, RangePartitioner

__all__ = [
    "CostModel",
    "CreateReplica",
    "DISTRIBUTED_COST_FACTOR",
    "DeleteReplica",
    "GraphPartitioner",
    "GraphPartitionerConfig",
    "HashPartitioner",
    "Migrate",
    "OptimizerConfig",
    "PartitionPlan",
    "RangePartitioner",
    "ReadReplicationPlanner",
    "ReplicationConfig",
    "RepartitionOperation",
    "RepartitionOptimizer",
    "deltas_for_operations",
    "diff_plan",
    "plan_from_map",
]
