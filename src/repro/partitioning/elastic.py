"""Placement planning for elastic membership events.

Two planners translate a membership transition into the repartition
operations that realise it, both emitting plain
:class:`~repro.partitioning.operations.RepartitionOperation` lists so
the standard SOAP pipeline — Algorithm 1 ranking, epoch-staged
execution, scheduler-driven deployment — applies unchanged:

* :func:`plan_drain` empties a DRAINING partition: every resident tuple
  is migrated to the least-loaded surviving placement target (spare
  replicas on the draining partition are simply deleted);
* :func:`plan_rebalance` fills JOINING partitions toward the cluster
  mean, moving the *coldest* tuples first so the collocation groups the
  optimizer assembled stay intact.

Both walk keys in sorted order and break ties by partition id, so a
given epoch + node set always yields the same plan — the elastic
experiments stay bit-identical between serial and parallel runs.
"""

from __future__ import annotations

from itertools import count
from typing import Optional, Sequence

from ..errors import PartitioningError
from ..routing.epoch import MapView
from ..types import PartitionId, TupleKey
from ..workload.profile import WorkloadProfile
from .operations import DeleteReplica, Migrate, RepartitionOperation
from .plan import PartitionPlan


def _least_loaded(
    loads: dict[PartitionId, int], targets: Sequence[PartitionId]
) -> PartitionId:
    """The emptiest target partition (ties broken by id)."""
    return min(targets, key=lambda pid: (loads.get(pid, 0), pid))


def plan_drain(
    epoch: MapView,
    draining: Sequence[PartitionId],
    targets: Sequence[PartitionId],
) -> tuple[PartitionPlan, list[RepartitionOperation]]:
    """Operations that empty ``draining`` partitions onto ``targets``.

    Single-replica tuples (the common case) are migrated to the
    currently least-loaded target; redundant replicas of multi-replica
    tuples are deleted in place.  The returned plan records the target
    primary of every migrated tuple so Algorithm 1 can credit the
    transaction types whose cost improves.
    """
    drain_set = set(draining)
    target_list = [pid for pid in targets if pid not in drain_set]
    if not target_list:
        raise PartitioningError(
            f"cannot drain partitions {sorted(drain_set)}: "
            "no surviving placement targets"
        )
    loads = epoch.partition_sizes()
    ids = count()
    plan = PartitionPlan()
    operations: list[RepartitionOperation] = []
    for key in sorted(epoch.keys()):
        replicas = tuple(epoch.replicas_of(key))
        resident = [pid for pid in replicas if pid in drain_set]
        if not resident:
            continue
        survivors = len(replicas) - len(resident)
        for pid in resident:
            if survivors > 0:
                # Another replica outlives the drain: drop this one.
                operations.append(
                    DeleteReplica(op_id=next(ids), key=key, partition=pid)
                )
                loads[pid] = loads.get(pid, 0) - 1
                continue
            destination = _least_loaded(loads, target_list)
            operations.append(
                Migrate(
                    op_id=next(ids),
                    key=key,
                    source=pid,
                    destination=destination,
                )
            )
            plan.assign(key, destination)
            loads[pid] = loads.get(pid, 0) - 1
            loads[destination] = loads.get(destination, 0) + 1
            survivors += 1
    return plan, operations


def _key_heat(
    key: TupleKey, profile: Optional[WorkloadProfile]
) -> float:
    if profile is None:
        return 0.0
    return sum(t.frequency for t in profile.key_index().get(key, ()))


def plan_rebalance(
    epoch: MapView,
    joining: Sequence[PartitionId],
    targets: Sequence[PartitionId],
    profile: Optional[WorkloadProfile] = None,
) -> tuple[PartitionPlan, list[RepartitionOperation]]:
    """Operations that fill ``joining`` partitions toward the mean.

    ``targets`` is the full post-transition placement set (ACTIVE ∪
    JOINING); each joining partition receives tuples until it holds its
    fair share ``total // len(targets)``.  Donors are the currently
    most-loaded non-joining targets, and candidate tuples move coldest
    first (workload-profile access frequency, unprofiled tuples count as
    stone cold) so hot collocated groups are disturbed last — keeping
    the distributed-transaction cost the optimizer just minimised.
    Multi-replica tuples are left to the replication planners.
    """
    join_set = set(joining)
    if not join_set:
        return PartitionPlan(), []
    unknown = join_set.difference(targets)
    if unknown:
        raise PartitioningError(
            f"joining partitions {sorted(unknown)} are not placement targets"
        )
    loads = epoch.partition_sizes()
    total = sum(loads.get(pid, 0) for pid in targets)
    share = total // len(targets)
    wanted = {
        pid: max(0, share - loads.get(pid, 0)) for pid in sorted(join_set)
    }
    if not any(wanted.values()):
        return PartitionPlan(), []

    candidates = []
    for key in epoch.keys():
        replicas = tuple(epoch.replicas_of(key))
        if len(replicas) != 1 or replicas[0] in join_set:
            continue
        candidates.append((_key_heat(key, profile), key, replicas[0]))
    candidates.sort(key=lambda item: (item[0], item[1]))

    ids = count()
    plan = PartitionPlan()
    operations: list[RepartitionOperation] = []
    for _, key, source in candidates:
        if not any(wanted.values()):
            break
        if loads.get(source, 0) <= share:
            continue  # donor already at (or below) its fair share
        destination = min(
            (pid for pid in wanted if wanted[pid] > 0),
            key=lambda pid: (loads.get(pid, 0), pid),
        )
        operations.append(
            Migrate(
                op_id=next(ids), key=key, source=source, destination=destination
            )
        )
        plan.assign(key, destination)
        loads[source] = loads.get(source, 0) - 1
        loads[destination] = loads.get(destination, 0) + 1
        wanted[destination] -= 1
    return plan, operations
