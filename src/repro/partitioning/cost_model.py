"""The transaction cost model of §3.1 (following Schism [4]).

If all tuples accessed by a transaction are collocated on one partition,
running it costs ``C_i``; if it must touch more than one partition it
costs ``2·C_i``.  From this the model derives:

* the cost of a transaction type under the original map O or a plan P,
* the **benefit** of a repartition transaction,
  ``B_j = Σ_i f_i (C_i(O) − C_i(P))`` over affected normal transactions,
* the cost of a repartition transaction (per-operation work), and
* the **benefit density** ``B_j / C_j`` used to rank repartition
  transactions for scheduling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Optional, Sequence

from ..errors import ConfigError
from ..routing.epoch import MapView
from ..types import PartitionId, TupleKey
from .operations import RepartitionOperation
from .plan import PartitionPlan


if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from repro.workload.profile import TransactionType

#: Multiplier the paper applies to the cost of distributed transactions.
DISTRIBUTED_COST_FACTOR = 2.0


@dataclass(frozen=True)
class CostModel:
    """Work-unit costs for normal and repartition transactions.

    Parameters
    ----------
    base_cost:
        ``C_i`` — work units to run a collocated normal transaction.
    rep_op_cost:
        Work units to execute one repartition operation (lock, copy,
        transfer, insert, delete).
    """

    base_cost: float = 1.0
    rep_op_cost: float = 0.5
    #: Fraction of a repartition operation's cost saved when it
    #: piggybacks on a normal transaction (§3.4: the carrier already
    #: holds the locks and pays the distributed-commit overhead, so
    #: only the data movement itself remains).
    piggyback_discount: float = 0.75

    def __post_init__(self) -> None:
        if self.base_cost <= 0:
            raise ConfigError(f"base_cost must be positive: {self.base_cost}")
        if self.rep_op_cost <= 0:
            raise ConfigError(
                f"rep_op_cost must be positive: {self.rep_op_cost}"
            )
        if not 0.0 <= self.piggyback_discount < 1.0:
            raise ConfigError(
                f"piggyback_discount must be in [0, 1): "
                f"{self.piggyback_discount}"
            )

    def piggybacked_op_cost(self) -> float:
        """Work units for one repartition op riding inside a carrier."""
        return self.rep_op_cost * (1.0 - self.piggyback_discount)

    # ------------------------------------------------------------------
    # Normal transaction costs
    # ------------------------------------------------------------------
    def txn_cost(self, partitions_touched: int) -> float:
        """Cost of a transaction touching ``partitions_touched`` partitions."""
        if partitions_touched < 1:
            raise ConfigError(
                f"a transaction must touch >= 1 partition: {partitions_touched}"
            )
        if partitions_touched == 1:
            return self.base_cost
        return self.base_cost * DISTRIBUTED_COST_FACTOR

    def partitions_under_map(
        self, keys: Sequence[TupleKey], current: MapView
    ) -> frozenset[PartitionId]:
        """Partitions the keys occupy under the current map."""
        return frozenset(current.primary_of(key) for key in keys)

    def partitions_under_plan(
        self,
        keys: Sequence[TupleKey],
        plan: PartitionPlan,
        current: MapView,
    ) -> frozenset[PartitionId]:
        """Partitions the keys will occupy once ``plan`` is deployed."""
        return frozenset(
            plan.effective_partition(key, current) for key in keys
        )

    def cost_under_map(
        self, keys: Sequence[TupleKey], current: MapView
    ) -> float:
        """``C_i(O)``: the type's cost under the current placement."""
        return self.txn_cost(len(self.partitions_under_map(keys, current)))

    def cost_under_plan(
        self,
        keys: Sequence[TupleKey],
        plan: PartitionPlan,
        current: MapView,
    ) -> float:
        """``C_i(P)``: the type's cost once the plan is deployed."""
        return self.txn_cost(
            len(self.partitions_under_plan(keys, plan, current))
        )

    def improvement(
        self,
        ttype: TransactionType,
        plan: PartitionPlan,
        current: MapView,
    ) -> float:
        """``C_i(O) − C_i(P)`` for one transaction type (can be <= 0)."""
        return self.cost_under_map(ttype.keys, current) - self.cost_under_plan(
            ttype.keys, plan, current
        )

    # ------------------------------------------------------------------
    # Repartition transaction costs
    # ------------------------------------------------------------------
    def rep_txn_cost(self, operations: Iterable[RepartitionOperation]) -> float:
        """Cost of executing a group of repartition operations."""
        return self.rep_op_cost * sum(1 for _op in operations)

    def benefit(
        self,
        affected: Iterable[tuple[TransactionType, float]],
    ) -> float:
        """``B_j = Σ f_i · (C_i(O) − C_i(P))`` given per-type improvements."""
        return sum(ttype.frequency * delta for ttype, delta in affected)

    def benefit_density(
        self, benefit: float, rep_cost: float
    ) -> float:
        """Benefit per unit of repartition cost (ranking key)."""
        if rep_cost <= 0:
            raise ConfigError(f"repartition cost must be positive: {rep_cost}")
        return benefit / rep_cost

    # ------------------------------------------------------------------
    # Workload-wide estimates (used for load calibration and triggers)
    # ------------------------------------------------------------------
    def expected_cost_per_txn(
        self,
        types: Iterable[TransactionType],
        current: MapView,
        plan: Optional[PartitionPlan] = None,
    ) -> float:
        """Frequency-weighted mean transaction cost under map (or plan)."""
        total_freq = 0.0
        total_cost = 0.0
        for ttype in types:
            if plan is None:
                cost = self.cost_under_map(ttype.keys, current)
            else:
                cost = self.cost_under_plan(ttype.keys, plan, current)
            total_freq += ttype.frequency
            total_cost += ttype.frequency * cost
        if total_freq == 0:
            return 0.0
        return total_cost / total_freq
