"""Declarative elasticity: scale-out/in schedules for experiments.

The paper's SOAP framework schedules repartitioning against a fixed node
set; production clusters grow and shrink.  This module drives that
lifecycle the same way :mod:`repro.faults` drives crashes: a declarative
schedule, parsed from the CLI, executed deterministically against the
live cluster.  An :class:`ElasticityScheduleConfig` describes *when*
nodes join and drain, in one of two modes:

* **deterministic events** — explicit ``(time, action, value)`` triples,
  e.g. "add 5 nodes at t=200 s, drain node 7 at t=600 s";
* **load-triggered policy** — queue-depth watermarks: sustained queue
  pressure adds a node, a sustained idle queue drains the highest
  numbered ACTIVE node (classic auto-scaling-group semantics).

The textual format accepted by the CLI's ``--elasticity-schedule``::

    200:add:5,600:drain:7              # deterministic events
    high=50,low=2,check=3,max=8,min=3  # queue-watermark policy

The :class:`ElasticityController` executes a schedule: it walks nodes
through the membership lifecycle via the cluster's membership API,
plans the resulting mass migration (drain: every resident tuple off the
node; scale-out: rebalance onto the joiners), ranks the operations with
SOAP's Algorithm 1, and deploys them through the ordinary repartition
session so the configured scheduler — ApplyAll, AfterAll, Feedback,
Piggyback, or Hybrid — decides when they run.  Because some schedulers
never push work on their own (Piggyback only rides carriers; AfterAll
waits for idleness), the controller also runs a *pump*: an escalation
ladder that submits still-pending migration transactions at LOW after
``grace_intervals``, promotes them to NORMAL after
``escalation_intervals`` more, and to HIGH after twice that — the
operator's drain deadline, ensuring every drain completes under every
scheduler.  All decisions happen at interval boundaries from named RNG
streams and epoch snapshots, preserving serial/parallel bit-identical
determinism.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Generator, Optional

from .cluster.node import DataNode, NodeState
from .core.ranking import chunk_specs
from .core.session import RepState
from .errors import ConfigError, MembershipError
from .partitioning.elastic import plan_drain, plan_rebalance
from .partitioning.operations import RepartitionOperation
from .partitioning.plan import PartitionPlan
from .sim.events import Event
from .types import Priority

if TYPE_CHECKING:  # pragma: no cover
    from .cluster.cluster import Cluster
    from .core.repartitioner import Repartitioner
    from .core.schedulers.base import Scheduler
    from .faults import FaultInjector
    from .metrics.collectors import IntervalRecord
    from .txn.transaction import Transaction
    from .workload.profile import WorkloadProfile

ELASTICITY_ACTIONS = ("add", "drain")


@dataclass(frozen=True)
class ElasticityEvent:
    """One scheduled transition at ``at_s``.

    ``value`` is the number of nodes to add (``action == "add"``) or the
    node id to drain (``action == "drain"``).
    """

    at_s: float
    action: str
    value: int

    def __post_init__(self) -> None:
        if self.at_s < 0:
            raise ConfigError(
                f"elasticity time cannot be negative: {self.at_s}"
            )
        if self.action not in ELASTICITY_ACTIONS:
            raise ConfigError(
                f"unknown elasticity action {self.action!r}; "
                f"expected one of {ELASTICITY_ACTIONS}"
            )
        if self.action == "add" and self.value < 1:
            raise ConfigError(
                f"must add at least one node, got {self.value}"
            )
        if self.action == "drain" and self.value < 0:
            raise ConfigError(f"bad node id {self.value}")


@dataclass(frozen=True)
class ElasticityScheduleConfig:
    """A full elasticity schedule (events and/or queue-watermark policy)."""

    events: tuple[ElasticityEvent, ...] = ()
    #: Intervals a migration transaction may stay PENDING before the
    #: pump submits it at LOW priority.
    grace_intervals: int = 1
    #: Intervals between pump promotions (LOW → NORMAL → HIGH).
    escalation_intervals: int = 2
    #: Lock-footprint cap per mass-migration transaction; drains are
    #: chunked to this size so one transaction never locks a whole node.
    max_ops_per_txn: int = 64
    #: Queue length above which sustained pressure adds a node; ``None``
    #: disables the load-triggered policy.
    queue_high: Optional[float] = None
    #: Queue length below which a sustained idle queue drains a node.
    queue_low: Optional[float] = None
    #: Consecutive intervals a watermark must hold before acting.
    check_intervals: int = 3
    #: Policy never grows the serving set past this (``None`` = no cap).
    max_nodes: Optional[int] = None
    #: Policy never shrinks the serving set below this.
    min_nodes: int = 1

    def __post_init__(self) -> None:
        if self.grace_intervals < 0:
            raise ConfigError("grace_intervals cannot be negative")
        if self.escalation_intervals < 1:
            raise ConfigError("escalation_intervals must be at least 1")
        if self.max_ops_per_txn < 1:
            raise ConfigError("max_ops_per_txn must be at least 1")
        if (self.queue_high is None) != (self.queue_low is None):
            raise ConfigError(
                "queue_high and queue_low must be given together"
            )
        if self.queue_high is not None:
            assert self.queue_low is not None
            if self.queue_low < 0 or self.queue_high <= self.queue_low:
                raise ConfigError(
                    "watermarks must satisfy 0 <= low < high, got "
                    f"low={self.queue_low} high={self.queue_high}"
                )
        if self.check_intervals < 1:
            raise ConfigError("check_intervals must be at least 1")
        if self.min_nodes < 1:
            raise ConfigError("min_nodes must be at least 1")
        if self.max_nodes is not None and self.max_nodes < self.min_nodes:
            raise ConfigError("max_nodes cannot be below min_nodes")

    @property
    def enabled(self) -> bool:
        """Whether this schedule does anything at all."""
        return bool(self.events) or self.queue_high is not None


def parse_elasticity_schedule(text: str) -> ElasticityScheduleConfig:
    """Parse the CLI's ``--elasticity-schedule`` string.

    See the module docstring for the two accepted grammars.  Raises
    :class:`~repro.errors.ConfigError` on malformed input.
    """
    text = text.strip()
    if not text:
        raise ConfigError("empty elasticity schedule")
    parts = [part.strip() for part in text.split(",") if part.strip()]
    if any("=" in part for part in parts):
        return _parse_policy(parts, text)
    events = []
    for part in parts:
        fields = part.split(":")
        if len(fields) != 3:
            raise ConfigError(
                f"bad elasticity event {part!r}; expected TIME:ACTION:VALUE"
            )
        time_text, action, value_text = fields
        try:
            at_s = float(time_text)
            value = int(value_text)
        except ValueError as exc:
            raise ConfigError(
                f"bad elasticity event {part!r}: {exc}"
            ) from None
        events.append(ElasticityEvent(at_s=at_s, action=action, value=value))
    events.sort(key=lambda e: (e.at_s, e.action, e.value))
    return ElasticityScheduleConfig(events=tuple(events))


def _parse_policy(parts: list[str], text: str) -> ElasticityScheduleConfig:
    known: dict[str, Any] = {
        "high": None, "low": None, "check": 3, "max": None, "min": 1,
        "grace": 1, "escalate": 2, "ops": 64,
    }
    integral = ("check", "max", "min", "grace", "escalate", "ops")
    for part in parts:
        if "=" not in part:
            raise ConfigError(
                f"cannot mix key=value and TIME:ACTION:VALUE forms: {text!r}"
            )
        key, _, value_text = part.partition("=")
        key = key.strip()
        if key not in known:
            raise ConfigError(f"unknown elasticity-schedule key {key!r}")
        try:
            value = float(value_text)
        except ValueError as exc:
            raise ConfigError(f"bad value in {part!r}: {exc}") from None
        known[key] = int(value) if key in integral else value
    return ElasticityScheduleConfig(
        queue_high=known["high"],
        queue_low=known["low"],
        check_intervals=known["check"],
        max_nodes=known["max"],
        min_nodes=known["min"],
        grace_intervals=known["grace"],
        escalation_intervals=known["escalate"],
        max_ops_per_txn=known["ops"],
    )


def format_elasticity_schedule(schedule: ElasticityScheduleConfig) -> str:
    """Inverse of :func:`parse_elasticity_schedule` (display/round-trip)."""
    if schedule.queue_high is not None:
        parts = [
            f"high={schedule.queue_high:g}",
            f"low={schedule.queue_low:g}",
            f"check={schedule.check_intervals}",
        ]
        if schedule.max_nodes is not None:
            parts.append(f"max={schedule.max_nodes}")
        if schedule.min_nodes != 1:
            parts.append(f"min={schedule.min_nodes}")
        return ",".join(parts)
    return ",".join(
        f"{event.at_s:g}:{event.action}:{event.value}"
        for event in schedule.events
    )


@dataclass
class _Transition:
    """One in-flight membership transition and its migration workload."""

    kind: str  # "scale-out" | "drain"
    node_ids: tuple[int, ...]
    txns: list["Transaction"]
    started_interval: int
    done: bool = field(default=False)


class ElasticityController:
    """Executes an :class:`ElasticityScheduleConfig` against a system.

    Owns no placement state itself: membership moves through the
    cluster's API, data moves through SOAP-ranked repartition
    transactions in the one shared session, and the configured scheduler
    keeps deciding *when* — the controller only plans, tracks, and pumps.
    """

    def __init__(
        self,
        cluster: "Cluster",
        repartitioner: "Repartitioner",
        profile: "WorkloadProfile",
        schedule: ElasticityScheduleConfig,
        scheduler_factory: Callable[[], "Scheduler"],
        fault_injector: Optional["FaultInjector"] = None,
    ) -> None:
        self.cluster = cluster
        self.repartitioner = repartitioner
        self.profile = profile
        self.schedule = schedule
        self.scheduler_factory = scheduler_factory
        self.fault_injector = fault_injector
        self.env = repartitioner.env
        self.metrics = repartitioner.metrics
        self.store = repartitioner.router.store
        self._started = False
        self._intervals = 0
        self._transitions: list[_Transition] = []
        self._high_streak = 0
        self._low_streak = 0
        # Counters for reports and tests.
        self.nodes_added = 0
        self.drains_started = 0
        self.nodes_retired = 0
        self.migration_ops_planned = 0
        self.skipped = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Spawn the schedule process and interval hook (idempotent)."""
        if self._started:
            return
        self._started = True
        self.metrics.interval_observers.append(self._on_interval)
        if self.schedule.events:
            self.env.process(self._run_events())

    @property
    def quiescent(self) -> bool:
        """No transition still migrating or awaiting retirement."""
        return all(t.done for t in self._transitions)

    # ------------------------------------------------------------------
    # Deterministic events
    # ------------------------------------------------------------------
    def _run_events(self) -> Generator[Event, Any, None]:
        for event in self.schedule.events:
            delay = event.at_s - self.env.now
            if delay > 0:
                yield self.env.timeout(delay)
            if event.action == "add":
                self.scale_out(event.value)
            else:
                self.drain(event.value)

    # ------------------------------------------------------------------
    # Transitions
    # ------------------------------------------------------------------
    def scale_out(self, count: int) -> list[DataNode]:
        """Add ``count`` JOINING nodes and plan rebalancing onto them."""
        new_nodes = [self.cluster.add_node() for _ in range(count)]
        self.nodes_added += count
        plan, ops = plan_rebalance(
            self.store.current_epoch,
            [node.partition_id for node in new_nodes],
            self.cluster.placement_partition_ids,
            self.profile,
        )
        txns = self._deploy_ops(plan, ops)
        self._transitions.append(
            _Transition(
                kind="scale-out",
                node_ids=tuple(node.node_id for node in new_nodes),
                txns=txns,
                started_interval=self._intervals,
            )
        )
        return new_nodes

    def drain(self, node_id: int) -> None:
        """Begin draining ``node_id``: plan moving every resident tuple."""
        node = self.cluster.node(node_id)
        if node.state is not NodeState.ACTIVE:
            # Draining a JOINING/DRAINING/RETIRED node is a schedule
            # mistake, not a crash-worthy condition mid-experiment.
            self.skipped += 1
            return
        self.cluster.begin_drain(node_id)
        self.drains_started += 1
        plan, ops = plan_drain(
            self.store.current_epoch,
            [node.partition_id],
            self.cluster.placement_partition_ids,
        )
        txns = self._deploy_ops(plan, ops)
        self._transitions.append(
            _Transition(
                kind="drain",
                node_ids=(node_id,),
                txns=txns,
                started_interval=self._intervals,
            )
        )

    def _deploy_ops(
        self, plan: PartitionPlan, ops: list[RepartitionOperation]
    ) -> list["Transaction"]:
        """Rank, chunk, and deploy migration operations (SOAP pipeline)."""
        if not ops:
            return []
        self.migration_ops_planned += len(ops)
        specs = self.repartitioner.rank_plan(
            plan, self.profile, operations=ops
        )
        specs = chunk_specs(specs, self.schedule.max_ops_per_txn)
        rep = self.repartitioner
        if rep.session is None:
            session = rep.deploy(specs, self.scheduler_factory())
            return list(session.rep_txns)
        return rep.extend(specs)

    # ------------------------------------------------------------------
    # Interval hook: policy, pump, completion
    # ------------------------------------------------------------------
    def _on_interval(self, record: "IntervalRecord") -> None:
        self._intervals += 1
        if self.schedule.queue_high is not None:
            self._apply_policy(record)
        for transition in self._transitions:
            if not transition.done:
                self._pump(transition)
                self._finalise(transition)

    def _apply_policy(self, record: "IntervalRecord") -> None:
        schedule = self.schedule
        assert schedule.queue_low is not None
        queue = record.queue_length_end
        if queue > schedule.queue_high:
            self._high_streak += 1
            self._low_streak = 0
        elif queue < schedule.queue_low:
            self._low_streak += 1
            self._high_streak = 0
        else:
            self._high_streak = 0
            self._low_streak = 0
        serving = self.cluster.nodes_in(NodeState.ACTIVE, NodeState.JOINING)
        if self._high_streak >= schedule.check_intervals:
            self._high_streak = 0
            if (
                schedule.max_nodes is None
                or len(serving) < schedule.max_nodes
            ):
                self.scale_out(1)
        elif self._low_streak >= schedule.check_intervals:
            self._low_streak = 0
            active = self.cluster.nodes_in(NodeState.ACTIVE)
            if len(serving) > schedule.min_nodes and len(active) > 1:
                self.drain(active[-1].node_id)

    def _pump(self, transition: _Transition) -> None:
        """Escalation ladder: the operator's migration deadline.

        Schedulers remain in charge up to ``grace_intervals``; after
        that, still-pending migration transactions enter the queue at
        LOW, then climb to NORMAL and HIGH — so a drain completes even
        under schedulers that never submit on their own (Piggyback) or
        find no idle time (AfterAll under load).
        """
        session = self.repartitioner.session
        if session is None or not transition.txns:
            return
        schedule = self.schedule
        age = self._intervals - transition.started_interval
        for txn in transition.txns:
            state = session.state_of(txn.txn_id)
            if state is RepState.PENDING:
                if age >= schedule.grace_intervals:
                    session.submit(txn, Priority.LOW)
            elif state is RepState.QUEUED:
                ladder = schedule.grace_intervals + schedule.escalation_intervals
                if (
                    age >= ladder + schedule.escalation_intervals
                    and txn.priority is not Priority.HIGH
                ):
                    session.promote(txn, Priority.HIGH)
                elif age >= ladder and txn.priority is Priority.LOW:
                    session.promote(txn, Priority.NORMAL)

    def _migrations_done(self, transition: _Transition) -> bool:
        session = self.repartitioner.session
        if not transition.txns:
            return True
        assert session is not None
        return all(
            session.state_of(txn.txn_id) is RepState.DONE
            for txn in transition.txns
        )

    def _finalise(self, transition: _Transition) -> None:
        """Complete lifecycle transitions whose migrations finished."""
        if not self._migrations_done(transition):
            return
        if transition.kind == "scale-out":
            for node_id in transition.node_ids:
                if self.cluster.state_of(node_id) is NodeState.JOINING:
                    self.cluster.activate(node_id)
            transition.done = True
            return
        # Drain: retire each node once truly empty; stragglers that
        # landed after planning (e.g. a workload-driven migration
        # targeting the partition, or drain ops requeued by a crash)
        # get a follow-up sweep.
        all_retired = True
        for node_id in transition.node_ids:
            node = self.cluster.node(node_id)
            if node.state is NodeState.RETIRED:
                continue
            if node.state is not NodeState.DRAINING:  # pragma: no cover
                raise MembershipError(
                    f"drain transition found node {node_id} in state "
                    f"{node.state.value}"
                )
            mapped = self.store.partition_sizes().get(node.partition_id, 0)
            if mapped == 0 and not node.is_down and len(node.store) == 0:
                self.cluster.retire(node_id)
                self.nodes_retired += 1
                continue
            all_retired = False
            if mapped > 0 and not node.is_down:
                plan, ops = plan_drain(
                    self.store.current_epoch,
                    [node.partition_id],
                    self.cluster.placement_partition_ids,
                )
                transition.txns.extend(self._deploy_ops(plan, ops))
        transition.done = all_retired
