"""Declarative fault injection: crash/restart schedules for experiments.

The paper motivates online repartitioning with the hostility of cloud
environments (§3.3); this module lets an experiment subject the cluster
to that hostility on purpose.  A :class:`FaultScheduleConfig` describes
*when* data nodes crash and restart, in one of two modes:

* **deterministic events** — explicit ``(time, action, node)`` triples,
  e.g. "crash node 2 at t=120 s, restart it at t=180 s";
* **stochastic MTBF/MTTR** — every node independently alternates
  exponentially-distributed up-times (mean ``mtbf_s``) and down-times
  (mean ``mttr_s``), the classic availability model.

Both modes are driven entirely by the experiment's named RNG streams,
so a given seed + schedule reproduces the same fault sequence in serial
and parallel runs alike.  The textual format accepted by the CLI's
``--fault-schedule`` flag::

    120:crash:2,180:restart:2          # deterministic events
    mtbf=300,mttr=30                   # stochastic, whole run
    mtbf=300,mttr=30,start=100,end=900 # stochastic, windowed

The :class:`FaultInjector` executes a schedule against a live cluster:
it calls :meth:`DataNode.crash` / :meth:`DataNode.restart` at the
scheduled instants, refuses to take down the last live node (a dead
cluster measures nothing), and notifies the metrics collector so
degradation accounting (``degraded_s``, goodput-during-degradation)
lines up with the injected faults.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Generator, Optional

from .errors import ConfigError
from .sim.events import Event

if TYPE_CHECKING:  # pragma: no cover
    from .cluster.cluster import Cluster
    from .cluster.node import DataNode
    from .metrics.collectors import MetricsCollector
    from .sim.environment import Environment

FAULT_ACTIONS = ("crash", "restart")


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled action: crash or restart ``node_id`` at ``at_s``."""

    at_s: float
    action: str
    node_id: int

    def __post_init__(self) -> None:
        if self.at_s < 0:
            raise ConfigError(f"fault time cannot be negative: {self.at_s}")
        if self.action not in FAULT_ACTIONS:
            raise ConfigError(
                f"unknown fault action {self.action!r}; "
                f"expected one of {FAULT_ACTIONS}"
            )
        if self.node_id < 0:
            raise ConfigError(f"bad node id {self.node_id}")


@dataclass(frozen=True)
class FaultScheduleConfig:
    """A full fault schedule (deterministic events and/or MTBF/MTTR)."""

    events: tuple[FaultEvent, ...] = ()
    #: Mean up-time between failures per node (exponential); ``None``
    #: disables the stochastic mode.
    mtbf_s: Optional[float] = None
    #: Mean repair (down) time per node (exponential).
    mttr_s: Optional[float] = None
    #: Stochastic faults only start after this simulated time.
    start_s: float = 0.0
    #: Stochastic faults stop after this time (``None`` = run horizon).
    end_s: Optional[float] = None

    def __post_init__(self) -> None:
        if (self.mtbf_s is None) != (self.mttr_s is None):
            raise ConfigError("mtbf and mttr must be given together")
        if self.mtbf_s is not None and self.mtbf_s <= 0:
            raise ConfigError(f"mtbf must be positive: {self.mtbf_s}")
        if self.mttr_s is not None and self.mttr_s <= 0:
            raise ConfigError(f"mttr must be positive: {self.mttr_s}")
        if self.start_s < 0:
            raise ConfigError("fault window start cannot be negative")
        if self.end_s is not None and self.end_s <= self.start_s:
            raise ConfigError("fault window must end after it starts")

    @property
    def enabled(self) -> bool:
        """Whether this schedule injects anything at all."""
        return bool(self.events) or self.mtbf_s is not None


def parse_fault_schedule(text: str) -> FaultScheduleConfig:
    """Parse the CLI's ``--fault-schedule`` string.

    See the module docstring for the two accepted grammars.  Raises
    :class:`~repro.errors.ConfigError` on malformed input.
    """
    text = text.strip()
    if not text:
        raise ConfigError("empty fault schedule")
    parts = [part.strip() for part in text.split(",") if part.strip()]
    if any("=" in part for part in parts):
        return _parse_stochastic(parts, text)
    events = []
    for part in parts:
        fields = part.split(":")
        if len(fields) != 3:
            raise ConfigError(
                f"bad fault event {part!r}; expected TIME:ACTION:NODE"
            )
        time_text, action, node_text = fields
        try:
            at_s = float(time_text)
            node_id = int(node_text)
        except ValueError as exc:
            raise ConfigError(f"bad fault event {part!r}: {exc}") from None
        events.append(FaultEvent(at_s=at_s, action=action, node_id=node_id))
    events.sort(key=lambda e: (e.at_s, e.node_id, e.action))
    return FaultScheduleConfig(events=tuple(events))


def _parse_stochastic(parts: list[str], text: str) -> FaultScheduleConfig:
    known = {"mtbf": None, "mttr": None, "start": 0.0, "end": None}
    for part in parts:
        if "=" not in part:
            raise ConfigError(
                f"cannot mix key=value and TIME:ACTION:NODE forms: {text!r}"
            )
        key, _, value_text = part.partition("=")
        key = key.strip()
        if key not in known:
            raise ConfigError(f"unknown fault-schedule key {key!r}")
        try:
            known[key] = float(value_text)
        except ValueError as exc:
            raise ConfigError(f"bad value in {part!r}: {exc}") from None
    return FaultScheduleConfig(
        mtbf_s=known["mtbf"],
        mttr_s=known["mttr"],
        start_s=known["start"] or 0.0,
        end_s=known["end"],
    )


def format_fault_schedule(schedule: FaultScheduleConfig) -> str:
    """Inverse of :func:`parse_fault_schedule` (for display/round-trip)."""
    if schedule.mtbf_s is not None:
        parts = [f"mtbf={schedule.mtbf_s:g}", f"mttr={schedule.mttr_s:g}"]
        if schedule.start_s:
            parts.append(f"start={schedule.start_s:g}")
        if schedule.end_s is not None:
            parts.append(f"end={schedule.end_s:g}")
        return ",".join(parts)
    return ",".join(
        f"{event.at_s:g}:{event.action}:{event.node_id}"
        for event in schedule.events
    )


class FaultInjector:
    """Executes a :class:`FaultScheduleConfig` against a live cluster."""

    def __init__(
        self,
        env: "Environment",
        cluster: "Cluster",
        schedule: FaultScheduleConfig,
        rng: Optional[random.Random] = None,
        metrics: Optional["MetricsCollector"] = None,
    ) -> None:
        if schedule.mtbf_s is not None and rng is None:
            raise ConfigError("stochastic fault schedules require an rng")
        self.env = env
        self.cluster = cluster
        self.schedule = schedule
        self.metrics = metrics
        self._rng = rng
        self._started = False
        self.crashes = 0
        self.restarts = 0
        #: Scheduled actions that could not be applied (crash of an
        #: already-down or sole-surviving node, restart of a live node).
        self.skipped = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Spawn the injection processes (idempotent)."""
        if self._started:
            return
        self._started = True
        if self.schedule.events:
            self.env.process(self._run_events())
        if self.schedule.mtbf_s is not None:
            for node in self.cluster.nodes:
                self.watch_node(node)

    def watch_node(self, node: "DataNode") -> None:
        """Subject one node to the stochastic MTBF/MTTR lifecycle.

        Called for each seed node by :meth:`start` and for nodes added
        mid-run by the elasticity layer, so late joiners face the same
        hostility as founding members.  No-op for deterministic-only
        schedules or before :meth:`start`.
        """
        if self._started and self.schedule.mtbf_s is not None:
            self.env.process(self._node_lifecycle(node))

    # ------------------------------------------------------------------
    # Crash / restart primitives (shared by both modes)
    # ------------------------------------------------------------------
    def _live_count(self) -> int:
        """Up nodes that are full cluster members.

        DRAINING and RETIRED nodes are deliberately *not* counted: they
        are on their way out, so the "never kill the last live node"
        guard must not treat them as the node keeping the cluster alive
        — composing a drain schedule with a crash schedule could
        otherwise leave only departing members serving.
        """
        from .cluster.node import NodeState

        return sum(
            1
            for node in self.cluster.nodes
            if not node.is_down
            and node.state in (NodeState.ACTIVE, NodeState.JOINING)
        )

    def _crash(self, node: "DataNode") -> bool:
        if node.retired:
            # A retired node holds nothing and serves nothing; crashing
            # it would only skew the degradation accounting.
            self.skipped += 1
            return False
        if node.is_down or self._live_count() <= 1:
            # Never take down the last live node: a fully dead cluster
            # deadlocks every transaction and measures nothing.
            self.skipped += 1
            return False
        node.crash()
        self.crashes += 1
        if self.metrics is not None:
            self.metrics.note_node_down(node.node_id)
        return True

    def _restart(self, node: "DataNode") -> bool:
        if not node.is_down:
            self.skipped += 1
            return False
        node.restart()
        self.restarts += 1
        if self.metrics is not None:
            self.metrics.note_node_up(node.node_id)
        return True

    # ------------------------------------------------------------------
    # Deterministic events
    # ------------------------------------------------------------------
    def _run_events(self) -> Generator[Event, Any, None]:
        for event in self.schedule.events:
            delay = event.at_s - self.env.now
            if delay > 0:
                yield self.env.timeout(delay)
            node = self.cluster.node(event.node_id)
            if event.action == "crash":
                self._crash(node)
            else:
                self._restart(node)

    # ------------------------------------------------------------------
    # Stochastic MTBF/MTTR per-node lifecycle
    # ------------------------------------------------------------------
    def _node_lifecycle(self, node: "DataNode") -> Generator[Event, Any, None]:
        assert self._rng is not None
        schedule = self.schedule
        if schedule.start_s > self.env.now:
            yield self.env.timeout(schedule.start_s - self.env.now)
        while True:
            up_for = self._rng.expovariate(1.0 / schedule.mtbf_s)
            yield self.env.timeout(up_for)
            if schedule.end_s is not None and self.env.now >= schedule.end_s:
                return
            if not self._crash(node):
                continue
            down_for = self._rng.expovariate(1.0 / schedule.mttr_s)
            yield self.env.timeout(down_for)
            self._restart(node)
