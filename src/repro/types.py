"""Common identifiers and enums shared across subsystems."""

from __future__ import annotations

import enum

#: Identifies a data partition; the paper maps one partition per data node.
PartitionId = int

#: Identifies a data node in the cluster.
NodeId = int

#: Global unique transaction identifier handed out by the transaction manager.
TxnId = int

#: Primary key of a tuple (the paper's table has a single unique key field).
TupleKey = int


class Priority(enum.IntEnum):
    """Scheduling priority in the processing queue (lower value = sooner).

    The paper's ApplyAll strategy submits repartition transactions above
    normal priority; AfterAll submits them below it.
    """

    HIGH = 0
    NORMAL = 1
    LOW = 2


class AccessMode(enum.Enum):
    """How a query touches a tuple: shared read or exclusive write."""

    READ = "read"
    WRITE = "write"


class TxnStatus(enum.Enum):
    """Transaction lifecycle states."""

    CREATED = "created"
    QUEUED = "queued"
    RUNNING = "running"
    COMMITTED = "committed"
    ABORTED = "aborted"


class TxnKind(enum.Enum):
    """Distinguishes normal OLTP transactions from repartition transactions."""

    NORMAL = "normal"
    REPARTITION = "repartition"
