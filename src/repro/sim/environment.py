"""The discrete-event simulation environment (virtual clock + event loop)."""

from __future__ import annotations

import heapq
from itertools import count
from typing import Any, Generator, Optional

from .events import AllOf, AnyOf, Event, EventState, Process, Timeout


class EmptySchedule(Exception):
    """Raised by :meth:`Environment.step` when no events remain."""


class Environment:
    """Coordinates virtual time and executes scheduled events in order.

    Events scheduled for the same instant are executed in the order they
    were scheduled (a monotonically increasing sequence number breaks
    ties), which makes runs fully deterministic.
    """

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        self._queue: list[tuple[float, int, Event]] = []
        self._seq = count()

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self._now

    # ------------------------------------------------------------------
    # Factories
    # ------------------------------------------------------------------
    def event(self) -> Event:
        """Create a new untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that succeeds ``delay`` time units from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator[Event, Any, Any]) -> Process:
        """Start ``generator`` as a simulation process."""
        return Process(self, generator)

    def all_of(self, events: list[Event]) -> AllOf:
        """Event that succeeds once every event in ``events`` has."""
        return AllOf(self, events)

    def any_of(self, events: list[Event]) -> AnyOf:
        """Event that succeeds once any event in ``events`` has."""
        return AnyOf(self, events)

    # ------------------------------------------------------------------
    # Scheduling internals (used by the event classes)
    # ------------------------------------------------------------------
    def _schedule_at(self, when: float, event: Event) -> None:
        if when < self._now:
            raise ValueError(f"cannot schedule into the past ({when} < {self._now})")
        heapq.heappush(self._queue, (when, next(self._seq), event))

    def _enqueue_triggered(self, event: Event) -> None:
        """Queue a just-triggered event's callbacks to run at the current time."""
        if isinstance(event, Timeout):
            # Timeouts are already in the heap; their trigger happens when
            # the heap pops them, so nothing more to do.
            pass
        heapq.heappush(self._queue, (self._now, next(self._seq), event))

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------
    def peek(self) -> float:
        """Time of the next scheduled event, or ``float('inf')``."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process the single next event."""
        if not self._queue:
            raise EmptySchedule()
        when, _seq, event = heapq.heappop(self._queue)
        self._now = when
        if isinstance(event, Timeout) and not event.triggered:
            # A timeout triggers exactly when it is popped.
            event._state = EventState.SUCCEEDED
        callbacks, event.callbacks = event.callbacks, None
        if callbacks:
            for callback in callbacks:
                callback(event)
        if event.failed and not event.defused:
            raise event.value  # unhandled failure escalates to the caller

    def run(self, until: Optional[float | Event] = None) -> Any:
        """Run the simulation.

        ``until`` may be a time (run up to and including that instant), an
        :class:`Event` (run until it triggers, returning its value), or
        ``None`` (run until no events remain).
        """
        if isinstance(until, Event):
            stop_event = until
            while not stop_event.triggered:
                try:
                    self.step()
                except EmptySchedule:
                    raise RuntimeError(
                        "simulation ran out of events before the awaited "
                        "event triggered"
                    ) from None
            if stop_event.failed:
                stop_event.defused = True
                raise stop_event.value
            return stop_event.value

        if until is not None:
            horizon = float(until)
            if horizon < self._now:
                raise ValueError(f"cannot run backwards to {horizon}")
            while self._queue and self._queue[0][0] <= horizon:
                self.step()
            self._now = horizon
            return None

        while self._queue:
            self.step()
        return None
