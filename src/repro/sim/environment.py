"""The discrete-event simulation environment (virtual clock + event loop).

The scheduler is a *bucketed calendar queue* rather than one big binary
heap.  Pending entries live in four structures:

* ``_bucket`` — the **near-future bucket**: a list sorted ascending by
  ``(when, seq)`` consumed left-to-right through ``_pos``.  Nothing is
  ever inserted into an existing bucket (late arrivals go to the heap
  below), so a drain of pre-scheduled events costs one C-level
  ``list.sort`` per bucket plus an index increment per event, instead of
  a log-N ``heappop`` each.
* ``_adds`` — a small binary heap of **late arrivals**: entries scheduled
  *after* the bucket was built whose time falls at or before the
  bucket's maximum (``_horizon``).  The hot loop merges ``_adds`` and
  ``_bucket`` by comparing their heads; in the common drain case the
  heap is empty and the check is a single falsy test.
* ``_overflow`` — **far-future** entries already sorted (descending, so
  refills slice cheaply off the tail) by an earlier refill.
* ``_inbox`` — unsorted far-future entries appended in O(1); merged and
  sorted into ``_overflow`` only when the bucket runs dry.

Refills take the smallest ``bucket_limit`` entries as the new bucket, so
one sort amortises over up to ``bucket_limit`` pops.  Ordering is exactly
the classic ``(when, seq)`` heap order — the equivalence suite under
``tests/`` proves pop order (and full experiment output) bit-identical to
the old single-heap scheduler.

Entries are flat 4-tuples ``(when, seq, event, fn)``.  ``event`` is the
usual :class:`~repro.sim.events.Event`; when it is ``None`` the entry is
a **bare callback** (``fn`` is invoked with no arguments), which lets hot
internal paths — process kick-off and interrupt delivery — schedule work
without allocating an Event plus its callbacks list per occurrence.

Cancellation stays lazy: detaching a waiter leaves the queue entry in
place with no callbacks, and the popped entry is skipped for the price of
an empty-list check — nothing is ever removed from or re-sorted into the
middle of a bucket.
"""

from __future__ import annotations

import heapq
from itertools import count
from math import inf
from typing import Any, Callable, Generator, Optional

from ..errors import SimulationError
from .events import AllOf, AnyOf, Event, EventState, Process, Timeout

#: One queue entry: ``(when, seq, event, fn)``.  Exactly one of ``event``
#: and ``fn`` is set; the last two slots are typed ``Any`` because
#: narrowing them structurally (a union + isinstance per pop) would put a
#: check in the hottest loop in the simulator purely for the type
#: checker's benefit.  ``seq`` is unique, so tuple comparison never
#: reaches them.
Entry = tuple[float, int, Any, Any]

# Hot-loop locals: every event pop compares against these states, so the
# enum lookups are hoisted to module level.
_PENDING = EventState.PENDING
_SUCCEEDED = EventState.SUCCEEDED
_FAILED = EventState.FAILED

#: Default cap on one near-future bucket: one sort amortises over up to
#: this many pops, while refills stay cheap enough to interleave with
#: late arrivals.
DEFAULT_BUCKET_LIMIT = 2048


class EmptySchedule(Exception):
    """Raised by :meth:`Environment.step` when no events remain."""


class Environment:
    """Coordinates virtual time and executes scheduled events in order.

    Events scheduled for the same instant are executed in the order they
    were scheduled (a monotonically increasing sequence number breaks
    ties), which makes runs fully deterministic.
    """

    def __init__(
        self,
        initial_time: float = 0.0,
        bucket_limit: int = DEFAULT_BUCKET_LIMIT,
    ) -> None:
        if bucket_limit < 1:
            raise ValueError(f"bucket limit must be >= 1: {bucket_limit}")
        self._now: float = float(initial_time)
        self._seq: count[int] = count()
        self._bucket_limit: int = bucket_limit
        # (when, seq, event, fn) entries; see the module docstring for the
        # four-structure layout.
        self._bucket: list[Entry] = []
        self._pos: int = 0  # next unconsumed index into _bucket
        self._adds: list[Entry] = []
        self._overflow: list[Entry] = []
        self._inbox: list[Entry] = []
        #: Times strictly below the horizon must interleave with the
        #: current bucket (they go to the ``_adds`` heap); times at or
        #: above it sort after everything in the bucket and may be
        #: appended to the inbox unsorted.  ``-inf`` until the first
        #: refill so initial scheduling is pure O(1) appends.
        self._horizon: float = -inf

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self._now

    # ------------------------------------------------------------------
    # Factories
    # ------------------------------------------------------------------
    def event(self) -> Event:
        """Create a new untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that succeeds ``delay`` time units from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator[Event, Any, Any]) -> Process:
        """Start ``generator`` as a simulation process."""
        return Process(self, generator)

    def all_of(self, events: list[Event]) -> AllOf:
        """Event that succeeds once every event in ``events`` has."""
        return AllOf(self, events)

    def any_of(self, events: list[Event]) -> AnyOf:
        """Event that succeeds once any event in ``events`` has."""
        return AnyOf(self, events)

    # ------------------------------------------------------------------
    # Scheduling internals (used by the event classes)
    # ------------------------------------------------------------------
    def _schedule_at(self, when: float, event: Event) -> None:
        if when < self._now:
            raise SimulationError(
                f"cannot schedule into the past ({when} < {self._now})"
            )
        entry = (when, next(self._seq), event, None)
        if when < self._horizon:
            heapq.heappush(self._adds, entry)
        else:
            self._inbox.append(entry)

    def _enqueue_triggered(self, event: Event) -> None:
        """Queue a just-triggered event's callbacks to run at the current time."""
        if event._is_timeout:
            # Timeouts were queued at construction by _schedule_at; a
            # second entry would pop them twice.  Their callbacks run
            # when the queue reaches the original entry.
            return
        now = self._now
        entry = (now, next(self._seq), event, None)
        if now < self._horizon:
            heapq.heappush(self._adds, entry)
        else:
            self._inbox.append(entry)

    def _call_soon(self, fn: Callable[[], None]) -> None:
        """Schedule a bare callback at the current instant.

        Order-equivalent to succeeding a fresh event carrying ``fn`` as
        its only callback (it consumes one sequence number at the same
        point), but without allocating the event, its callbacks list, or
        the trigger bookkeeping.
        """
        now = self._now
        entry = (now, next(self._seq), None, fn)
        if now < self._horizon:
            heapq.heappush(self._adds, entry)
        else:
            self._inbox.append(entry)

    def _refill(self) -> None:
        """Rebuild the near-future bucket from the far-future entries.

        Called only when the bucket is consumed and the late-arrival heap
        is empty, with at least one far-future entry pending.
        """
        overflow = self._overflow
        inbox = self._inbox
        if inbox:
            overflow.extend(inbox)
            inbox.clear()
            # Timsort: ``overflow`` was already descending and the inbox
            # is close to one run, so this is near a linear merge.
            overflow.sort(reverse=True)
        if len(overflow) <= self._bucket_limit:
            bucket = overflow
            self._overflow = []
        else:
            bucket = overflow[-self._bucket_limit:]
            del overflow[-self._bucket_limit:]
        bucket.reverse()  # descending tail slice -> ascending bucket
        self._bucket = bucket
        self._pos = 0
        # Everything at or after the bucket's maximum key sorts after the
        # whole bucket (later inserts carry larger sequence numbers), so
        # it can wait unsorted in the inbox.
        self._horizon = bucket[-1][0]

    def _pop_entry(self) -> Entry:
        """Remove and return the globally next entry (single-step path)."""
        while True:
            bucket = self._bucket
            pos = self._pos
            if pos < len(bucket):
                entry = bucket[pos]
                adds = self._adds
                if adds and adds[0] < entry:
                    return heapq.heappop(adds)
                self._pos = pos + 1
                return entry
            if self._adds:
                return heapq.heappop(self._adds)
            if self._overflow or self._inbox:
                self._refill()
                continue
            raise EmptySchedule()

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------
    def peek(self) -> float:
        """Time of the next scheduled event, or ``float('inf')``."""
        while True:
            bucket = self._bucket
            pos = self._pos
            adds = self._adds
            if pos < len(bucket):
                when = bucket[pos][0]
                if adds and adds[0][0] < when:
                    return adds[0][0]
                return when
            if adds:
                return adds[0][0]
            if self._overflow or self._inbox:
                self._refill()
                continue
            return inf

    def step(self) -> None:
        """Process the single next event."""
        when, _seq, event, fn = self._pop_entry()
        self._now = when
        if event is None:
            fn()
            return
        if event._is_timeout and event._state is _PENDING:
            # A timeout triggers exactly when it is popped.
            event._state = _SUCCEEDED
        callbacks, event.callbacks = event.callbacks, None
        if callbacks:
            for callback in callbacks:
                callback(event)
        if event._state is _FAILED and not event.defused:
            raise event.value  # unhandled failure escalates to the caller

    def _advance(self, horizon: float) -> None:
        """Process every event scheduled at or before ``horizon``.

        This is :meth:`step` inlined: the bucket, its cursor, the
        late-arrival heap, and the state constants are bound to locals so
        the per-event overhead in the common case is an index increment,
        one falsy check, and the callbacks themselves.  The cursor is
        written back in a ``finally`` so a callback raising (or the
        horizon cutting a bucket short) never loses queue state.
        """
        bucket = self._bucket
        pos = self._pos
        blen = len(bucket)
        adds = self._adds
        pop_add = heapq.heappop
        pending = _PENDING
        succeeded = _SUCCEEDED
        failed = _FAILED
        try:
            while True:
                if pos < blen:
                    entry = bucket[pos]
                    if adds and adds[0] < entry:
                        if adds[0][0] > horizon:
                            return
                        entry = pop_add(adds)
                    else:
                        if entry[0] > horizon:
                            return
                        pos += 1
                elif adds:
                    if adds[0][0] > horizon:
                        return
                    entry = pop_add(adds)
                elif self._overflow or self._inbox:
                    self._pos = pos
                    self._refill()
                    bucket = self._bucket
                    pos = self._pos
                    blen = len(bucket)
                    continue
                else:
                    return
                when = entry[0]
                event = entry[2]
                self._now = when
                if event is None:
                    entry[3]()
                    continue
                if event._is_timeout and event._state is pending:
                    event._state = succeeded
                callbacks, event.callbacks = event.callbacks, None
                if callbacks:
                    for callback in callbacks:
                        callback(event)
                if event._state is failed and not event.defused:
                    raise event.value
        finally:
            self._pos = pos

    def run(self, until: Optional[float | Event] = None) -> Any:
        """Run the simulation.

        ``until`` may be a time (run up to and including that instant), an
        :class:`Event` (run until it triggers, returning its value), or
        ``None`` (run until no events remain).
        """
        if isinstance(until, Event):
            stop_event = until
            while not stop_event.triggered:
                try:
                    self.step()
                except EmptySchedule:
                    raise RuntimeError(
                        "simulation ran out of events before the awaited "
                        "event triggered"
                    ) from None
            if stop_event.failed:
                stop_event.defused = True
                raise stop_event.value
            return stop_event.value

        if until is not None:
            horizon = float(until)
            if horizon < self._now:
                raise ValueError(f"cannot run backwards to {horizon}")
            self._advance(horizon)
            self._now = horizon
            return None

        self._advance(inf)
        return None

    def run_intervals(
        self,
        interval_s: float,
        intervals: int,
        on_interval: Optional[Callable[[int], None]] = None,
    ) -> None:
        """Advance the clock through ``intervals`` windows of ``interval_s``.

        Equivalent to calling ``run(until=start + k * interval_s)`` for
        ``k = 1..intervals``, but in one batch-stepping pass: the hot loop
        is entered once per interval instead of re-entering :meth:`run`
        (and re-validating its arguments) from the caller.  After each
        interval boundary ``on_interval`` is invoked with the zero-based
        interval index, with the clock parked exactly on the boundary.
        """
        if interval_s <= 0:
            raise ValueError(f"interval must be positive: {interval_s}")
        if intervals < 0:
            raise ValueError(f"negative interval count: {intervals}")
        start = self._now
        for index in range(intervals):
            horizon = start + interval_s * (index + 1)
            self._advance(horizon)
            self._now = horizon
            if on_interval is not None:
                on_interval(index)
