"""The discrete-event simulation environment (virtual clock + event loop)."""

from __future__ import annotations

import heapq
from itertools import count
from typing import Any, Callable, Generator, Optional

from .events import AllOf, AnyOf, Event, EventState, Process, Timeout

# Hot-loop locals: every event pop compares against these states, so the
# enum lookups are hoisted to module level.
_PENDING = EventState.PENDING
_SUCCEEDED = EventState.SUCCEEDED
_FAILED = EventState.FAILED


class EmptySchedule(Exception):
    """Raised by :meth:`Environment.step` when no events remain."""


class Environment:
    """Coordinates virtual time and executes scheduled events in order.

    Events scheduled for the same instant are executed in the order they
    were scheduled (a monotonically increasing sequence number breaks
    ties), which makes runs fully deterministic.
    """

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        self._queue: list[tuple[float, int, Event]] = []
        self._seq = count()

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self._now

    # ------------------------------------------------------------------
    # Factories
    # ------------------------------------------------------------------
    def event(self) -> Event:
        """Create a new untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that succeeds ``delay`` time units from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator[Event, Any, Any]) -> Process:
        """Start ``generator`` as a simulation process."""
        return Process(self, generator)

    def all_of(self, events: list[Event]) -> AllOf:
        """Event that succeeds once every event in ``events`` has."""
        return AllOf(self, events)

    def any_of(self, events: list[Event]) -> AnyOf:
        """Event that succeeds once any event in ``events`` has."""
        return AnyOf(self, events)

    # ------------------------------------------------------------------
    # Scheduling internals (used by the event classes)
    # ------------------------------------------------------------------
    def _schedule_at(self, when: float, event: Event) -> None:
        if when < self._now:
            raise ValueError(f"cannot schedule into the past ({when} < {self._now})")
        heapq.heappush(self._queue, (when, next(self._seq), event))

    def _enqueue_triggered(self, event: Event) -> None:
        """Queue a just-triggered event's callbacks to run at the current time."""
        if event._is_timeout:
            # Timeouts were heaped at construction by _schedule_at; pushing
            # a second entry would pop them twice.  Their callbacks run
            # when the heap reaches the original entry.
            return
        heapq.heappush(self._queue, (self._now, next(self._seq), event))

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------
    def peek(self) -> float:
        """Time of the next scheduled event, or ``float('inf')``."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process the single next event."""
        if not self._queue:
            raise EmptySchedule()
        when, _seq, event = heapq.heappop(self._queue)
        self._now = when
        if event._is_timeout and event._state is _PENDING:
            # A timeout triggers exactly when it is popped.
            event._state = _SUCCEEDED
        callbacks, event.callbacks = event.callbacks, None
        if callbacks:
            for callback in callbacks:
                callback(event)
        if event._state is _FAILED and not event.defused:
            raise event.value  # unhandled failure escalates to the caller

    def _advance(self, horizon: float) -> None:
        """Process every event scheduled at or before ``horizon``.

        This is :meth:`step` inlined: the queue, ``heappop``, and the state
        constants are bound to locals so the per-event overhead is a single
        heap pop plus the callbacks themselves.
        """
        queue = self._queue
        pop = heapq.heappop
        pending = _PENDING
        succeeded = _SUCCEEDED
        failed = _FAILED
        while queue and queue[0][0] <= horizon:
            when, _seq, event = pop(queue)
            self._now = when
            if event._is_timeout and event._state is pending:
                event._state = succeeded
            callbacks, event.callbacks = event.callbacks, None
            if callbacks:
                for callback in callbacks:
                    callback(event)
            if event._state is failed and not event.defused:
                raise event.value

    def run(self, until: Optional[float | Event] = None) -> Any:
        """Run the simulation.

        ``until`` may be a time (run up to and including that instant), an
        :class:`Event` (run until it triggers, returning its value), or
        ``None`` (run until no events remain).
        """
        if isinstance(until, Event):
            stop_event = until
            while not stop_event.triggered:
                try:
                    self.step()
                except EmptySchedule:
                    raise RuntimeError(
                        "simulation ran out of events before the awaited "
                        "event triggered"
                    ) from None
            if stop_event.failed:
                stop_event.defused = True
                raise stop_event.value
            return stop_event.value

        if until is not None:
            horizon = float(until)
            if horizon < self._now:
                raise ValueError(f"cannot run backwards to {horizon}")
            self._advance(horizon)
            self._now = horizon
            return None

        self._advance(float("inf"))
        return None

    def run_intervals(
        self,
        interval_s: float,
        intervals: int,
        on_interval: Optional[Callable[[int], None]] = None,
    ) -> None:
        """Advance the clock through ``intervals`` windows of ``interval_s``.

        Equivalent to calling ``run(until=start + k * interval_s)`` for
        ``k = 1..intervals``, but in one batch-stepping pass: the hot loop
        is entered once per interval instead of re-entering :meth:`run`
        (and re-validating its arguments) from the caller.  After each
        interval boundary ``on_interval`` is invoked with the zero-based
        interval index, with the clock parked exactly on the boundary.
        """
        if interval_s <= 0:
            raise ValueError(f"interval must be positive: {interval_s}")
        if intervals < 0:
            raise ValueError(f"negative interval count: {intervals}")
        start = self._now
        for index in range(intervals):
            horizon = start + interval_s * (index + 1)
            self._advance(horizon)
            self._now = horizon
            if on_interval is not None:
                on_interval(index)
