"""Shared-capacity resources for the simulation kernel.

Two abstractions are provided:

* :class:`Resource` — a counted semaphore with a FIFO wait queue, used to
  model bounded concurrency (e.g. a node's connection limit).
* :class:`WorkServer` — a processor-sharing-free, slot-based work server
  used to model a node's CPU/IO capacity: callers submit an amount of
  *work units* and are delayed by ``units / rate`` once a slot is free.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any, Generator, Optional

from .events import Event

if TYPE_CHECKING:  # pragma: no cover
    from .environment import Environment


class Request(Event):
    """A pending or granted claim on a :class:`Resource` slot."""

    def __init__(self, resource: "Resource") -> None:
        super().__init__(resource.env)
        self.resource = resource
        self.granted = False


class Resource:
    """A counted resource with FIFO granting.

    Usage from a process::

        request = resource.request()
        yield request
        try:
            ...  # hold the slot
        finally:
            resource.release(request)
    """

    def __init__(self, env: "Environment", capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self._in_use = 0
        self._waiting: deque[Request] = deque()

    @property
    def in_use(self) -> int:
        """Number of currently granted slots."""
        return self._in_use

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for a slot."""
        return len(self._waiting)

    def request(self) -> Request:
        """Ask for a slot; the returned event succeeds when granted."""
        req = Request(self)
        if self._in_use < self.capacity:
            self._grant(req)
        else:
            self._waiting.append(req)
        return req

    def release(self, request: Request) -> None:
        """Return a slot previously granted to ``request``."""
        if not request.granted:
            # The request never got a slot (e.g. the owner aborted while
            # waiting); just drop it from the queue.
            try:
                self._waiting.remove(request)
            except ValueError:
                pass
            return
        request.granted = False
        self._in_use -= 1
        while self._waiting and self._in_use < self.capacity:
            self._grant(self._waiting.popleft())

    def cancel(self, request: Request) -> None:
        """Withdraw a request (granted or not)."""
        self.release(request)

    def _grant(self, request: Request) -> None:
        request.granted = True
        self._in_use += 1
        request.succeed(request)


class WorkServer:
    """Models a node's processing capacity in *work units per second*.

    ``concurrency`` slots are served simultaneously; each admitted job
    takes ``units / rate`` seconds of virtual time.  With ``concurrency``
    equal to one, the server is an M/G/1-style queue — this is how data
    node CPUs are modelled so that saturation produces queueing delay, the
    central dynamic in the paper's high-load experiments.
    """

    def __init__(
        self,
        env: "Environment",
        rate: float,
        concurrency: int = 1,
    ) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        self.env = env
        self.rate = float(rate)
        self._resource = Resource(env, concurrency)
        self._busy_until = 0.0
        self._total_busy_time = 0.0

    @property
    def queue_length(self) -> int:
        """Jobs waiting for a serving slot."""
        return self._resource.queue_length

    @property
    def in_service(self) -> int:
        """Jobs currently being served."""
        return self._resource.in_use

    @property
    def total_busy_time(self) -> float:
        """Cumulative virtual time spent serving work (for utilisation)."""
        return self._total_busy_time

    def service_time(self, units: float) -> float:
        """Seconds of service required for ``units`` of work."""
        if units < 0:
            raise ValueError(f"negative work: {units}")
        return units / self.rate

    def work(self, units: float) -> Generator[Event, Any, None]:
        """Process generator: queue for a slot, then serve ``units``."""
        request = self._resource.request()
        yield request
        try:
            duration = self.service_time(units)
            self._total_busy_time += duration
            yield self.env.timeout(duration)
        finally:
            self._resource.release(request)

    def utilisation(self, elapsed: Optional[float] = None) -> float:
        """Fraction of elapsed time this server spent busy."""
        horizon = self.env.now if elapsed is None else elapsed
        if horizon <= 0:
            return 0.0
        return min(1.0, self._total_busy_time / horizon)
