"""Shared-capacity resources for the simulation kernel.

Two abstractions are provided:

* :class:`Resource` — a counted semaphore with a FIFO wait queue, used to
  model bounded concurrency (e.g. a node's connection limit).
* :class:`WorkServer` — a processor-sharing-free, slot-based work server
  used to model a node's CPU/IO capacity: callers submit an amount of
  *work units* and are delayed by ``units / rate`` once a slot is free.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any, Callable, Generator, Optional

from .events import Event

if TYPE_CHECKING:  # pragma: no cover
    from .environment import Environment


class Request(Event):
    """A pending or granted claim on a :class:`Resource` slot."""

    def __init__(self, resource: "Resource") -> None:
        super().__init__(resource.env)
        self.resource = resource
        self.granted = False


class Resource:
    """A counted resource with FIFO granting.

    Usage from a process::

        request = resource.request()
        yield request
        try:
            ...  # hold the slot
        finally:
            resource.release(request)
    """

    def __init__(self, env: "Environment", capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self._in_use = 0
        self._waiting: deque[Request] = deque()

    @property
    def in_use(self) -> int:
        """Number of currently granted slots."""
        return self._in_use

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for a slot."""
        return len(self._waiting)

    def request(self) -> Request:
        """Ask for a slot; the returned event succeeds when granted."""
        req = Request(self)
        if self._in_use < self.capacity:
            self._grant(req)
        else:
            self._waiting.append(req)
        return req

    def release(self, request: Request) -> None:
        """Return a slot previously granted to ``request``."""
        if not request.granted:
            # The request never got a slot (e.g. the owner aborted while
            # waiting); just drop it from the queue.
            try:
                self._waiting.remove(request)
            except ValueError:
                pass
            return
        request.granted = False
        self._in_use -= 1
        while self._waiting and self._in_use < self.capacity:
            self._grant(self._waiting.popleft())

    def cancel(self, request: Request) -> None:
        """Withdraw a request (granted or not)."""
        self.release(request)

    def fail_waiting(
        self, make_exc: Callable[[], BaseException]
    ) -> int:
        """Fail every queued (ungranted) request with a fresh exception.

        Used by failure injection: when the resource's owner crashes,
        processes parked in the wait queue are woken with the supplied
        error instead of dangling forever.  Granted slots are untouched —
        their owners are interrupted through other channels and release
        normally.  Returns the number of requests failed.
        """
        waiting, self._waiting = self._waiting, deque()
        for request in waiting:
            if not request.triggered:
                request.fail(make_exc())
        return len(waiting)

    def _grant(self, request: Request) -> None:
        request.granted = True
        self._in_use += 1
        request.succeed(request)


class WorkServer:
    """Models a node's processing capacity in *work units per second*.

    ``concurrency`` slots are served simultaneously; each admitted job
    takes ``units / rate`` seconds of virtual time.  With ``concurrency``
    equal to one, the server is an M/G/1-style queue — this is how data
    node CPUs are modelled so that saturation produces queueing delay, the
    central dynamic in the paper's high-load experiments.
    """

    def __init__(
        self,
        env: "Environment",
        rate: float,
        concurrency: int = 1,
    ) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        self.env = env
        self.rate = float(rate)
        self._resource = Resource(env, concurrency)
        self._busy_until = 0.0
        self._total_busy_time = 0.0
        #: When ``True`` every in-service job carries a kill event so a
        #: crash can abort it mid-service.  Off by default: the kill
        #: plumbing allocates two extra events per job, which the
        #: fault-free hot path should not pay for.
        self._interruptible = False
        self._kills: set[Event] = set()

    @property
    def queue_length(self) -> int:
        """Jobs waiting for a serving slot."""
        return self._resource.queue_length

    @property
    def in_service(self) -> int:
        """Jobs currently being served."""
        return self._resource.in_use

    @property
    def total_busy_time(self) -> float:
        """Cumulative virtual time spent serving work (for utilisation)."""
        return self._total_busy_time

    def service_time(self, units: float) -> float:
        """Seconds of service required for ``units`` of work."""
        if units < 0:
            raise ValueError(f"negative work: {units}")
        return units / self.rate

    @property
    def interruptible(self) -> bool:
        """Whether in-service jobs can be killed by :meth:`fail_all`."""
        return self._interruptible

    def make_interruptible(self) -> None:
        """Enable mid-service kills (required for in-flight crashes)."""
        self._interruptible = True

    def work(self, units: float) -> Generator[Event, Any, None]:
        """Process generator: queue for a slot, then serve ``units``."""
        request = self._resource.request()
        yield request
        if not self._interruptible:
            try:
                duration = self.service_time(units)
                self._total_busy_time += duration
                yield self.env.timeout(duration)
            finally:
                self._resource.release(request)
            return
        kill = Event(self.env)
        self._kills.add(kill)
        try:
            duration = self.service_time(units)
            self._total_busy_time += duration
            # A failing kill event fails the AnyOf, which raises the
            # crash exception right here inside the serving process.
            yield self.env.any_of([self.env.timeout(duration), kill])
        finally:
            self._kills.discard(kill)
            self._resource.release(request)

    def fail_all(self, make_exc: Callable[[], BaseException]) -> int:
        """Abort every queued and (if interruptible) in-service job.

        Queued jobs' slot requests fail immediately; in-service jobs'
        kill events fire, aborting them mid-service.  Returns the number
        of jobs failed.
        """
        failed = self._resource.fail_waiting(make_exc)
        kills, self._kills = self._kills, set()
        for kill in kills:
            if not kill.triggered:
                kill.fail(make_exc())
                failed += 1
        return failed

    def utilisation(self, elapsed: Optional[float] = None) -> float:
        """Fraction of elapsed time this server spent busy."""
        horizon = self.env.now if elapsed is None else elapsed
        if horizon <= 0:
            return 0.0
        return min(1.0, self._total_busy_time / horizon)
