"""Discrete-event simulation kernel used as the substrate for the cluster.

Public surface:

* :class:`Environment` — virtual clock and event loop.
* :class:`Event`, :class:`Timeout`, :class:`Process`, :class:`Interrupt`,
  :class:`AllOf`, :class:`AnyOf` — event primitives.
* :class:`Resource`, :class:`WorkServer` — capacity modelling.
* :class:`Network` — inter-node message delays.
* :class:`RandomStreams`, :class:`ZipfSampler`, :func:`poisson` — seeded
  randomness.
"""

from .environment import EmptySchedule, Environment
from .events import AllOf, AnyOf, Event, EventState, Interrupt, Process, Timeout
from .network import Network
from .random import RandomStreams, ZipfSampler, derive_seed, poisson, weighted_choice
from .resources import Request, Resource, WorkServer

__all__ = [
    "AllOf",
    "AnyOf",
    "EmptySchedule",
    "Environment",
    "Event",
    "EventState",
    "Interrupt",
    "Network",
    "Process",
    "RandomStreams",
    "Request",
    "Resource",
    "Timeout",
    "WorkServer",
    "ZipfSampler",
    "derive_seed",
    "poisson",
    "weighted_choice",
]
