"""Event primitives for the discrete-event simulation kernel.

The kernel follows the classic process-interaction style (as popularised by
SimPy): simulation logic is written as Python generators that ``yield``
events; the :class:`~repro.sim.environment.Environment` advances virtual
time and resumes each generator when the event it waits on is triggered.

Only the pieces the SOAP reproduction needs are implemented, but they are
implemented completely: success/failure propagation, process interruption,
and ``AllOf``/``AnyOf`` composition.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Any, Callable, Generator, Iterable, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from .environment import Environment


class EventState(enum.Enum):
    """Lifecycle states of an :class:`Event`."""

    PENDING = "pending"
    SUCCEEDED = "succeeded"
    FAILED = "failed"


class Event:
    """A condition that may be triggered once at some point in virtual time.

    Processes wait on events by yielding them.  An event carries a *value*
    (delivered to waiters on success) or an *exception* (raised inside
    waiters on failure).

    Events are allocated (and discarded) once per transaction step, so the
    kernel classes declare ``__slots__``; subclasses outside this module
    that need ad-hoc attributes simply omit ``__slots__`` and get a
    ``__dict__`` as usual.
    """

    __slots__ = ("env", "callbacks", "_state", "_value", "_exception", "defused")

    #: Class-level flag the environment's hot loop reads instead of an
    #: ``isinstance(event, Timeout)`` check.
    _is_timeout = False

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._state = EventState.PENDING
        self._value: Any = None
        self._exception: Optional[BaseException] = None
        #: Set by the environment when a failed event's exception was
        #: delivered to at least one waiter (or explicitly defused).
        self.defused = False

    # ------------------------------------------------------------------
    # State inspection
    # ------------------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """``True`` once the event has succeeded or failed."""
        return self._state is not EventState.PENDING

    @property
    def ok(self) -> bool:
        """``True`` when the event succeeded."""
        return self._state is EventState.SUCCEEDED

    @property
    def failed(self) -> bool:
        """``True`` when the event failed."""
        return self._state is EventState.FAILED

    @property
    def value(self) -> Any:
        """The success value, or the failure exception."""
        if self._state is EventState.FAILED:
            return self._exception
        return self._value

    # ------------------------------------------------------------------
    # Triggering
    # ------------------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self.triggered:
            raise RuntimeError(f"{self!r} has already been triggered")
        self._state = EventState.SUCCEEDED
        self._value = value
        self.env._enqueue_triggered(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as failed with ``exception``."""
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        if self.triggered:
            raise RuntimeError(f"{self!r} has already been triggered")
        self._state = EventState.FAILED
        self._exception = exception
        self.env._enqueue_triggered(self)
        return self

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self._state.value} at t={self.env.now}>"


class Timeout(Event):
    """An event that succeeds after ``delay`` units of virtual time."""

    __slots__ = ("delay",)

    _is_timeout = True

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        super().__init__(env)
        self.delay = delay
        self._value = value
        env._schedule_at(env.now + delay, self)

    def succeed(self, value: Any = None) -> "Event":  # pragma: no cover
        raise RuntimeError("Timeout events trigger themselves")


class Interrupt(Exception):
    """Raised inside a process that another process interrupted.

    The interrupting party supplies ``cause``, available as
    ``interrupt.cause`` to the interrupted process.
    """

    @property
    def cause(self) -> Any:
        return self.args[0] if self.args else None


class Process(Event):
    """Wraps a generator so it can run as a simulation process.

    The process *is itself an event*: it succeeds with the generator's
    return value, or fails with an uncaught exception, so other processes
    may wait on its completion.
    """

    __slots__ = ("_generator", "_waiting_on", "_wait_callback")

    def __init__(self, env: "Environment", generator: Generator[Event, Any, Any]) -> None:
        if not hasattr(generator, "send"):
            raise TypeError(f"process requires a generator, got {generator!r}")
        super().__init__(env)
        self._generator = generator
        self._waiting_on: Optional[Event] = None
        self._wait_callback: Optional[Callable[[Event], None]] = None
        # Kick the process off at the current instant.  A bare scheduled
        # callback consumes one sequence number exactly like the
        # immediately-succeeding start event it replaces, so ordering is
        # unchanged — without allocating an Event per process start.
        env._call_soon(self._first_resume)

    @property
    def is_alive(self) -> bool:
        """``True`` while the underlying generator has not finished."""
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Interrupting a finished process is an error; interrupting a process
        that is waiting on an event detaches it from that event first.
        """
        if self.triggered:
            raise RuntimeError("cannot interrupt a finished process")
        if self._waiting_on is self:
            raise RuntimeError("a process cannot interrupt itself")
        waiting_on = self._waiting_on
        if (
            waiting_on is not None
            and waiting_on.callbacks is not None
            and self._wait_callback is not None
        ):
            try:
                waiting_on.callbacks.remove(self._wait_callback)
            except ValueError:  # pragma: no cover - defensive
                pass
        self._waiting_on = None
        self._wait_callback = None
        self.env._call_soon(lambda: self._throw(Interrupt(cause)))

    # ------------------------------------------------------------------
    # Internal stepping
    # ------------------------------------------------------------------
    def _first_resume(self) -> None:
        """Initial resume: send ``None`` into the fresh generator.

        Equivalent to :meth:`_resume` with a just-succeeded valueless
        start event, minus the event allocation.
        """
        if self.triggered:
            # The process was interrupted (and finished) before its first
            # resume; the kick-off callback is stale.
            return
        try:
            target = self._generator.send(None)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:  # noqa: BLE001 - kernel boundary
            self.fail(exc)
            return
        self._wait_on(target)

    def _resume(self, event: Event) -> None:
        if self.triggered:
            # Stale wake-up: the process already finished — e.g. it was
            # interrupted before its first resume, so the kick-off (or a
            # pending wait target) still held this callback.
            if event.failed:
                event.defused = True
            return
        self._waiting_on = None
        self._wait_callback = None
        try:
            if event.failed:
                event.defused = True
                target = self._generator.throw(event.value)
            else:
                target = self._generator.send(event.value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:  # noqa: BLE001 - kernel boundary
            self.fail(exc)
            return
        self._wait_on(target)

    def _throw(self, exc: BaseException) -> None:
        if self.triggered:  # interrupted after finishing in the same tick
            return
        try:
            target = self._generator.throw(exc)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as raised:  # noqa: BLE001 - kernel boundary
            self.fail(raised)
            return
        self._wait_on(target)

    def _wait_on(self, target: Any) -> None:
        if not isinstance(target, Event):
            self._throw(TypeError(f"process yielded a non-event: {target!r}"))
            return
        if target.triggered:
            # Already done: resume on the next tick to keep ordering fair,
            # via a proxy event so an interrupt can still detach us.
            proxy = Event(self.env)

            def forward(_proxy: Event, target: Event = target) -> None:
                self._resume(target)

            assert proxy.callbacks is not None
            proxy.callbacks.append(forward)
            proxy.succeed()
            self._waiting_on = proxy
            self._wait_callback = forward
            return
        assert target.callbacks is not None
        target.callbacks.append(self._resume)
        self._waiting_on = target
        self._wait_callback = self._resume


class Condition(Event):
    """Base for composite events over a set of child events."""

    __slots__ = ("_events", "_count")

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env)
        self._events = list(events)
        for event in self._events:
            if event.env is not env:
                raise ValueError("all events must belong to the same environment")
        self._count = 0
        if not self._events:
            self.succeed(self._collect())
            return
        for event in self._events:
            if event.triggered:
                self._on_child(event)
            else:
                assert event.callbacks is not None
                event.callbacks.append(self._on_child)

    def _collect(self) -> dict[Event, Any]:
        return {event: event.value for event in self._events if event.ok}

    def _on_child(self, event: Event) -> None:
        if event.failed:
            # Always defuse: a child failing after the condition already
            # triggered must not escalate to the event loop.
            event.defused = True
        if self.triggered:
            return
        if event.failed:
            self.fail(event.value)
            return
        self._count += 1
        if self._satisfied():
            self.succeed(self._collect())

    def _satisfied(self) -> bool:  # pragma: no cover - abstract
        raise NotImplementedError


class AllOf(Condition):
    """Succeeds when *all* child events have succeeded."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return self._count == len(self._events)


class AnyOf(Condition):
    """Succeeds when *any* child event has succeeded."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return self._count >= 1
