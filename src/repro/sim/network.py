"""A simple latency/bandwidth network model between cluster nodes.

The paper's testbed is an EC2 cluster, where inter-node messages (2PC
votes, tuple transfers during migration) cost a fixed propagation latency
plus a size-dependent transmission time.  That is exactly what this module
models; contention on links is not modelled because the paper's bottleneck
is node capacity and lock contention, not network saturation.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator

from .events import Event

if TYPE_CHECKING:  # pragma: no cover
    from .environment import Environment


class Network:
    """Point-to-point message delays between nodes.

    Parameters
    ----------
    latency_s:
        One-way propagation delay in seconds for any message.
    bandwidth_bytes_per_s:
        Link throughput used to charge large payloads (tuple migration).
    """

    def __init__(
        self,
        env: "Environment",
        latency_s: float = 0.0005,
        bandwidth_bytes_per_s: float = 100e6,
    ) -> None:
        if latency_s < 0:
            raise ValueError(f"negative latency: {latency_s}")
        if bandwidth_bytes_per_s <= 0:
            raise ValueError(f"bandwidth must be positive: {bandwidth_bytes_per_s}")
        self.env = env
        self.latency_s = latency_s
        self.bandwidth_bytes_per_s = bandwidth_bytes_per_s
        self.messages_sent = 0
        self.bytes_sent = 0

    def delay_for(self, payload_bytes: int = 0) -> float:
        """Seconds needed to deliver a message of ``payload_bytes``."""
        if payload_bytes < 0:
            raise ValueError(f"negative payload: {payload_bytes}")
        return self.latency_s + payload_bytes / self.bandwidth_bytes_per_s

    def transfer(
        self, source: Any, destination: Any, payload_bytes: int = 0
    ) -> Generator[Event, Any, None]:
        """Process generator that waits for one message delivery.

        ``source`` and ``destination`` are accepted for interface symmetry
        (and so subclasses can model per-pair latencies); a transfer between
        a node and itself is free.
        """
        if source == destination:
            return
        self.messages_sent += 1
        self.bytes_sent += payload_bytes
        yield self.env.timeout(self.delay_for(payload_bytes))

    def round_trip(
        self, source: Any, destination: Any, payload_bytes: int = 0
    ) -> Generator[Event, Any, None]:
        """Process generator for a request/response pair."""
        yield from self.transfer(source, destination, payload_bytes)
        yield from self.transfer(destination, source, 0)
