"""Named, seeded random streams.

Every stochastic element of the simulation (arrivals, key selection,
read/write coin flips, capacity noise, ...) draws from its own named
stream derived deterministically from a single master seed.  This keeps
runs reproducible *and* keeps the streams independent: adding draws to one
stream never perturbs another, so e.g. two schedulers can be compared on
identical arrival sequences.
"""

from __future__ import annotations

import hashlib
import math
import random
from typing import Sequence


def derive_seed(master_seed: int, name: str) -> int:
    """Derive a 64-bit child seed from ``master_seed`` and a stream name."""
    digest = hashlib.sha256(f"{master_seed}:{name}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


class RandomStreams:
    """A factory handing out independent named :class:`random.Random` streams."""

    def __init__(self, master_seed: int = 0) -> None:
        self.master_seed = master_seed
        self._streams: dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use."""
        if name not in self._streams:
            self._streams[name] = random.Random(derive_seed(self.master_seed, name))
        return self._streams[name]

    def spawn(self, name: str) -> "RandomStreams":
        """Create a child factory with an independent master seed."""
        return RandomStreams(derive_seed(self.master_seed, f"spawn:{name}"))


class ZipfSampler:
    """Samples ranks 1..n with probability proportional to ``1 / rank**s``.

    Uses an explicit cumulative table with binary search, which is exact
    (unlike rejection methods) and fast enough for the population sizes
    used here.  ``s = 1.16`` over the paper's population approximates the
    80-20 rule the paper targets.
    """

    def __init__(self, n: int, s: float, rng: random.Random) -> None:
        if n < 1:
            raise ValueError(f"population size must be >= 1, got {n}")
        if s < 0:
            raise ValueError(f"skew must be non-negative, got {s}")
        self.n = n
        self.s = s
        self._rng = rng
        weights = [1.0 / (rank**s) for rank in range(1, n + 1)]
        total = math.fsum(weights)
        self.probabilities = [w / total for w in weights]
        self._cumulative: list[float] = []
        acc = 0.0
        for p in self.probabilities:
            acc += p
            self._cumulative.append(acc)
        self._cumulative[-1] = 1.0  # guard against float round-off

    def sample(self) -> int:
        """Draw a rank in ``[0, n)`` (0 is the hottest)."""
        u = self._rng.random()
        lo, hi = 0, self.n - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if self._cumulative[mid] < u:
                lo = mid + 1
            else:
                hi = mid
        return lo

    def top_mass(self, k: int) -> float:
        """Probability mass of the ``k`` hottest ranks."""
        if k <= 0:
            return 0.0
        return self._cumulative[min(k, self.n) - 1]


def poisson(rng: random.Random, mean: float) -> int:
    """Draw from a Poisson distribution with the given mean.

    Uses Knuth's method for small means and a normal approximation for
    large ones (mean > 64), which is ample for per-interval arrival counts.
    """
    if mean < 0:
        raise ValueError(f"negative mean: {mean}")
    if mean == 0:
        return 0
    if mean > 64:
        draw = rng.gauss(mean, math.sqrt(mean))
        return max(0, int(round(draw)))
    threshold = math.exp(-mean)
    k = 0
    product = rng.random()
    while product > threshold:
        k += 1
        product *= rng.random()
    return k


def weighted_choice(rng: random.Random, cumulative: Sequence[float]) -> int:
    """Binary-search a pre-computed cumulative distribution."""
    u = rng.random()
    lo, hi = 0, len(cumulative) - 1
    while lo < hi:
        mid = (lo + hi) // 2
        if cumulative[mid] < u:
            lo = mid + 1
        else:
            hi = mid
    return lo
