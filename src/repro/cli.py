"""Command-line interface: run experiment cells and regenerate artefacts.

Usage examples::

    python -m repro run --scheduler Hybrid --distribution zipf --load high
    python -m repro compare --distribution uniform --load low --alpha 0.6
    python -m repro figure 4 --jobs 4
    python -m repro figure 4 --jobs 4      # second run: all cells cached
    python -m repro sweep --seeds 0 1 2 3 --jobs 4 --no-cache
    python -m repro table1
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
from typing import Optional, Sequence

from .experiments import (
    CACHE_DIR_ENV,
    DEFAULT_CACHE_DIR,
    SCHEDULER_NAMES,
    CellReport,
    ResultCache,
    bench_scale,
    figure3_failure_rate,
    figure4_zipf_high,
    figure5_uniform_high,
    figure6_zipf_low,
    figure7_uniform_low,
    figure_elastic,
    format_table1,
    run_cells,
)
from .metrics import format_comparison_table, format_interval_table

_FIGURES = {
    "3": figure3_failure_rate,
    "4": figure4_zipf_high,
    "5": figure5_uniform_high,
    "6": figure6_zipf_low,
    "7": figure7_uniform_low,
    "elastic": figure_elastic,
}


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SOAP: online data partitioning (EDBT 2015) reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run one experiment cell")
    _add_cell_arguments(run)
    run.add_argument(
        "--every", type=int, default=2,
        help="print every Nth interval row",
    )
    run.add_argument(
        "--export", metavar="PATH", default=None,
        help="write the result to PATH (.json or .csv)",
    )

    compare = sub.add_parser(
        "compare", help="run all five schedulers on one workload"
    )
    _add_cell_arguments(compare, with_scheduler=False)
    compare.add_argument(
        "--metric",
        default="rep_rate",
        choices=(
            "rep_rate", "throughput_txn_per_min", "mean_latency_ms",
            "failure_rate",
        ),
    )

    figure = sub.add_parser("figure", help="regenerate a paper figure")
    figure.add_argument("number", choices=sorted(_FIGURES))
    figure.add_argument("--seed", type=int, default=0)

    sweep = sub.add_parser(
        "sweep", help="run one cell across several seeds and aggregate"
    )
    _add_cell_arguments(sweep)
    sweep.add_argument(
        "--seeds", type=int, nargs="+", default=[0, 1, 2],
        help="seeds to sweep",
    )

    for command in (run, compare, figure, sweep):
        _add_engine_arguments(command)

    sub.add_parser("table1", help="print Table 1 (SP setpoints)")
    return parser


def _add_cell_arguments(
    parser: argparse.ArgumentParser, with_scheduler: bool = True
) -> None:
    if with_scheduler:
        parser.add_argument(
            "--scheduler", default="Hybrid", choices=SCHEDULER_NAMES
        )
    parser.add_argument(
        "--distribution", default="zipf", choices=("zipf", "uniform")
    )
    parser.add_argument("--load", default="high", choices=("high", "low"))
    parser.add_argument("--alpha", type=float, default=1.0)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--intervals", type=int, default=40)
    parser.add_argument("--warmup", type=int, default=5)
    parser.add_argument(
        "--fault-schedule", default=None, metavar="SCHEDULE",
        help=(
            "inject node crashes: either TIME:ACTION:NODE events "
            "('120:crash:2,180:restart:2') or MTBF/MTTR "
            "('mtbf=300,mttr=30[,start=S][,end=E]')"
        ),
    )
    parser.add_argument(
        "--elasticity-schedule", default=None, metavar="SCHEDULE",
        help=(
            "grow/shrink the cluster mid-run: either TIME:ACTION:VALUE "
            "events ('200:add:5,600:drain:7', where add's value is a "
            "node count and drain's a node id) or queue-watermark "
            "policy ('high=50,low=2,check=3[,max=M][,min=N]')"
        ),
    )
    parser.add_argument(
        "--stale-route-policy", default="follow",
        choices=("follow", "abort"),
        help=(
            "when a tuple migrates under a running transaction: "
            "'follow' re-routes to its new home (default), 'abort' "
            "raises a retryable stale_route abort judged against the "
            "epoch pinned at admission"
        ),
    )


def _add_engine_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for independent cells (0 = one per CPU)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="always re-run cells, even when a cached result exists",
    )
    parser.add_argument(
        "--cache-dir", default=None, metavar="PATH",
        help=(
            f"result cache directory (default {DEFAULT_CACHE_DIR!r}, "
            f"overridable via ${CACHE_DIR_ENV})"
        ),
    )
    parser.add_argument(
        "--verbose", action="store_true",
        help="break the cache summary down by layer (memory LRU vs disk)",
    )


def _engine(args: argparse.Namespace) -> tuple[Optional[ResultCache], CellReport]:
    """The cache (honouring --no-cache/--cache-dir) and a fresh report."""
    cache = None if args.no_cache else ResultCache(args.cache_dir)
    return cache, CellReport()


def _print_report(
    report: CellReport,
    cache: Optional[ResultCache],
    verbose: bool = False,
) -> None:
    if cache is None:
        print(f"ran {report.describe()} (cache disabled)", file=sys.stderr)
        return
    print(
        f"ran {report.describe()} "
        f"[cache: {report.cache_hits} hit(s), "
        f"{report.cache_misses} miss(es) in {cache.directory}]",
        file=sys.stderr,
    )
    if verbose:
        disk_hits = cache.hits - cache.memory_hits
        print(
            f"[cache layers: {cache.memory_hits} memory hit(s), "
            f"{disk_hits} disk hit(s), {cache.misses} miss(es)]",
            file=sys.stderr,
        )


def _cell_config(args: argparse.Namespace, scheduler: Optional[str] = None):
    faults = None
    if getattr(args, "fault_schedule", None):
        from .faults import parse_fault_schedule

        faults = parse_fault_schedule(args.fault_schedule)
    elasticity = None
    if getattr(args, "elasticity_schedule", None):
        from .elasticity import parse_elasticity_schedule

        elasticity = parse_elasticity_schedule(args.elasticity_schedule)
    config = bench_scale(
        scheduler=scheduler or args.scheduler,
        distribution=args.distribution,
        load=args.load,
        alpha=args.alpha,
        seed=args.seed,
        measure_intervals=args.intervals,
        warmup_intervals=args.warmup,
        faults=faults,
        elasticity=elasticity,
    )
    policy = getattr(args, "stale_route_policy", "follow")
    if policy != "follow":
        config = dataclasses.replace(
            config,
            runtime=dataclasses.replace(
                config.runtime, stale_route_policy=policy
            ),
        )
    return config


def _command_run(args: argparse.Namespace) -> int:
    config = _cell_config(args)
    cache, report = _engine(args)
    print(f"running {config.name} ...", file=sys.stderr)
    result = run_cells(
        [config], jobs=args.jobs, cache=cache, report=report
    )[0]
    _print_report(report, cache, verbose=args.verbose)
    print(format_interval_table(result.measured, every=args.every))
    print()
    for key, value in result.summary.items():
        print(f"{key}: {value:.3f}")
    if args.export:
        from .metrics import save_result

        save_result(result, args.export)
        print(f"exported to {args.export}", file=sys.stderr)
    return 0


def _command_compare(args: argparse.Namespace) -> int:
    cache, report = _engine(args)
    configs = [
        _cell_config(args, scheduler) for scheduler in SCHEDULER_NAMES
    ]
    results = run_cells(
        configs,
        jobs=args.jobs,
        cache=cache,
        progress=lambda config: print(
            f"running {config.scheduler} ...", file=sys.stderr
        ),
        report=report,
    )
    _print_report(report, cache, verbose=args.verbose)
    records = {
        scheduler: result.measured
        for scheduler, result in zip(SCHEDULER_NAMES, results)
    }
    title = (
        f"{args.metric} — {args.distribution}/{args.load}, "
        f"alpha={int(args.alpha * 100)}%"
    )
    print(format_comparison_table(records, args.metric, title, every=5))
    return 0


def _command_figure(args: argparse.Namespace) -> int:
    builder = _FIGURES[args.number]
    cache, report = _engine(args)
    print(f"regenerating Figure {args.number} ...", file=sys.stderr)
    result = builder(
        seed=args.seed,
        jobs=args.jobs,
        cache=cache,
        report=report,
        progress=lambda label: print(f"running {label} ...", file=sys.stderr),
    )
    _print_report(report, cache, verbose=args.verbose)
    print(result.render(every=5))
    return 0


def _command_sweep(args: argparse.Namespace) -> int:
    from .experiments import sweep_seeds

    config = _cell_config(args)
    cache, report = _engine(args)
    sweep = sweep_seeds(
        config,
        args.seeds,
        progress=lambda seed: print(
            f"running {config.name} seed={seed} ...", file=sys.stderr
        ),
        jobs=args.jobs,
        cache=cache,
        report=report,
    )
    _print_report(report, cache, verbose=args.verbose)
    for metric in (
        "mean_throughput_txn_per_min",
        "mean_latency_ms",
        "mean_failure_rate",
        "final_rep_rate",
    ):
        stats = sweep.stats(metric)
        print(
            f"{metric}: {stats.mean:.3f} ± {stats.sample_std:.3f} "
            f"(min {stats.minimum:.3f}, max {stats.maximum:.3f}, "
            f"n={stats.samples})"
        )
    print(f"completion fraction: {sweep.completion_fraction():.2f}")
    return 0


def _command_table1(_args: argparse.Namespace) -> int:
    print(format_table1())
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {
        "run": _command_run,
        "compare": _command_compare,
        "figure": _command_figure,
        "sweep": _command_sweep,
        "table1": _command_table1,
    }
    return handlers[args.command](args)
