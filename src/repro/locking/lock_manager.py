"""Two-phase-locking lock manager with shared/exclusive tuple locks.

Each data node owns one lock manager guarding the tuples resident on it.
Requests are granted strictly FIFO (a new shared request waits behind an
already-waiting exclusive request, preventing writer starvation), with
the single classic exception that a lock *upgrade* (S→X by a transaction
already holding S) jumps to the front of the queue.

Deadlocks are resolved two ways, matching the paper's substrate:

* a global wait-for-graph :class:`~repro.locking.deadlock.DeadlockDetector`
  (shared across all nodes' lock managers) aborts a victim as soon as a
  cycle forms, even when the cycle spans nodes, and
* the transaction executor may additionally impose a lock-wait timeout
  (PostgreSQL-style), which shows up as aborted transactions in the
  failure-rate metric.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Optional

from ..errors import DeadlockAbort
from ..sim.events import Event
from ..types import AccessMode, TupleKey, TxnId
from .deadlock import DeadlockDetector

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.environment import Environment


class LockMode(enum.Enum):
    """Shared (read) or exclusive (write) tuple lock."""

    SHARED = "S"
    EXCLUSIVE = "X"

    @classmethod
    def for_access(cls, mode: AccessMode) -> "LockMode":
        """Map a query access mode to the lock mode 2PL requires."""
        return cls.SHARED if mode is AccessMode.READ else cls.EXCLUSIVE


def _compatible(requested: LockMode, held: LockMode) -> bool:
    return requested is LockMode.SHARED and held is LockMode.SHARED


@dataclass
class _Waiter:
    txn_id: TxnId
    mode: LockMode
    event: Event
    is_upgrade: bool = False


@dataclass
class _Entry:
    holders: dict[TxnId, LockMode] = field(default_factory=dict)
    waiters: deque[_Waiter] = field(default_factory=deque)

    def is_idle(self) -> bool:
        return not self.holders and not self.waiters


class LockManager:
    """Grants and tracks tuple locks for one node's partition."""

    def __init__(
        self,
        env: "Environment",
        detector: Optional[DeadlockDetector] = None,
        name: str = "locks",
    ) -> None:
        self.env = env
        self.detector = detector
        self.name = name
        self._table: dict[TupleKey, _Entry] = {}
        self._held_by_txn: dict[TxnId, set[TupleKey]] = {}
        #: txn -> key -> number of pending requests (a transaction may
        #: legally queue several requests for the same key, e.g. an S
        #: request issued while an X request is still waiting).
        self._waiting_by_txn: dict[TxnId, dict[TupleKey, int]] = {}
        self.grants = 0
        self.waits = 0
        self.deadlock_aborts = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def holds(self, txn_id: TxnId, key: TupleKey) -> Optional[LockMode]:
        """Mode ``txn_id`` currently holds on ``key``, or ``None``."""
        entry = self._table.get(key)
        if entry is None:
            return None
        return entry.holders.get(txn_id)

    def holders_of(self, key: TupleKey) -> dict[TxnId, LockMode]:
        """Snapshot of current holders of ``key``."""
        entry = self._table.get(key)
        return dict(entry.holders) if entry else {}

    def queue_length(self, key: TupleKey) -> int:
        """Number of transactions waiting on ``key``."""
        entry = self._table.get(key)
        return len(entry.waiters) if entry else 0

    def locked_keys(self, txn_id: TxnId) -> frozenset[TupleKey]:
        """Keys on which ``txn_id`` holds a lock here."""
        return frozenset(self._held_by_txn.get(txn_id, ()))

    def is_waiting(self, txn_id: TxnId) -> bool:
        """Whether ``txn_id`` has any pending request at this manager."""
        return txn_id in self._waiting_by_txn

    # ------------------------------------------------------------------
    # Acquire / release
    # ------------------------------------------------------------------
    def acquire(self, txn_id: TxnId, key: TupleKey, mode: LockMode) -> Event:
        """Request ``mode`` on ``key`` for ``txn_id``.

        Returns an event that succeeds when the lock is granted (it may
        already be triggered on return for the uncontended path).  If
        the new wait closes a wait-for cycle, the chosen victim's pending
        event fails with :class:`DeadlockAbort` — possibly the event
        returned here.
        """
        entry = self._table.setdefault(key, _Entry())
        event = Event(self.env)
        held = entry.holders.get(txn_id)

        if held is not None:
            if held is LockMode.EXCLUSIVE or held is mode:
                event.succeed(key)
                return event
            # Upgrade S -> X: jumps the queue, waits only on co-holders.
            others = [t for t in entry.holders if t != txn_id]
            if not others:
                entry.holders[txn_id] = LockMode.EXCLUSIVE
                self.grants += 1
                event.succeed(key)
                return event
            waiter = _Waiter(txn_id, LockMode.EXCLUSIVE, event, is_upgrade=True)
            entry.waiters.appendleft(waiter)
            self.waits += 1
            self._begin_wait(txn_id, key, event)
            self._refresh_wait_edges(key, entry)
            self._run_deadlock_check(txn_id)
            return event

        grantable = not entry.waiters and all(
            _compatible(mode, held_mode) for held_mode in entry.holders.values()
        )
        if grantable:
            entry.holders[txn_id] = mode
            self._held_by_txn.setdefault(txn_id, set()).add(key)
            self.grants += 1
            event.succeed(key)
            return event

        entry.waiters.append(_Waiter(txn_id, mode, event))
        self.waits += 1
        self._begin_wait(txn_id, key, event)
        self._refresh_wait_edges(key, entry)
        self._run_deadlock_check(txn_id)
        return event

    def cancel(self, txn_id: TxnId, key: TupleKey) -> None:
        """Withdraw every waiting request of ``txn_id`` on ``key``."""
        entry = self._table.get(key)
        if entry is None:
            return
        before = len(entry.waiters)
        entry.waiters = deque(w for w in entry.waiters if w.txn_id != txn_id)
        removed = before - len(entry.waiters)
        if removed:
            for _ in range(removed):
                self._end_wait(txn_id, key)
            self._grant_from_queue(key, entry)

    def release(self, txn_id: TxnId, key: TupleKey) -> None:
        """Release one lock held by ``txn_id``."""
        entry = self._table.get(key)
        if entry is None or txn_id not in entry.holders:
            return
        del entry.holders[txn_id]
        held = self._held_by_txn.get(txn_id)
        if held is not None:
            held.discard(key)
            if not held:
                del self._held_by_txn[txn_id]
        self._grant_from_queue(key, entry)

    def release_all(self, txn_id: TxnId) -> None:
        """Release every lock and withdraw every wait of ``txn_id``."""
        for key in list(self._waiting_by_txn.get(txn_id, ())):
            self.cancel(txn_id, key)
        for key in list(self._held_by_txn.get(txn_id, ())):
            self.release(txn_id, key)
        if self.detector is not None:
            self.detector.remove_transaction(txn_id)

    def fail_all_waiters(
        self, make_exc: Callable[[TxnId, TupleKey], BaseException]
    ) -> int:
        """Fail every pending lock request (the node crashed).

        Each waiter's event fails with ``make_exc(txn_id, key)``, which
        the waiting transaction's process receives at its yield point.
        Holders are left alone — crash handling wipes the whole lock
        table afterwards, and the holders' processes are aborted through
        the work-server and 2PC channels.  Returns the number of waits
        failed.
        """
        failed = 0
        for key in list(self._table):
            entry = self._table.get(key)
            if entry is None:
                continue
            waiters, entry.waiters = list(entry.waiters), deque()
            for waiter in waiters:
                self._end_wait(waiter.txn_id, key)
                if not waiter.event.triggered:
                    waiter.event.fail(make_exc(waiter.txn_id, key))
                failed += 1
            if entry.is_idle():
                self._table.pop(key, None)
        return failed

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _begin_wait(self, txn_id: TxnId, key: TupleKey, event: Event) -> None:
        counts = self._waiting_by_txn.setdefault(txn_id, {})
        counts[key] = counts.get(key, 0) + 1
        if self.detector is not None:
            self.detector.register_wait_site(txn_id, self, key, event)

    def _end_wait(self, txn_id: TxnId, key: TupleKey) -> None:
        counts = self._waiting_by_txn.get(txn_id)
        if counts is not None and key in counts:
            counts[key] -= 1
            if counts[key] <= 0:
                del counts[key]
            if not counts:
                del self._waiting_by_txn[txn_id]
        if self.detector is not None and txn_id not in self._waiting_by_txn:
            self.detector.clear_waits(txn_id)
            self.detector.unregister_wait_site(txn_id)

    def _grant_from_queue(self, key: TupleKey, entry: _Entry) -> None:
        """Grant as many queued requests as FIFO order allows."""
        while entry.waiters:
            head = entry.waiters[0]
            if head.is_upgrade:
                others = [t for t in entry.holders if t != head.txn_id]
                if others:
                    break
                entry.waiters.popleft()
                entry.holders[head.txn_id] = LockMode.EXCLUSIVE
                self._held_by_txn.setdefault(head.txn_id, set()).add(key)
                self._finish_grant(head, key)
                break
            compatible = all(
                _compatible(head.mode, held) for held in entry.holders.values()
            )
            if not compatible:
                break
            entry.waiters.popleft()
            entry.holders[head.txn_id] = head.mode
            self._held_by_txn.setdefault(head.txn_id, set()).add(key)
            self._finish_grant(head, key)
            if head.mode is LockMode.EXCLUSIVE:
                break
        if entry.is_idle():
            self._table.pop(key, None)
        else:
            self._refresh_wait_edges(key, entry)

    def _finish_grant(self, waiter: _Waiter, key: TupleKey) -> None:
        self.grants += 1
        self._end_wait(waiter.txn_id, key)
        if not waiter.event.triggered:
            waiter.event.succeed(key)

    def _refresh_wait_edges(self, key: TupleKey, entry: _Entry) -> None:
        """Recompute the wait-for edges contributed by ``key``'s queue."""
        if self.detector is None:
            return
        ahead: list[tuple[TxnId, LockMode]] = list(entry.holders.items())
        for waiter in entry.waiters:
            blockers = {
                txn
                for txn, mode in ahead
                if txn != waiter.txn_id and not _compatible(waiter.mode, mode)
            }
            existing = self.detector.waits_of(waiter.txn_id)
            self.detector.set_waits(waiter.txn_id, blockers | set(existing))
            ahead.append((waiter.txn_id, waiter.mode))

    def _run_deadlock_check(self, txn_id: TxnId) -> None:
        if self.detector is None:
            return
        victim = self.detector.check(txn_id)
        if victim is None:
            return
        cycle = self.detector.find_cycle(victim) or (victim,)
        site = self.detector.wait_site(victim)
        if site is None:
            # Victim is not blocked anywhere we can see (e.g. it holds
            # locks but runs); fall back to letting timeouts resolve it.
            return
        manager, victim_key, victim_event = site
        assert isinstance(manager, LockManager)
        manager._evict_waiter(victim, victim_key, victim_event, tuple(cycle))

    def _evict_waiter(
        self,
        victim: TxnId,
        key: TupleKey,
        event: Event,
        cycle: tuple[TxnId, ...],
    ) -> None:
        """Abort ``victim``'s pending request on ``key`` at this manager."""
        entry = self._table.get(key)
        if entry is None:
            return
        target = next(
            (w for w in entry.waiters if w.txn_id == victim and w.event is event),
            None,
        )
        if target is None:
            return
        entry.waiters.remove(target)
        self.deadlock_aborts += 1
        self._end_wait(victim, key)
        if self.detector is not None:
            self.detector.remove_transaction(victim)
        if not target.event.triggered:
            target.event.fail(DeadlockAbort(victim, cycle))
        self._grant_from_queue(key, entry)
