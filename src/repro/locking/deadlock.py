"""Global wait-for-graph deadlock detection.

All lock managers in the cluster report who-waits-for-whom edges to a
single :class:`DeadlockDetector` (the simulation runs in one process, so a
global view is free — on the paper's real cluster this role is played by
distributed deadlock detection or, as in PostgreSQL, per-node detection
plus lock timeouts, which we also support).

When a cycle appears the detector picks a victim and reports it; the lock
manager then fails that transaction's pending lock request with
:class:`~repro.errors.DeadlockAbort`.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional

from ..types import TxnId

#: Chooses the victim among the transactions in a cycle.
VictimPolicy = Callable[[tuple[TxnId, ...]], TxnId]


def youngest_victim(cycle: tuple[TxnId, ...]) -> TxnId:
    """Default policy: abort the youngest (highest-id) transaction.

    Younger transactions have done the least work, so aborting them wastes
    the least — the classic textbook choice.
    """
    return max(cycle)


class DeadlockDetector:
    """Maintains the wait-for graph and finds cycles incrementally.

    Besides the graph itself, the detector keeps a registry of *where*
    each transaction is waiting (which lock manager, key, and pending
    event), so that a victim whose blocking wait lives on a different
    node than the one that closed the cycle can still be aborted.
    """

    def __init__(self, victim_policy: VictimPolicy = youngest_victim) -> None:
        self._waits_for: dict[TxnId, set[TxnId]] = {}
        self._victim_policy = victim_policy
        #: txn -> (lock manager, key, pending event) of its active wait.
        self._wait_sites: dict[TxnId, tuple[object, TxnId, object]] = {}
        self.cycles_found = 0
        self.victims_aborted = 0

    # ------------------------------------------------------------------
    # Wait-site registry (used to abort victims on any node)
    # ------------------------------------------------------------------
    def register_wait_site(
        self, txn_id: TxnId, manager: object, key: object, event: object
    ) -> None:
        """Record that ``txn_id`` is blocked on ``key`` at ``manager``."""
        self._wait_sites[txn_id] = (manager, key, event)  # type: ignore[assignment]

    def unregister_wait_site(self, txn_id: TxnId) -> None:
        """Forget the wait site of ``txn_id`` (granted, cancelled, aborted)."""
        self._wait_sites.pop(txn_id, None)

    def wait_site(
        self, txn_id: TxnId
    ) -> Optional[tuple[object, object, object]]:
        """The (manager, key, event) where ``txn_id`` currently waits."""
        return self._wait_sites.get(txn_id)

    def set_waits(self, waiter: TxnId, blockers: Iterable[TxnId]) -> None:
        """Replace the outgoing edges of ``waiter``."""
        blockers = {b for b in blockers if b != waiter}
        if blockers:
            self._waits_for[waiter] = blockers
        else:
            self._waits_for.pop(waiter, None)

    def clear_waits(self, waiter: TxnId) -> None:
        """Remove all outgoing edges of ``waiter`` (it stopped waiting)."""
        self._waits_for.pop(waiter, None)

    def remove_transaction(self, txn_id: TxnId) -> None:
        """Purge a finished transaction from the graph entirely."""
        self._waits_for.pop(txn_id, None)
        self._wait_sites.pop(txn_id, None)
        for blockers in self._waits_for.values():
            blockers.discard(txn_id)

    def waits_of(self, waiter: TxnId) -> frozenset[TxnId]:
        """Current blockers of ``waiter`` (empty if not waiting)."""
        return frozenset(self._waits_for.get(waiter, ()))

    # ------------------------------------------------------------------
    # Cycle detection
    # ------------------------------------------------------------------
    def find_cycle(self, start: TxnId) -> Optional[tuple[TxnId, ...]]:
        """Find a cycle reachable from ``start``, if any.

        Iterative DFS over the wait-for graph; returns the cycle as a
        tuple of transaction ids, or ``None``.
        """
        path: list[TxnId] = []
        on_path: set[TxnId] = set()
        visited: set[TxnId] = set()

        def dfs(node: TxnId) -> Optional[tuple[TxnId, ...]]:
            path.append(node)
            on_path.add(node)
            for successor in self._waits_for.get(node, ()):
                if successor in on_path:
                    idx = path.index(successor)
                    return tuple(path[idx:])
                if successor not in visited:
                    cycle = dfs(successor)
                    if cycle is not None:
                        return cycle
            path.pop()
            on_path.remove(node)
            visited.add(node)
            return None

        return dfs(start)

    def check(self, start: TxnId) -> Optional[TxnId]:
        """Detect a cycle involving ``start``; return the chosen victim."""
        cycle = self.find_cycle(start)
        if cycle is None:
            return None
        self.cycles_found += 1
        return self._victim_policy(cycle)
