"""Two-phase locking substrate: lock managers and deadlock detection."""

from .deadlock import DeadlockDetector, youngest_victim
from .lock_manager import LockManager, LockMode

__all__ = ["DeadlockDetector", "LockManager", "LockMode", "youngest_victim"]
