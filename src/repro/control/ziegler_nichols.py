"""Ziegler–Nichols tuning (the paper's §3.3 "online heuristic-based method").

The classic closed-loop procedure: drive the plant with a proportional-
only controller, raise the gain until the output oscillates with stable
amplitude (the *ultimate gain* Ku and *ultimate period* Tu), then read
the PID gains off the Ziegler–Nichols table.

Two utilities are provided:

* :func:`classic_pid_gains` / :func:`classic_pi_gains` /
  :func:`classic_p_gains` — the 1942 table given (Ku, Tu);
* :class:`UltimateGainProbe` — an online detector that watches a PV
  series produced under increasing proportional gain and reports when
  sustained oscillation is reached, yielding Ku and Tu.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


@dataclass(frozen=True)
class PIDGains:
    """A (Kp, Ki, Kd) triple."""

    kp: float
    ki: float
    kd: float


def classic_p_gains(ku: float) -> PIDGains:
    """Ziegler–Nichols P-only rule: Kp = 0.5·Ku."""
    _check(ku, 1.0)
    return PIDGains(kp=0.5 * ku, ki=0.0, kd=0.0)


def classic_pi_gains(ku: float, tu: float) -> PIDGains:
    """Ziegler–Nichols PI rule: Kp = 0.45·Ku, Ti = Tu/1.2."""
    _check(ku, tu)
    kp = 0.45 * ku
    ti = tu / 1.2
    return PIDGains(kp=kp, ki=kp / ti, kd=0.0)


def classic_pid_gains(ku: float, tu: float) -> PIDGains:
    """Ziegler–Nichols PID rule: Kp = 0.6·Ku, Ti = Tu/2, Td = Tu/8."""
    _check(ku, tu)
    kp = 0.6 * ku
    ti = tu / 2.0
    td = tu / 8.0
    return PIDGains(kp=kp, ki=kp / ti, kd=kp * td)


def _check(ku: float, tu: float) -> None:
    if ku <= 0:
        raise ValueError(f"ultimate gain must be positive: {ku}")
    if tu <= 0:
        raise ValueError(f"ultimate period must be positive: {tu}")


@dataclass
class UltimateGainProbe:
    """Detects sustained oscillation of a PV around its setpoint.

    Feed it (time, pv) samples while slowly increasing the proportional
    gain.  It records zero crossings of (pv − setpoint); once
    ``required_cycles`` full cycles occur whose periods agree within
    ``period_tolerance`` and whose amplitudes do not decay by more than
    ``amplitude_tolerance``, the oscillation is declared sustained and
    :attr:`ultimate_period` is the mean observed period.
    """

    setpoint: float
    required_cycles: int = 3
    period_tolerance: float = 0.25
    amplitude_tolerance: float = 0.35

    _last_sign: int = field(default=0, repr=False)
    _crossing_times: list = field(default_factory=list, repr=False)
    _peak: float = field(default=0.0, repr=False)
    _peaks: list = field(default_factory=list, repr=False)
    ultimate_period: Optional[float] = None

    def observe(self, time: float, pv: float) -> bool:
        """Add a sample; returns ``True`` once oscillation is sustained."""
        deviation = pv - self.setpoint
        self._peak = max(self._peak, abs(deviation))
        sign = 0 if deviation == 0 else (1 if deviation > 0 else -1)
        if sign != 0 and self._last_sign != 0 and sign != self._last_sign:
            self._crossing_times.append(time)
            self._peaks.append(self._peak)
            self._peak = 0.0
        if sign != 0:
            self._last_sign = sign
        return self._evaluate()

    def _evaluate(self) -> bool:
        # Two crossings = half a cycle; need 2*required_cycles half-periods.
        needed = 2 * self.required_cycles + 1
        if len(self._crossing_times) < needed:
            return False
        recent = self._crossing_times[-needed:]
        half_periods = [
            recent[i + 1] - recent[i] for i in range(len(recent) - 1)
        ]
        mean_half = sum(half_periods) / len(half_periods)
        if mean_half <= 0:
            return False
        if any(
            abs(hp - mean_half) > self.period_tolerance * mean_half
            for hp in half_periods
        ):
            return False
        recent_peaks = self._peaks[-(needed - 1):]
        top = max(recent_peaks)
        bottom = min(recent_peaks)
        if top <= 0:
            return False
        if (top - bottom) / top > self.amplitude_tolerance:
            return False
        self.ultimate_period = 2 * mean_half
        return True
