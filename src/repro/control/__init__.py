"""Control theory: PID controller and Ziegler–Nichols tuning."""

from .pid import PIDController
from .ziegler_nichols import (
    PIDGains,
    UltimateGainProbe,
    classic_p_gains,
    classic_pi_gains,
    classic_pid_gains,
)

__all__ = [
    "PIDController",
    "PIDGains",
    "UltimateGainProbe",
    "classic_p_gains",
    "classic_pi_gains",
    "classic_pid_gains",
]
