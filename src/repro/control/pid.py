"""The PID controller of paper §3.3 (Equation 1).

    u(t) = Kp·e(t) + Ki·∫e(τ)dτ + Kd·de(t)/dt

with e(t) = SP − PV.  The paper's experiments run it with Kp = 1,
Ki = Kd = 0 (pure proportional control).

The controller is used in *velocity* (incremental) form by the Feedback
scheduler: its output is treated as an adjustment to the previously
actuated repartition-cost ratio, so a pure-P controller still converges
on PV = SP instead of oscillating between 0 and SP.  The positional
output is also exposed for callers that want the textbook form.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


@dataclass
class PIDController:
    """Discrete-time PID controller."""

    kp: float = 1.0
    ki: float = 0.0
    kd: float = 0.0
    setpoint: float = 0.0
    #: Anti-windup clamp on the integral term (absolute value).
    integral_limit: float = float("inf")

    _integral: float = field(default=0.0, repr=False)
    #: ``None`` until the first :meth:`update`, so the first step has no
    #: derivative history (its derivative term is defined as zero).
    _previous_error: Optional[float] = field(default=None, repr=False)
    _last_output: float = field(default=0.0, repr=False)

    def __post_init__(self) -> None:
        if self.integral_limit <= 0:
            raise ValueError("integral limit must be positive")

    @property
    def last_output(self) -> float:
        """Most recent controller output."""
        return self._last_output

    def error(self, process_variable: float) -> float:
        """Current error e = SP − PV."""
        return self.setpoint - process_variable

    def update(self, process_variable: float, dt: float = 1.0) -> float:
        """Advance one control step and return u(t).

        ``dt`` is the measurement-interval length; the integral and
        derivative terms are scaled by it.
        """
        if dt <= 0:
            raise ValueError(f"dt must be positive: {dt}")
        err = self.error(process_variable)

        self._integral += err * dt
        self._integral = max(
            -self.integral_limit, min(self.integral_limit, self._integral)
        )

        if self._previous_error is None:
            derivative = 0.0
        else:
            derivative = (err - self._previous_error) / dt
        self._previous_error = err

        output = self.kp * err + self.ki * self._integral + self.kd * derivative
        self._last_output = output
        return output

    def reset(self) -> None:
        """Clear accumulated state (integral, derivative history)."""
        self._integral = 0.0
        self._previous_error = None
        self._last_output = 0.0
