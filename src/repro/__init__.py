"""SOAP — Scheduling Online dAta Partitioning for distributed OLTP.

A from-scratch Python reproduction of *"Online Data Partitioning in
Distributed Database Systems"* (Chen, Zhou, Cao — EDBT 2015): a
simulated shared-nothing OLTP cluster (storage, 2PL locking, 2PC,
routing) plus the paper's contribution — five strategies for deploying
a repartition plan online (ApplyAll, AfterAll, Feedback, Piggyback,
Hybrid) — and the full evaluation harness regenerating the paper's
tables and figures.

Quick start::

    from repro.experiments import bench_scale, run_experiment

    result = run_experiment(bench_scale(scheduler="Hybrid"))
    print(result.summary)
"""

from . import (
    cluster,
    control,
    core,
    experiments,
    faults,
    locking,
    metrics,
    partitioning,
    routing,
    sim,
    storage,
    txn,
    workload,
)
from .errors import (
    ConfigError,
    DeadlockAbort,
    InjectedFault,
    LockTimeout,
    NodeDownError,
    PartitioningError,
    ReproError,
    RoutingError,
    StorageError,
    TransactionAborted,
    TwoPhaseAbort,
)
from .faults import (
    FaultEvent,
    FaultInjector,
    FaultScheduleConfig,
    parse_fault_schedule,
)
from .types import AccessMode, Priority, TxnKind, TxnStatus

__version__ = "1.0.0"

__all__ = [
    "AccessMode",
    "ConfigError",
    "DeadlockAbort",
    "FaultEvent",
    "FaultInjector",
    "FaultScheduleConfig",
    "InjectedFault",
    "LockTimeout",
    "NodeDownError",
    "PartitioningError",
    "Priority",
    "ReproError",
    "RoutingError",
    "StorageError",
    "TransactionAborted",
    "TwoPhaseAbort",
    "TxnKind",
    "TxnStatus",
    "__version__",
    "cluster",
    "control",
    "core",
    "experiments",
    "faults",
    "locking",
    "parse_fault_schedule",
    "metrics",
    "partitioning",
    "routing",
    "sim",
    "storage",
    "txn",
    "workload",
]
