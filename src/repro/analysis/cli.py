"""The ``repro-lint`` command line: ``python -m repro.analysis ...``.

Usage::

    python -m repro.analysis src tests benchmarks
    python -m repro.analysis --format=json src
    python -m repro.analysis --baseline repro-lint-baseline.json src
    python -m repro.analysis --baseline b.json --write-baseline src
    python -m repro.analysis --select RPR001,RPR005 src
    python -m repro.analysis --list-rules

Exit status: 0 when no unsuppressed, non-baselined findings remain;
1 when findings were reported; 2 on usage errors.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Optional, Sequence

from .baseline import load_baseline, split_by_baseline, write_baseline
from .core import (
    AnalysisResult,
    ModuleContext,
    Project,
    all_rules,
    analyze_project,
)

#: Directory names never scanned: caches, VCS internals, and the lint
#: tool's own test corpus (fixture files contain deliberate violations
#: under virtual paths).
EXCLUDED_DIR_NAMES = frozenset(
    {
        "__pycache__",
        ".git",
        ".repro-cache",
        ".hypothesis",
        ".mypy_cache",
        ".ruff_cache",
        "fixtures",
    }
)


def collect_files(paths: Sequence[str]) -> list[Path]:
    """Python files under ``paths`` (files given directly are kept as-is)."""
    files: list[Path] = []
    seen: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if not path.exists():
            raise FileNotFoundError(raw)
        if path.is_file():
            candidates = [path]
        else:
            candidates = sorted(
                p
                for p in path.rglob("*.py")
                if not (set(p.parts) & EXCLUDED_DIR_NAMES)
            )
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                files.append(candidate)
    return files


def logical_path(path: Path) -> str:
    """Repository-relative posix path used for rule scoping."""
    try:
        rel = path.resolve().relative_to(Path.cwd().resolve())
    except ValueError:
        rel = path
    return rel.as_posix()


def build_project(files: Sequence[Path]) -> Project:
    modules = []
    for file in files:
        source = file.read_text(encoding="utf-8")
        modules.append(ModuleContext(logical_path(file), source))
    return Project(modules)


def _print_rules() -> None:
    for rule in all_rules():
        print(f"{rule.code}  {rule.name}")
        print(f"    {rule.description}")


def _render_json(
    result: AnalysisResult,
    new: list,
    baselined: list,
    stale: int,
) -> str:
    return json.dumps(
        {
            "version": 1,
            "files": result.files,
            "findings": [f.to_dict() for f in new],
            "baselined": [f.to_dict() for f in baselined],
            "suppressed": [f.to_dict() for f in result.suppressed],
            "stale_baseline_entries": stale,
        },
        indent=2,
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="repro-lint: AST-based invariant checks for this repo.",
    )
    parser.add_argument("paths", nargs="*", help="files or directories")
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text, ruff-style lines)",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        help="JSON baseline; matching findings are reported but not fatal",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="write current findings to --baseline FILE and exit 0",
    )
    parser.add_argument(
        "--select",
        metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="list rules and exit"
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        _print_rules()
        return 0
    if not args.paths:
        parser.print_usage(sys.stderr)
        print("error: no paths given", file=sys.stderr)
        return 2
    if args.write_baseline and not args.baseline:
        print("error: --write-baseline requires --baseline", file=sys.stderr)
        return 2

    select = None
    if args.select:
        select = [code.strip() for code in args.select.split(",") if code.strip()]

    try:
        files = collect_files(args.paths)
        project = build_project(files)
        result = analyze_project(project, select=select)
    except (FileNotFoundError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.write_baseline:
        write_baseline(result.findings, args.baseline)
        print(
            f"wrote {len(result.findings)} finding(s) to {args.baseline}",
            file=sys.stderr,
        )
        return 0

    if args.baseline:
        try:
            baseline = load_baseline(args.baseline)
        except (ValueError, KeyError, json.JSONDecodeError) as exc:
            print(f"error: bad baseline: {exc}", file=sys.stderr)
            return 2
        new, baselined, stale = split_by_baseline(result.findings, baseline)
    else:
        new, baselined, stale = result.findings, [], None

    if args.format == "json":
        print(
            _render_json(
                result, new, baselined, sum(stale.values()) if stale else 0
            )
        )
    else:
        for finding in new:
            print(finding.format_text())
        summary = (
            f"{len(new)} finding(s) in {result.files} file(s)"
            f" ({len(result.suppressed)} suppressed"
            + (f", {len(baselined)} baselined" if args.baseline else "")
            + ")"
        )
        print(summary, file=sys.stderr)
        if stale:
            print(
                f"note: {sum(stale.values())} stale baseline entr"
                f"{'y' if sum(stale.values()) == 1 else 'ies'} no longer "
                "match; regenerate with --write-baseline",
                file=sys.stderr,
            )
    return 1 if new else 0
