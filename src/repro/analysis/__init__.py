"""repro-lint: AST-based static enforcement of the repo's invariants.

``python -m repro.analysis src tests benchmarks`` runs every registered
rule (RPR001-RPR006) and exits non-zero on unsuppressed findings; see
:mod:`repro.analysis.core` for the framework and
:mod:`repro.analysis.rules` for the rule set.
"""

from .baseline import load_baseline, split_by_baseline, write_baseline
from .cli import main
from .core import (
    REGISTRY,
    AnalysisResult,
    Finding,
    ModuleContext,
    Project,
    Rule,
    all_rules,
    analyze_project,
    analyze_sources,
    register,
)

__all__ = [
    "AnalysisResult",
    "Finding",
    "ModuleContext",
    "Project",
    "REGISTRY",
    "Rule",
    "all_rules",
    "analyze_project",
    "analyze_sources",
    "load_baseline",
    "main",
    "register",
    "split_by_baseline",
    "write_baseline",
]
