"""Baseline files: burn pre-existing findings down incrementally.

A baseline is a JSON document of known findings.  Findings matching a
baseline entry are reported separately and do not fail the run; new
findings still do.  Matching is a multiset over ``(path, code,
message)`` — line numbers are deliberately excluded so unrelated edits
above a baselined finding do not resurrect it.

Framework diagnostics (RPR000) can never be baselined: a malformed
suppression is fixed, not grandfathered.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Union

from .core import META_CODE, Finding

BASELINE_VERSION = 1

BaselineKey = tuple[str, str, str]


def finding_key(finding: Finding) -> BaselineKey:
    return (finding.path, finding.code, finding.message)


def load_baseline(path: Union[str, Path]) -> Counter[BaselineKey]:
    """The baseline multiset at ``path`` (empty when the file is absent)."""
    file = Path(path)
    if not file.exists():
        return Counter()
    payload = json.loads(file.read_text(encoding="utf-8"))
    if not isinstance(payload, dict) or "findings" not in payload:
        raise ValueError(f"{file}: not a repro-lint baseline file")
    counter: Counter[BaselineKey] = Counter()
    for entry in payload["findings"]:
        counter[(entry["path"], entry["code"], entry["message"])] += 1
    return counter


def write_baseline(
    findings: list[Finding], path: Union[str, Path]
) -> None:
    """Write ``findings`` (minus RPR000) as the new baseline at ``path``."""
    entries = [
        {"path": f.path, "code": f.code, "message": f.message}
        for f in findings
        if f.code != META_CODE
    ]
    payload = {"version": BASELINE_VERSION, "findings": entries}
    Path(path).write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )


def split_by_baseline(
    findings: list[Finding], baseline: Counter[BaselineKey]
) -> tuple[list[Finding], list[Finding], Counter[BaselineKey]]:
    """(new, baselined, stale-entries) partition of ``findings``.

    Each baseline entry absorbs at most its multiplicity; leftover
    entries are *stale* — the finding they grandfathered is gone and
    they should be removed from the file.
    """
    remaining = Counter(baseline)
    new: list[Finding] = []
    matched: list[Finding] = []
    for finding in findings:
        key = finding_key(finding)
        if finding.code != META_CODE and remaining[key] > 0:
            remaining[key] -= 1
            matched.append(finding)
        else:
            new.append(finding)
    stale = Counter({k: n for k, n in remaining.items() if n > 0})
    return new, matched, stale
