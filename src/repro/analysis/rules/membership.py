"""RPR007 — cluster node-set mutation only through the membership API.

The cluster's node list and lifecycle states are a single authority:
:class:`~repro.cluster.cluster.Cluster` owns ``nodes``/``_by_partition``
and walks each :class:`~repro.cluster.node.DataNode` through
JOINING → ACTIVE → DRAINING → RETIRED via ``add_node()`` /
``activate()`` / ``begin_drain()`` / ``retire()``.  Code that appends to
``cluster.nodes`` directly, flips ``node.state``/``node.retired`` by
hand, or constructs a bare ``DataNode`` bypasses the membership
invariants (stable node ids, capacity-noise wiring, the retire-only-
when-empty check) and the fault injector's lifecycle watch.  Outside
``src/repro/cluster/`` all of that is a violation.

Detection is syntactic: assignment (plain, augmented, or annotated) to
a ``.state`` or ``.retired`` attribute, mutating method calls on a
``.nodes`` or ``._by_partition`` attribute chain, subscript stores or
deletes on those attributes, and any ``DataNode(...)`` call.
"""

from __future__ import annotations

import ast
from typing import Iterable

from ..core import (
    Finding,
    ModuleContext,
    Rule,
    finding_factory,
    path_in_scope,
    register,
)

SCOPE = ("src/repro/",)
MEMBERSHIP_MODULE = ("src/repro/cluster/",)

#: The attributes whose writes constitute a lifecycle transition.
LIFECYCLE_ATTRS = frozenset({"state", "retired"})

#: The cluster-owned collections holding the node set.
NODE_SET_ATTRS = frozenset({"nodes", "_by_partition"})

#: Methods that mutate a list/dict node collection in place.
SET_MUTATORS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "remove",
        "pop",
        "popitem",
        "clear",
        "update",
        "setdefault",
    }
)


def _node_set_base(expr: ast.expr) -> str | None:
    """The node-set attribute name if ``expr`` is ``<x>.nodes``-like."""
    if isinstance(expr, ast.Attribute) and expr.attr in NODE_SET_ATTRS:
        return expr.attr
    return None


@register
class MembershipAuthorityRule(Rule):
    """Node lifecycle and the node set move only through Cluster's API."""

    code = "RPR007"
    name = "membership-authority"
    description = (
        "Cluster membership is a single authority: outside "
        "src/repro/cluster/, no assignment to node .state/.retired, no "
        "in-place mutation or subscript write on .nodes/._by_partition, "
        "and no direct DataNode construction.  Use Cluster.add_node()/"
        "activate()/begin_drain()/retire() instead."
    )

    def check_module(self, ctx: ModuleContext) -> Iterable[Finding]:
        if ctx.tree is None:
            return
        if not path_in_scope(ctx.path, SCOPE):
            return
        if path_in_scope(ctx.path, MEMBERSHIP_MODULE):
            return
        make = finding_factory(ctx.path, self.code)
        for node in ast.walk(ctx.tree):
            targets: list[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            for target in targets:
                if (
                    isinstance(target, ast.Attribute)
                    and target.attr in LIFECYCLE_ATTRS
                ):
                    yield make(
                        node,
                        f"assignment to '.{target.attr}' outside the "
                        "membership authority; lifecycle transitions go "
                        "through Cluster.activate()/begin_drain()/retire()",
                    )
                elif (
                    isinstance(target, ast.Subscript)
                    and _node_set_base(target.value) is not None
                ):
                    yield make(
                        node,
                        f"subscript write on '.{_node_set_base(target.value)}' "
                        "outside the membership authority; the node set "
                        "changes only through Cluster.add_node()",
                    )
            if isinstance(node, ast.Delete):
                for target in node.targets:
                    if (
                        isinstance(target, ast.Subscript)
                        and _node_set_base(target.value) is not None
                    ):
                        yield make(
                            node,
                            "deletion from "
                            f"'.{_node_set_base(target.value)}' outside the "
                            "membership authority; nodes are never removed "
                            "— they are RETIRED via Cluster.retire()",
                        )
            if isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in SET_MUTATORS
                    and _node_set_base(func.value) is not None
                ):
                    yield make(
                        node,
                        f"mutating call '.{_node_set_base(func.value)}"
                        f".{func.attr}()' outside the membership "
                        "authority; the node set changes only through "
                        "Cluster.add_node()",
                    )
                elif isinstance(func, ast.Name) and func.id == "DataNode":
                    yield make(
                        node,
                        "direct DataNode construction outside the "
                        "membership authority; Cluster.add_node() assigns "
                        "ids, wires capacity noise, and notifies watchers",
                    )
                elif (
                    isinstance(func, ast.Attribute)
                    and func.attr == "DataNode"
                ):
                    yield make(
                        node,
                        "direct DataNode construction outside the "
                        "membership authority; Cluster.add_node() assigns "
                        "ids, wires capacity noise, and notifies watchers",
                    )
