"""RPR001/RPR005 — determinism on simulation paths.

Bit-identical serial/parallel runs (and the result cache built on top
of them) hold only because every stochastic choice flows through the
named, seeded streams in :mod:`repro.sim.random` and no simulation
code ever consults the host: wall clocks, ambient process RNG state,
OS entropy, or hash-order iteration.  These rules make that a compile
error instead of a figure that quietly stops reproducing.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from ..core import (
    Finding,
    ImportMap,
    ModuleContext,
    Rule,
    finding_factory,
    path_in_scope,
    register,
)

#: Simulation-path scope: everything here must be deterministic given
#: the experiment seed.
SIM_SCOPE = (
    "src/repro/sim/",
    "src/repro/txn/",
    "src/repro/routing/",
    "src/repro/partitioning/",
    "src/repro/faults.py",
)

#: The stream registry itself is the one place allowed to touch the
#: ``random`` module directly.
STREAM_REGISTRY = ("src/repro/sim/random.py",)

#: Calls that read ambient host state; the message explains the fix.
BANNED_CALLS = {
    "time.time": "wall clock",
    "time.time_ns": "wall clock",
    "time.monotonic": "host clock",
    "time.monotonic_ns": "host clock",
    "time.perf_counter": "host clock",
    "time.perf_counter_ns": "host clock",
    "time.process_time": "host clock",
    "time.sleep": "real sleep (use Environment.timeout)",
    "datetime.datetime.now": "wall clock",
    "datetime.datetime.utcnow": "wall clock",
    "datetime.datetime.today": "wall clock",
    "datetime.date.today": "wall clock",
    "os.urandom": "OS entropy",
    "os.getrandom": "OS entropy",
    "uuid.uuid1": "host clock + MAC",
    "uuid.uuid4": "OS entropy",
}

#: Any call under these module prefixes reads ambient entropy.
BANNED_PREFIXES = ("secrets.",)

#: ``random.Random``/``SystemRandom`` construction is RPR005's domain;
#: everything else on the module (``random.random()``, ``random.seed``,
#: ...) mutates or reads the shared ambient generator.
AD_HOC_CONSTRUCTORS = frozenset({"random.Random", "random.SystemRandom"})


def _iteration_targets(tree: ast.Module) -> Iterator[tuple[ast.AST, ast.expr]]:
    """(reporting node, iterated expression) for every loop/comprehension."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.For, ast.AsyncFor)):
            yield node, node.iter
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            for gen in node.generators:
                yield node, gen.iter
        elif isinstance(node, ast.DictComp):
            for gen in node.generators:
                yield node, gen.iter


def _is_set_expression(expr: ast.expr) -> bool:
    if isinstance(expr, (ast.Set, ast.SetComp)):
        return True
    if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Name):
        return expr.func.id in ("set", "frozenset")
    return False


@register
class AmbientNondeterminismRule(Rule):
    """No wall clocks, ambient RNG, OS entropy, or set-order iteration
    inside simulation-path modules."""

    code = "RPR001"
    name = "no-ambient-nondeterminism"
    description = (
        "Simulation paths must be a pure function of the experiment seed: "
        "no wall-clock reads, module-level random.* calls, OS entropy, or "
        "iteration over sets (hash-order dependent). All randomness flows "
        "through named streams in repro.sim.random."
    )

    def check_module(self, ctx: ModuleContext) -> Iterable[Finding]:
        if ctx.tree is None:
            return
        if not path_in_scope(ctx.path, SIM_SCOPE):
            return
        if path_in_scope(ctx.path, STREAM_REGISTRY):
            return
        make = finding_factory(ctx.path, self.code)
        imports = ImportMap(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = imports.resolve(node.func)
            if resolved is None:
                continue
            reason = BANNED_CALLS.get(resolved)
            if reason:
                yield make(
                    node,
                    f"call to {resolved}() reads ambient state ({reason}); "
                    "simulation code must derive everything from the "
                    "experiment seed and virtual clock",
                )
                continue
            if any(resolved.startswith(p) for p in BANNED_PREFIXES):
                yield make(
                    node,
                    f"call to {resolved}() reads OS entropy; use a named "
                    "stream from repro.sim.random",
                )
                continue
            if (
                resolved.startswith("random.")
                and resolved not in AD_HOC_CONSTRUCTORS
            ):
                yield make(
                    node,
                    f"module-level {resolved}() uses the ambient shared "
                    "generator; draw from an injected named stream "
                    "(repro.sim.random.RandomStreams) instead",
                )
        for report_node, iterated in _iteration_targets(ctx.tree):
            if _is_set_expression(iterated):
                yield make(
                    iterated,
                    "iteration order over a set depends on hash seeding; "
                    "sort it (or iterate a list/dict) so runs are "
                    "reproducible",
                )


@register
class AdHocRngRule(Rule):
    """RNG streams are injected, never constructed at the point of use."""

    code = "RPR005"
    name = "rng-stream-discipline"
    description = (
        "Components take an injected random.Random stream; constructing "
        "random.Random()/SystemRandom()/numpy generators ad hoc detaches "
        "the draw sequence from the master seed and breaks serial/parallel "
        "equivalence. Only repro.sim.random may construct streams."
    )

    #: Everything under ``src/repro`` — the whole system runs inside the
    #: deterministic harness, not just the sim kernel.
    scope = ("src/repro/",)

    CONSTRUCTORS = AD_HOC_CONSTRUCTORS | frozenset(
        {
            "numpy.random.RandomState",
            "numpy.random.default_rng",
            "numpy.random.Generator",
            "numpy.random.seed",
            "np.random.RandomState",
            "np.random.default_rng",
            "np.random.seed",
        }
    )

    def check_module(self, ctx: ModuleContext) -> Iterable[Finding]:
        if ctx.tree is None:
            return
        if not path_in_scope(ctx.path, self.scope):
            return
        if path_in_scope(ctx.path, STREAM_REGISTRY):
            return
        make = finding_factory(ctx.path, self.code)
        imports = ImportMap(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = imports.resolve(node.func)
            if resolved in self.CONSTRUCTORS:
                yield make(
                    node,
                    f"ad-hoc {resolved}() construction; accept an injected "
                    "stream (see repro.sim.random.RandomStreams.stream) so "
                    "draws stay tied to the master seed",
                )
