"""The bundled repro-lint rule set.

Importing this package registers every rule with
:data:`repro.analysis.core.REGISTRY`:

* ``RPR001`` — no ambient nondeterminism on simulation paths
* ``RPR002`` — cache-key completeness for ``ExperimentConfig``
* ``RPR003`` — ``MapEpoch`` / live-map immutability outside the store
* ``RPR004`` — ``__slots__`` required on hot-path classes
* ``RPR005`` — RNG streams must be injected, never constructed ad hoc
* ``RPR006`` — scheduler cursor write-back must be ``finally``-guarded
* ``RPR007`` — cluster membership mutated only through the Cluster API
"""

from . import (  # noqa: F401
    cache_key,
    cursor,
    determinism,
    epoch,
    membership,
    slots,
)
