"""RPR004 — ``__slots__`` required on hot-path classes.

The sim kernel allocates an object per event occurrence and the storage
layer an object per tuple/log record; at paper scale that is millions
of instances per run.  A stray ``__dict__`` per instance costs both
memory and attribute-lookup time, so every class in the designated
hot-path modules must declare ``__slots__`` (directly, or via
``@dataclass(slots=True)``).

Exception/Enum/Protocol classes are exempt — they are not allocated on
the hot path and CPython constrains slotting them.
"""

from __future__ import annotations

import ast
from typing import Iterable

from ..core import (
    Finding,
    ModuleContext,
    Rule,
    finding_factory,
    path_in_scope,
    register,
)

#: Modules whose classes are allocated per-event / per-record.
HOT_PATH_MODULES = (
    "src/repro/sim/events.py",
    "src/repro/storage/compact_store.py",
    "src/repro/storage/record.py",
    "src/repro/storage/wal.py",
)

#: Base-class names that exempt a class (not hot-path allocations, or
#: slotting is constrained by the runtime).
EXEMPT_BASES = frozenset(
    {
        "Exception",
        "BaseException",
        "Enum",
        "IntEnum",
        "StrEnum",
        "Flag",
        "IntFlag",
        "Protocol",
        "ABC",
        "NamedTuple",
        "TypedDict",
    }
)


def _base_names(node: ast.ClassDef) -> set[str]:
    names: set[str] = set()
    for base in node.bases:
        if isinstance(base, ast.Name):
            names.add(base.id)
        elif isinstance(base, ast.Attribute):
            names.add(base.attr)
        elif isinstance(base, ast.Subscript):  # Generic[T], Protocol[...]
            target = base.value
            if isinstance(target, ast.Name):
                names.add(target.id)
            elif isinstance(target, ast.Attribute):
                names.add(target.attr)
    return names


def _declares_slots(node: ast.ClassDef) -> bool:
    for stmt in node.body:
        if isinstance(stmt, ast.Assign) and any(
            isinstance(t, ast.Name) and t.id == "__slots__"
            for t in stmt.targets
        ):
            return True
        if (
            isinstance(stmt, ast.AnnAssign)
            and isinstance(stmt.target, ast.Name)
            and stmt.target.id == "__slots__"
        ):
            return True
    for deco in node.decorator_list:
        if isinstance(deco, ast.Call):
            target = deco.func
            is_dataclass = (
                isinstance(target, ast.Name) and target.id == "dataclass"
            ) or (
                isinstance(target, ast.Attribute) and target.attr == "dataclass"
            )
            if is_dataclass and any(
                kw.arg == "slots"
                and isinstance(kw.value, ast.Constant)
                and kw.value.value is True
                for kw in deco.keywords
            ):
                return True
    return False


@register
class SlotsRequiredRule(Rule):
    """Hot-path classes declare ``__slots__``."""

    code = "RPR004"
    name = "slots-on-hot-path"
    description = (
        "Classes in hot-path modules (events, records, WAL entries) must "
        "declare __slots__ or use @dataclass(slots=True); a per-instance "
        "__dict__ on something allocated millions of times per run costs "
        "memory and attribute-lookup speed."
    )

    def check_module(self, ctx: ModuleContext) -> Iterable[Finding]:
        if ctx.tree is None:
            return
        if not path_in_scope(ctx.path, HOT_PATH_MODULES):
            return
        make = finding_factory(ctx.path, self.code)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if _base_names(node) & EXEMPT_BASES:
                continue
            if node.name.endswith(("Error", "Exception")):
                continue
            if not _declares_slots(node):
                yield make(
                    node,
                    f"hot-path class '{node.name}' has no __slots__; "
                    "declare them (or @dataclass(slots=True)) so "
                    "per-instance __dict__ allocation stays off the "
                    "event/record path",
                )
