"""RPR003 — ``MapEpoch`` and live-map immutability outside the store.

A published :class:`~repro.routing.epoch.MapEpoch` is a snapshot other
transactions are actively routing against; mutating one (or mutating
the store's live :class:`PartitionMap` without going through a staged
publish) silently invalidates every pinned reader.  Only
``repro/routing/epoch.py`` — the store itself — may do either.

Detection is a lightweight local type inference: names bound from
``<store>.pin()``, ``<store>.current_epoch``, or annotated ``MapEpoch``
are treated as epoch snapshots; attribute assignment through them (or
directly through a ``.current_epoch`` chain) is flagged, as is any call
of a map-mutating method on a ``.live_map`` attribute chain.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, Union

from ..core import (
    Finding,
    ModuleContext,
    Rule,
    finding_factory,
    path_in_scope,
    register,
)

SCOPE = ("src/repro/",)
EPOCH_MODULE = ("src/repro/routing/epoch.py",)

#: Methods that mutate a PartitionMap (or a dict backing one).
MAP_MUTATORS = frozenset(
    {
        "assign",
        "add_replica",
        "remove_replica",
        "move",
        "set_replicas",
        "remove",
        "clear",
        "update",
        "pop",
        "popitem",
        "setdefault",
    }
)

_Scope = Union[ast.Module, ast.FunctionDef, ast.AsyncFunctionDef]


def _direct_children(scope: _Scope) -> Iterator[ast.AST]:
    """Walk a scope without descending into nested function scopes."""
    stack: list[ast.AST] = list(ast.iter_child_nodes(scope))
    while stack:
        node = stack.pop()
        yield node
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            stack.extend(ast.iter_child_nodes(node))


def _mentions_map_epoch(annotation: ast.expr) -> bool:
    for sub in ast.walk(annotation):
        if isinstance(sub, ast.Name) and sub.id == "MapEpoch":
            return True
        if isinstance(sub, ast.Attribute) and sub.attr == "MapEpoch":
            return True
        if isinstance(sub, ast.Constant) and isinstance(sub.value, str):
            if "MapEpoch" in sub.value:
                return True
    return False


def _epoch_names(scope: _Scope) -> set[str]:
    """Names in ``scope`` inferred to hold MapEpoch snapshots."""
    names: set[str] = set()
    if isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
        args = scope.args
        for arg in [
            *args.posonlyargs,
            *args.args,
            *args.kwonlyargs,
            *filter(None, [args.vararg, args.kwarg]),
        ]:
            if arg.annotation is not None and _mentions_map_epoch(
                arg.annotation
            ):
                names.add(arg.arg)
    for node in _direct_children(scope):
        if isinstance(node, ast.Assign):
            value = node.value
            is_epoch = (
                isinstance(value, ast.Call)
                and isinstance(value.func, ast.Attribute)
                and value.func.attr == "pin"
            ) or (
                isinstance(value, ast.Attribute)
                and value.attr == "current_epoch"
            )
            for target in node.targets:
                if isinstance(target, ast.Name):
                    if is_epoch:
                        names.add(target.id)
                    else:
                        names.discard(target.id)
        elif isinstance(node, ast.AnnAssign):
            if isinstance(node.target, ast.Name) and _mentions_map_epoch(
                node.annotation
            ):
                names.add(node.target.id)
    return names


def _attr_root_is_epoch(expr: ast.expr, epoch_names: set[str]) -> bool:
    """Whether an attribute target's base is an inferred epoch value."""
    base = expr
    while isinstance(base, ast.Attribute):
        if base.attr == "current_epoch":
            return True
        base = base.value
    if isinstance(base, ast.Call):
        return (
            isinstance(base.func, ast.Attribute) and base.func.attr == "pin"
        )
    return isinstance(base, ast.Name) and base.id in epoch_names


@register
class EpochImmutabilityRule(Rule):
    """Published epochs and the live map are mutated only by the store."""

    code = "RPR003"
    name = "epoch-immutability"
    description = (
        "MapEpoch snapshots are immutable once published: no attribute "
        "assignment on pinned/current epochs, and no map-mutating method "
        "calls through .live_map, anywhere outside repro/routing/epoch.py. "
        "All placement changes go through EpochStage + publish()."
    )

    def check_module(self, ctx: ModuleContext) -> Iterable[Finding]:
        if ctx.tree is None:
            return
        if not path_in_scope(ctx.path, SCOPE):
            return
        if path_in_scope(ctx.path, EPOCH_MODULE):
            return
        make = finding_factory(ctx.path, self.code)
        scopes: list[_Scope] = [ctx.tree]
        scopes.extend(
            node
            for node in ast.walk(ctx.tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        )
        for scope in scopes:
            epoch_names = _epoch_names(scope)
            for node in _direct_children(scope):
                targets: list[ast.expr] = []
                if isinstance(node, ast.Assign):
                    targets = node.targets
                elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                    targets = [node.target]
                for target in targets:
                    if isinstance(target, ast.Attribute) and _attr_root_is_epoch(
                        target.value, epoch_names
                    ):
                        yield make(
                            node,
                            f"assignment to '.{target.attr}' on a MapEpoch "
                            "snapshot; published epochs are immutable — "
                            "stage changes through "
                            "PartitionMapStore.begin_stage()/publish()",
                        )
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in MAP_MUTATORS
                    and isinstance(node.func.value, ast.Attribute)
                    and node.func.value.attr == "live_map"
                ):
                    yield make(
                        node,
                        f"mutating call '.live_map.{node.func.attr}()' "
                        "outside the store; the live map is published-"
                        "epoch state — stage the change and publish it",
                    )
