"""RPR006 — scheduler cursor write-back must be ``finally``-guarded.

The calendar-queue hot loop (:meth:`Environment._advance`) copies the
bucket cursor ``self._pos`` into a local, mutates the local for
thousands of iterations, and only writes it back at the end.  If a user
callback raises in between and the write-back is not inside a
``finally``, the environment is left with a *stale* cursor: the same
events replay on the next ``run()`` call, which is exactly the kind of
corruption the PR-4 equivalence suite cannot catch (it only sees
non-raising schedules).

The rule: in scheduler modules, any function that (a) copies a
cursor-named attribute (``*_pos``/``*_cursor``/``*_idx``/``*_index``)
of ``self`` into a local, and (b) mutates that local inside a loop,
must write the local back to the attribute inside a ``finally`` block.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable, Union

from ..core import (
    Finding,
    ModuleContext,
    Rule,
    finding_factory,
    path_in_scope,
    register,
)

SCOPE = ("src/repro/sim/",)

CURSOR_ATTR = re.compile(r"(_pos|_cursor|_idx|_index)$")

_Func = Union[ast.FunctionDef, ast.AsyncFunctionDef]


def _self_attr(node: ast.expr) -> str | None:
    """``attr`` when ``node`` is exactly ``self.<attr>``."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _cursor_copies(func: _Func) -> dict[str, str]:
    """Locals assigned from a cursor attribute: local name -> attr name."""
    copies: dict[str, str] = {}
    for node in ast.walk(func):
        if not isinstance(node, ast.Assign):
            continue
        attr = _self_attr(node.value)
        if attr is None or not CURSOR_ATTR.search(attr):
            continue
        for target in node.targets:
            if isinstance(target, ast.Name):
                copies[target.id] = attr
    return copies


def _mutated_in_loop(func: _Func, local: str, attr: str) -> bool:
    """Whether ``local`` is modified inside a loop (re-reads of the
    source attribute do not count — they re-sync, they do not drift)."""
    for node in ast.walk(func):
        if not isinstance(node, (ast.While, ast.For, ast.AsyncFor)):
            continue
        for sub in ast.walk(node):
            if isinstance(sub, ast.AugAssign):
                if isinstance(sub.target, ast.Name) and sub.target.id == local:
                    return True
            elif isinstance(sub, ast.Assign):
                if not any(
                    isinstance(t, ast.Name) and t.id == local
                    for t in sub.targets
                ):
                    continue
                if _self_attr(sub.value) == attr:
                    continue  # re-sync from the attribute, not drift
                return True
    return False


def _written_back_in_finally(func: _Func, local: str, attr: str) -> bool:
    for node in ast.walk(func):
        if not isinstance(node, ast.Try):
            continue
        for stmt in node.finalbody:
            for sub in ast.walk(stmt):
                if not isinstance(sub, ast.Assign):
                    continue
                if any(
                    _self_attr(t) == attr for t in sub.targets
                ) and (
                    isinstance(sub.value, ast.Name)
                    and sub.value.id == local
                ):
                    return True
    return False


@register
class CursorWriteBackRule(Rule):
    """Loop-carried scheduler cursors are restored exception-safely."""

    code = "RPR006"
    name = "cursor-writeback-finally"
    description = (
        "A function that copies a scheduler cursor (self.*_pos and "
        "friends) into a local and mutates it inside a loop must write "
        "it back inside a finally block, so a raising callback cannot "
        "leave the queue cursor stale and replay events."
    )

    def check_module(self, ctx: ModuleContext) -> Iterable[Finding]:
        if ctx.tree is None:
            return
        if not path_in_scope(ctx.path, SCOPE):
            return
        make = finding_factory(ctx.path, self.code)
        for func in (
            node
            for node in ast.walk(ctx.tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        ):
            for local, attr in _cursor_copies(func).items():
                if not _mutated_in_loop(func, local, attr):
                    continue
                if not _written_back_in_finally(func, local, attr):
                    yield make(
                        func,
                        f"'{func.name}' mutates cursor copy '{local}' of "
                        f"'self.{attr}' inside a loop without a finally-"
                        f"guarded 'self.{attr} = {local}' write-back; a "
                        "raising callback would leave the cursor stale "
                        "and replay events",
                    )
