"""RPR002 — cache-key completeness for ``ExperimentConfig``.

The on-disk result cache keys entries by a canonical hash of the whole
config, and the parallel engine ships configs to workers as JSON
round-tripped through ``config_to_dict``/``config_from_dict``.  Both
pipelines are only sound if **every** field of ``ExperimentConfig``
(and its nested config dataclasses) participates:

* a field missed by the canonical hash would not invalidate cached
  results when it changes (silent mis-serve);
* a nested-dataclass field missed by ``_NESTED_CONFIG_TYPES`` /
  ``_field_from_dict`` would be rebuilt as a plain dict in worker
  processes, so parallel runs would diverge from serial ones.

This rule cross-checks the two modules statically, failing CI the
moment a new field is added without wiring it through.
"""

from __future__ import annotations

import ast
from typing import Iterable, Optional

from ..core import Finding, ImportMap, Project, Rule, finding_factory, register

CONFIG_MODULE = "src/repro/experiments/config.py"
CACHE_MODULE = "src/repro/experiments/cache.py"

#: Names that fully serialise a dataclass (all fields, recursively).
FULL_SERIALISERS = frozenset(
    {"dataclasses.asdict", "asdict", "config_to_dict"}
)


def _is_dataclass_decorated(node: ast.ClassDef) -> bool:
    for deco in node.decorator_list:
        target = deco.func if isinstance(deco, ast.Call) else deco
        if isinstance(target, ast.Name) and target.id == "dataclass":
            return True
        if isinstance(target, ast.Attribute) and target.attr == "dataclass":
            return True
    return False


def _dataclass_fields(node: ast.ClassDef) -> list[ast.AnnAssign]:
    return [
        stmt
        for stmt in node.body
        if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name)
    ]


def _annotation_type_names(annotation: ast.expr) -> set[str]:
    """Every plain identifier mentioned in an annotation expression."""
    names: set[str] = set()
    for sub in ast.walk(annotation):
        if isinstance(sub, ast.Name):
            names.add(sub.id)
        elif isinstance(sub, ast.Attribute):
            names.add(sub.attr)
        elif isinstance(sub, ast.Constant) and isinstance(sub.value, str):
            names.add(sub.value)  # string-literal forward references
    return names


def _nested_registry_keys(tree: ast.Module) -> Optional[set[str]]:
    """Keys of the ``_NESTED_CONFIG_TYPES`` dict literal, if present."""
    for node in ast.walk(tree):
        targets: list[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        for target in targets:
            if (
                isinstance(target, ast.Name)
                and target.id == "_NESTED_CONFIG_TYPES"
                and isinstance(value, ast.Dict)
            ):
                return {
                    key.value
                    for key in value.keys
                    if isinstance(key, ast.Constant)
                    and isinstance(key.value, str)
                }
    return None


def _special_cased_names(tree: ast.Module) -> set[str]:
    """Field names handled by explicit ``name == "..."`` dispatch in
    ``_field_from_dict`` (e.g. the ``faults`` schedule)."""
    names: set[str] = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.FunctionDef):
            continue
        if node.name != "_field_from_dict":
            continue
        for sub in ast.walk(node):
            if not isinstance(sub, ast.Compare):
                continue
            operands = [sub.left, *sub.comparators]
            if not any(
                isinstance(op, ast.Name) and op.id == "name"
                for op in operands
            ):
                continue
            for op in operands:
                if isinstance(op, ast.Constant) and isinstance(op.value, str):
                    names.add(op.value)
    return names


@register
class CacheKeyCompletenessRule(Rule):
    """Every ``ExperimentConfig`` field must flow into the cache key and
    survive the dict round trip used by the parallel engine."""

    code = "RPR002"
    name = "cache-key-completeness"
    description = (
        "ExperimentConfig fields must be covered by the canonical cache "
        "key (config_key hashing the full dataclass) and, for nested "
        "config dataclasses, by the _NESTED_CONFIG_TYPES registry or "
        "_field_from_dict special cases, so a new field always "
        "invalidates the cache and round-trips to worker processes."
    )

    def check_project(self, project: Project) -> Iterable[Finding]:
        config = project.find(CONFIG_MODULE)
        if config is None or config.tree is None:
            return

        classes = {
            node.name: node
            for node in ast.walk(config.tree)
            if isinstance(node, ast.ClassDef)
        }
        experiment = classes.get("ExperimentConfig")
        if experiment is None:
            yield Finding(
                config.path,
                1,
                1,
                self.code,
                "ExperimentConfig dataclass not found; the cache-key "
                "completeness check has nothing to anchor to",
            )
            return
        if not _is_dataclass_decorated(experiment):
            yield Finding(
                config.path,
                experiment.lineno,
                1,
                self.code,
                "ExperimentConfig must be a dataclass so asdict() covers "
                "every field",
            )

        make_config = finding_factory(config.path, self.code)
        fields = _dataclass_fields(experiment)
        field_names = {
            f.target.id for f in fields if isinstance(f.target, ast.Name)
        }

        # --- round-trip coverage of nested config dataclasses ---------
        registry_keys = _nested_registry_keys(config.tree)
        special = _special_cased_names(config.tree)
        if registry_keys is None:
            yield make_config(
                experiment,
                "_NESTED_CONFIG_TYPES dict literal not found; "
                "config_from_dict cannot be checked for field coverage",
            )
            registry_keys = set()
        covered = registry_keys | special
        nested_class_names = {
            name
            for name, node in classes.items()
            if _is_dataclass_decorated(node)
        }
        for field in fields:
            assert isinstance(field.target, ast.Name)
            mentioned = _annotation_type_names(field.annotation)
            is_nested = any(
                name in nested_class_names or name.endswith("Config")
                for name in mentioned
            )
            if is_nested and field.target.id not in covered:
                yield make_config(
                    field,
                    f"nested config field '{field.target.id}' is not in "
                    "_NESTED_CONFIG_TYPES and has no _field_from_dict "
                    "special case; config_from_dict would rebuild it as a "
                    "plain dict, so parallel workers and the cache key "
                    "would silently diverge",
                )

        # --- the canonical hash must cover the whole config ------------
        cache = project.find(CACHE_MODULE)
        if cache is None or cache.tree is None:
            return
        make_cache = finding_factory(cache.path, self.code)
        imports = ImportMap(cache.tree)
        config_key_fn = next(
            (
                node
                for node in ast.walk(cache.tree)
                if isinstance(node, ast.FunctionDef)
                and node.name == "config_key"
            ),
            None,
        )
        if config_key_fn is None:
            yield Finding(
                cache.path,
                1,
                1,
                self.code,
                "config_key() not found; the cache has no canonical key "
                "function to check",
            )
            return
        hashes_everything = False
        explicit_keys: set[str] = set()
        for node in ast.walk(config_key_fn):
            if isinstance(node, ast.Call):
                resolved = imports.resolve(node.func)
                name = (
                    resolved
                    if resolved is not None
                    else (
                        node.func.id
                        if isinstance(node.func, ast.Name)
                        else None
                    )
                )
                if name in FULL_SERIALISERS:
                    hashes_everything = True
            elif isinstance(node, ast.Dict):
                explicit_keys.update(
                    key.value
                    for key in node.keys
                    if isinstance(key, ast.Constant)
                    and isinstance(key.value, str)
                )
        if not hashes_everything:
            missing = sorted(field_names - explicit_keys)
            if missing:
                yield make_cache(
                    config_key_fn,
                    "config_key() does not serialise the full config "
                    "(no asdict/config_to_dict call) and its explicit key "
                    f"set misses field(s) {missing}; changes to those "
                    "fields would not invalidate cached results",
                )
        mentions_schema = any(
            isinstance(node, ast.Name) and node.id == "CACHE_SCHEMA_VERSION"
            for node in ast.walk(config_key_fn)
        )
        if not mentions_schema:
            yield make_cache(
                config_key_fn,
                "config_key() does not mix CACHE_SCHEMA_VERSION into the "
                "hashed payload; schema bumps would not invalidate old "
                "entries",
            )
