"""Core of the ``repro-lint`` static-analysis framework.

The reproduction's headline guarantees — bit-identical serial/parallel
runs, cache entries that never mis-serve, immutable published
``MapEpoch`` snapshots — are *invariants of the source tree*, not just
runtime properties.  This package enforces them statically: every rule
is an AST pass over the repository that fails CI the moment a change
would let one of those invariants rot.

Building blocks:

* :class:`Finding` — one diagnostic, formatted ruff-style
  (``path:line:col: CODE message``).
* :class:`ModuleContext` — a parsed source file plus its per-line
  suppressions (``# repro-lint: disable=RPRnnn -- justification``).
* :class:`Project` — every module of one analysis run, for rules that
  cross-check files against each other (e.g. the cache-key rule reads
  both ``experiments/config.py`` and ``experiments/cache.py``).
* :class:`Rule` + :func:`register` — the pluggable rule registry.
  Rules implement :meth:`Rule.check_module` and/or
  :meth:`Rule.check_project`.

Rules scope themselves by *logical path* (the file's path relative to
the repository root, e.g. ``src/repro/sim/environment.py``), so the
test corpus can exercise a rule on fixture sources by assigning them a
virtual logical path without placing files inside ``src/``.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass
from typing import Callable, ClassVar, Iterable, Iterator, Optional

#: Code reserved for framework-level diagnostics (malformed or
#: unjustified suppression comments, unparseable files).  RPR000
#: findings are never suppressible and never baselined away.
META_CODE = "RPR000"

#: ``RPRnnn`` rule-code shape.
CODE_RE = re.compile(r"^RPR\d{3}$")

#: A suppression directive comment: ``repro-lint: disable=`` followed by
#: one or more codes, then ``--`` and a justification.  The
#: justification is required; an unjustified directive suppresses
#: nothing and is itself flagged.
SUPPRESSION_RE = re.compile(
    r"#\s*repro-lint:\s*disable=(?P<codes>[A-Za-z0-9_,\s]*?)"
    r"(?:\s+--\s+(?P<why>.*\S))?\s*$"
)

#: Anything after this marker on a line is a repro-lint directive.
DIRECTIVE_MARKER = re.compile(r"#\s*repro-lint:")


@dataclass(frozen=True, slots=True)
class Finding:
    """One diagnostic emitted by a rule."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def sort_key(self) -> tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.code)

    def format_text(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"

    def to_dict(self) -> dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "message": self.message,
        }


def _comments(source: str) -> Iterator[tuple[int, int, str]]:
    """(line, col, text) of every comment token in ``source``.

    Tokenizing (rather than scanning raw lines) keeps directive text in
    docstrings and string literals from being parsed as directives.
    Tokenize errors are swallowed — an unparseable file already carries
    an RPR000 parse finding.
    """
    try:
        for tok in tokenize.generate_tokens(io.StringIO(source).readline):
            if tok.type == tokenize.COMMENT:
                yield tok.start[0], tok.start[1], tok.string
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return


def _parse_suppressions(
    path: str, source: str
) -> tuple[dict[int, set[str]], list[Finding]]:
    """Per-line suppressed codes plus findings for malformed directives."""
    suppressions: dict[int, set[str]] = {}
    problems: list[Finding] = []
    for lineno, comment_col, text in _comments(source):
        marker = DIRECTIVE_MARKER.search(text)
        if marker is None:
            continue
        col = comment_col + marker.start() + 1
        directive = SUPPRESSION_RE.search(text, marker.start())
        if directive is None:
            problems.append(
                Finding(
                    path,
                    lineno,
                    col,
                    META_CODE,
                    "malformed repro-lint directive; expected "
                    "'# repro-lint: disable=RPRnnn -- justification'",
                )
            )
            continue
        codes = {
            token.strip()
            for token in directive.group("codes").split(",")
            if token.strip()
        }
        bad = sorted(c for c in codes if not CODE_RE.match(c))
        if not codes or bad:
            problems.append(
                Finding(
                    path,
                    lineno,
                    col,
                    META_CODE,
                    f"invalid rule code(s) {bad or '(none)'} in suppression; "
                    "codes look like RPR001",
                )
            )
            continue
        if META_CODE in codes:
            problems.append(
                Finding(
                    path,
                    lineno,
                    col,
                    META_CODE,
                    "RPR000 (framework diagnostics) cannot be suppressed",
                )
            )
            codes.discard(META_CODE)
        if not directive.group("why"):
            problems.append(
                Finding(
                    path,
                    lineno,
                    col,
                    META_CODE,
                    "suppression without justification; append "
                    "'-- <why this violation is intentional>'",
                )
            )
            continue  # unjustified directives suppress nothing
        suppressions.setdefault(lineno, set()).update(codes)
    return suppressions, problems


class ModuleContext:
    """A parsed source file as seen by the rules."""

    def __init__(self, path: str, source: str) -> None:
        #: Logical repository-relative posix path used for rule scoping.
        self.path = path.replace("\\", "/").lstrip("./")
        self.source = source
        self.lines = source.splitlines()
        self.tree: Optional[ast.Module] = None
        self.parse_findings: list[Finding] = []
        try:
            self.tree = ast.parse(source, filename=self.path)
        except SyntaxError as exc:
            self.parse_findings.append(
                Finding(
                    self.path,
                    exc.lineno or 1,
                    (exc.offset or 0) or 1,
                    META_CODE,
                    f"file does not parse: {exc.msg}",
                )
            )
        self.suppressions, directive_problems = _parse_suppressions(
            self.path, source
        )
        self.parse_findings.extend(directive_problems)

    def is_suppressed(self, finding: Finding) -> bool:
        """Whether a justified per-line suppression covers ``finding``."""
        return finding.code in self.suppressions.get(finding.line, ())


class Project:
    """All modules of one analysis run, addressable by logical path."""

    def __init__(self, modules: Iterable[ModuleContext]) -> None:
        self.modules: list[ModuleContext] = list(modules)
        self._by_path = {m.path: m for m in self.modules}

    def find(self, suffix: str) -> Optional[ModuleContext]:
        """The module whose logical path is, or ends with, ``suffix``."""
        hit = self._by_path.get(suffix)
        if hit is not None:
            return hit
        for module in self.modules:
            if module.path.endswith("/" + suffix):
                return module
        return None


def path_in_scope(path: str, patterns: Iterable[str]) -> bool:
    """Whether a logical path falls under any scope pattern.

    Patterns ending in ``/`` match directories anywhere in the path
    (``src/repro/sim/`` matches ``/abs/prefix/src/repro/sim/events.py``);
    other patterns match an exact file suffix.
    """
    probe = "/" + path
    for pattern in patterns:
        anchored = "/" + pattern
        if pattern.endswith("/"):
            if anchored in probe:
                return True
        elif probe.endswith(anchored):
            return True
    return False


class ImportMap:
    """Resolves names in a module to the dotted path they import.

    ``import time as t`` maps ``t -> time``; ``from datetime import
    datetime`` maps ``datetime -> datetime.datetime``.  Only absolute
    imports are tracked — relative (project-internal) imports resolve
    through project rules instead.
    """

    def __init__(self, tree: Optional[ast.Module]) -> None:
        self.names: dict[str, str] = {}
        if tree is None:
            return
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self.names[alias.asname or alias.name.split(".")[0]] = (
                        alias.name if alias.asname else alias.name.split(".")[0]
                    )
                    if alias.asname:
                        self.names[alias.asname] = alias.name
            elif isinstance(node, ast.ImportFrom) and not node.level:
                module = node.module or ""
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    self.names[alias.asname or alias.name] = (
                        f"{module}.{alias.name}" if module else alias.name
                    )

    def resolve(self, node: ast.AST) -> Optional[str]:
        """Dotted name of an attribute chain, with import aliases applied."""
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        base = self.names.get(node.id)
        if base is None:
            return None
        parts.append(base)
        return ".".join(reversed(parts))


class Rule:
    """Base class for repro-lint rules.

    Subclasses set the class attributes and override one or both check
    hooks.  ``check_module`` runs once per file; ``check_project`` runs
    once per analysis with access to every parsed module (for
    cross-file invariants).
    """

    code: ClassVar[str] = ""
    name: ClassVar[str] = ""
    description: ClassVar[str] = ""

    def check_module(self, ctx: ModuleContext) -> Iterable[Finding]:
        return ()

    def check_project(self, project: Project) -> Iterable[Finding]:
        return ()


#: Registered rules, keyed by code (populated by :func:`register`).
REGISTRY: dict[str, Rule] = {}


def register(cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule to :data:`REGISTRY`."""
    if not CODE_RE.match(cls.code) or cls.code == META_CODE:
        raise ValueError(f"bad rule code {cls.code!r} on {cls.__name__}")
    if cls.code in REGISTRY:
        raise ValueError(f"duplicate rule code {cls.code}")
    REGISTRY[cls.code] = cls()
    return cls


def all_rules() -> list[Rule]:
    """Registered rules in code order (imports the bundled rule set)."""
    from . import rules  # noqa: F401  (registers on import)

    return [REGISTRY[code] for code in sorted(REGISTRY)]


@dataclass(slots=True)
class AnalysisResult:
    """Everything one analysis run produced."""

    findings: list[Finding]
    suppressed: list[Finding]
    files: int


def analyze_project(
    project: Project,
    select: Optional[Iterable[str]] = None,
) -> AnalysisResult:
    """Run the registered rules over ``project``.

    ``select`` restricts to the given rule codes (RPR000 framework
    diagnostics are always included).  Suppressed findings are split
    out, not dropped, so callers can report suppression counts.
    """
    rules = all_rules()
    if select is not None:
        wanted = set(select)
        unknown = wanted - {rule.code for rule in rules}
        if unknown:
            raise ValueError(f"unknown rule code(s): {sorted(unknown)}")
        rules = [rule for rule in rules if rule.code in wanted]
    raw: list[Finding] = []
    for module in project.modules:
        raw.extend(module.parse_findings)
        for rule in rules:
            raw.extend(rule.check_module(module))
    for rule in rules:
        raw.extend(rule.check_project(project))

    by_path = {module.path: module for module in project.modules}
    findings: list[Finding] = []
    suppressed: list[Finding] = []
    for finding in sorted(raw, key=Finding.sort_key):
        module = by_path.get(finding.path)
        if (
            module is not None
            and finding.code != META_CODE
            and module.is_suppressed(finding)
        ):
            suppressed.append(finding)
        else:
            findings.append(finding)
    return AnalysisResult(
        findings=findings, suppressed=suppressed, files=len(project.modules)
    )


def analyze_sources(
    sources: dict[str, str],
    select: Optional[Iterable[str]] = None,
) -> AnalysisResult:
    """Analyze in-memory sources keyed by logical path (test entry point)."""
    project = Project(
        ModuleContext(path, text) for path, text in sources.items()
    )
    return analyze_project(project, select=select)


def walk_functions(
    tree: ast.Module,
) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
    """Every function/method definition in ``tree``."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def first_line_col(node: ast.AST) -> tuple[int, int]:
    """1-based (line, col) of a node, ruff-style."""
    return getattr(node, "lineno", 1), getattr(node, "col_offset", 0) + 1


FindingFactory = Callable[[ast.AST, str], Finding]


def finding_factory(path: str, code: str) -> FindingFactory:
    """A helper binding path+code so rules just supply node+message."""

    def make(node: ast.AST, message: str) -> Finding:
        line, col = first_line_col(node)
        return Finding(path, line, col, code, message)

    return make
