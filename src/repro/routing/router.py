"""The query router: lookup-table routing of queries to partitions.

Responsibilities (paper §2.1): maintain the partition map, decide which
replica a read visits, route writes to every replica, and — during
repartitioning — apply the repartitioner's map updates atomically at
repartition-transaction commit.

Since the epoch refactor the router no longer owns a bare mutable map:
it routes against a :class:`~repro.routing.epoch.PartitionMapStore`.
Every routing call resolves through a :class:`MapEpoch` snapshot — the
current epoch by default, or an explicit (typically transaction-pinned)
epoch passed by the executor.  The router never mutates the map; all
placement changes are staged and published through the store.
"""

from __future__ import annotations

import random
from typing import Callable, Iterable, Optional, Union

from ..errors import RoutingError
from ..types import AccessMode, PartitionId, TupleKey
from .epoch import MapEpoch, PartitionMapStore
from .partition_map import PartitionMap
from .query import Query


class QueryRouter:
    """Routes single-tuple queries using a :class:`PartitionMapStore`.

    Accepts either a store or a bare :class:`PartitionMap` (which is
    wrapped into a fresh store) for construction convenience.

    ``read_policy`` selects which replica serves a read:

    * ``"primary"`` (default) — always the primary replica, matching the
      single-replica configuration the paper evaluates;
    * ``"random"`` — a uniformly random replica, for replicated setups.
    """

    def __init__(
        self,
        partition_map: Union[PartitionMap, PartitionMapStore],
        read_policy: str = "primary",
        rng: Optional[random.Random] = None,
    ) -> None:
        if read_policy not in ("primary", "random"):
            raise RoutingError(f"unknown read policy {read_policy!r}")
        if read_policy == "random" and rng is None:
            raise RoutingError("random read policy requires an rng")
        if isinstance(partition_map, PartitionMapStore):
            self.store = partition_map
        else:
            self.store = PartitionMapStore(partition_map)
        self.read_policy = read_policy
        self._rng = rng
        self.reads_routed = 0
        self.writes_routed = 0
        #: Reads that landed on a partition the tuple had just migrated
        #: away from and were forwarded to its new home.
        self.forwarded_reads = 0
        #: Observer for forwarded reads (wired to the metrics collector).
        self.on_forwarded_read: Optional[Callable[[TupleKey], None]] = None

    @property
    def partition_map(self) -> PartitionMap:
        """The live map behind the store (read-only compatibility view)."""
        return self.store.live_map

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def _view(self, epoch: Optional[MapEpoch]) -> MapEpoch:
        return epoch if epoch is not None else self.store.current_epoch

    def route_read(
        self, key: TupleKey, epoch: Optional[MapEpoch] = None
    ) -> PartitionId:
        """Partition that serves a read of ``key`` under ``epoch``."""
        self.reads_routed += 1
        replicas = self._view(epoch).replicas_of(key)
        if self.read_policy == "primary" or len(replicas) == 1:
            return replicas[0]
        assert self._rng is not None
        return self._rng.choice(replicas)

    def route_write(
        self, key: TupleKey, epoch: Optional[MapEpoch] = None
    ) -> tuple[PartitionId, ...]:
        """Partitions a write of ``key`` must update (all replicas)."""
        self.writes_routed += 1
        return self._view(epoch).replicas_of(key)

    def route_query(
        self, query: Query, epoch: Optional[MapEpoch] = None
    ) -> tuple[PartitionId, ...]:
        """Partitions ``query`` touches."""
        if query.mode is AccessMode.READ:
            return (self.route_read(query.key, epoch),)
        return self.route_write(query.key, epoch)

    def partitions_for(
        self, queries: Iterable[Query], epoch: Optional[MapEpoch] = None
    ) -> frozenset[PartitionId]:
        """The set of partitions a whole transaction touches."""
        involved: set[PartitionId] = set()
        for query in queries:
            involved.update(self.route_query(query, epoch))
        return frozenset(involved)

    def is_distributed(
        self, queries: Iterable[Query], epoch: Optional[MapEpoch] = None
    ) -> bool:
        """Whether the transaction spans more than one partition."""
        return len(self.partitions_for(queries, epoch)) > 1

    # ------------------------------------------------------------------
    # Migration-aware bookkeeping
    # ------------------------------------------------------------------
    def note_forwarded_read(self, key: TupleKey) -> None:
        """Record one read forwarded past a just-migrated replica."""
        self.forwarded_reads += 1
        if self.on_forwarded_read is not None:
            self.on_forwarded_read(key)
