"""The query router: lookup-table routing of queries to partitions.

Responsibilities (paper §2.1): maintain the partition map, decide which
replica a read visits, route writes to every replica, and — during
repartitioning — apply the repartitioner's map updates atomically at
repartition-transaction commit.
"""

from __future__ import annotations

import random
from typing import Iterable, Optional

from ..errors import RoutingError
from ..types import AccessMode, PartitionId, TupleKey
from .partition_map import PartitionMap
from .query import Query


class QueryRouter:
    """Routes single-tuple queries using a :class:`PartitionMap`.

    ``read_policy`` selects which replica serves a read:

    * ``"primary"`` (default) — always the primary replica, matching the
      single-replica configuration the paper evaluates;
    * ``"random"`` — a uniformly random replica, for replicated setups.
    """

    def __init__(
        self,
        partition_map: PartitionMap,
        read_policy: str = "primary",
        rng: Optional[random.Random] = None,
    ) -> None:
        if read_policy not in ("primary", "random"):
            raise RoutingError(f"unknown read policy {read_policy!r}")
        if read_policy == "random" and rng is None:
            raise RoutingError("random read policy requires an rng")
        self.partition_map = partition_map
        self.read_policy = read_policy
        self._rng = rng
        self.reads_routed = 0
        self.writes_routed = 0

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def route_read(self, key: TupleKey) -> PartitionId:
        """Partition that serves a read of ``key``."""
        self.reads_routed += 1
        replicas = self.partition_map.replicas_of(key)
        if self.read_policy == "primary" or len(replicas) == 1:
            return replicas[0]
        assert self._rng is not None
        return self._rng.choice(replicas)

    def route_write(self, key: TupleKey) -> tuple[PartitionId, ...]:
        """Partitions a write of ``key`` must update (all replicas)."""
        self.writes_routed += 1
        return self.partition_map.replicas_of(key)

    def route_query(self, query: Query) -> tuple[PartitionId, ...]:
        """Partitions ``query`` touches."""
        if query.mode is AccessMode.READ:
            return (self.route_read(query.key),)
        return self.route_write(query.key)

    def partitions_for(self, queries: Iterable[Query]) -> frozenset[PartitionId]:
        """The set of partitions a whole transaction touches."""
        involved: set[PartitionId] = set()
        for query in queries:
            involved.update(self.route_query(query))
        return frozenset(involved)

    def is_distributed(self, queries: Iterable[Query]) -> bool:
        """Whether the transaction spans more than one partition."""
        return len(self.partitions_for(queries)) > 1
