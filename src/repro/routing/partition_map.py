"""The lookup table mapping tuples to the partitions holding their replicas.

The paper's query router "maintains the mappings between data partitions
and their resident nodes" and routes each query accordingly; this class
is that mapping.  Replicas of a tuple always live on distinct partitions
(a paper assumption), and the first replica in the tuple's list is the
*primary* — the copy writes are routed to.
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence

from ..errors import RoutingError
from ..types import PartitionId, TupleKey


class PartitionMap:
    """Mutable key → replica-partition-list mapping."""

    def __init__(self) -> None:
        self._replicas: dict[TupleKey, list[PartitionId]] = {}
        #: Per-partition replica counts, maintained incrementally so
        #: :meth:`partition_sizes` is O(partitions) instead of
        #: O(tuples × replicas) — the optimizer's balance check calls it
        #: in a loop.
        self._sizes: dict[PartitionId, int] = {}
        self.version = 0

    def __len__(self) -> int:
        return len(self._replicas)

    def __contains__(self, key: TupleKey) -> bool:
        return key in self._replicas

    def keys(self) -> Iterator[TupleKey]:
        """Iterate over all mapped keys."""
        return iter(self._replicas)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def replicas_of(self, key: TupleKey) -> tuple[PartitionId, ...]:
        """All partitions holding a replica of ``key`` (primary first)."""
        replicas = self._replicas.get(key)
        if replicas is None:
            raise RoutingError(f"tuple {key} is not mapped to any partition")
        return tuple(replicas)

    def primary_of(self, key: TupleKey) -> PartitionId:
        """The primary replica's partition."""
        return self.replicas_of(key)[0]

    def replica_count(self, key: TupleKey) -> int:
        """Number of replicas of ``key``."""
        return len(self.replicas_of(key))

    def partition_sizes(self) -> dict[PartitionId, int]:
        """Replica counts per partition (for balance checks); O(partitions)."""
        return dict(self._sizes)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def _size_delta(self, partition_id: PartitionId, delta: int) -> None:
        n = self._sizes.get(partition_id, 0) + delta
        if n <= 0:
            self._sizes.pop(partition_id, None)
        else:
            self._sizes[partition_id] = n

    def assign(self, key: TupleKey, partition_id: PartitionId) -> None:
        """Initial placement of ``key`` with a single replica."""
        if key in self._replicas:
            raise RoutingError(f"tuple {key} is already mapped")
        self._replicas[key] = [partition_id]
        self._size_delta(partition_id, +1)
        self.version += 1

    def add_replica(self, key: TupleKey, partition_id: PartitionId) -> None:
        """Record a new replica of ``key`` on ``partition_id``."""
        replicas = self._replicas.get(key)
        if replicas is None:
            raise RoutingError(f"tuple {key} is not mapped to any partition")
        if partition_id in replicas:
            raise RoutingError(
                f"tuple {key} already has a replica on partition {partition_id}"
            )
        replicas.append(partition_id)
        self._size_delta(partition_id, +1)
        self.version += 1

    def remove_replica(self, key: TupleKey, partition_id: PartitionId) -> None:
        """Drop the replica of ``key`` on ``partition_id``.

        Removing the last replica is a consistency violation and raises.
        """
        replicas = self._replicas.get(key)
        if replicas is None:
            raise RoutingError(f"tuple {key} is not mapped to any partition")
        if partition_id not in replicas:
            raise RoutingError(
                f"tuple {key} has no replica on partition {partition_id}"
            )
        if len(replicas) == 1:
            raise RoutingError(
                f"cannot remove the last replica of tuple {key}"
            )
        replicas.remove(partition_id)
        self._size_delta(partition_id, -1)
        self.version += 1

    def move(
        self, key: TupleKey, source: PartitionId, destination: PartitionId
    ) -> None:
        """Atomically relocate the replica of ``key`` from source to dest."""
        replicas = self._replicas.get(key)
        if replicas is None:
            raise RoutingError(f"tuple {key} is not mapped to any partition")
        if source not in replicas:
            raise RoutingError(
                f"tuple {key} has no replica on partition {source}"
            )
        if destination in replicas:
            raise RoutingError(
                f"tuple {key} already has a replica on partition {destination}"
            )
        replicas[replicas.index(source)] = destination
        self._size_delta(source, -1)
        self._size_delta(destination, +1)
        self.version += 1

    def set_replicas(
        self, key: TupleKey, replicas: Optional[Sequence[PartitionId]]
    ) -> None:
        """Install ``key``'s whole replica list (``None`` unmaps it).

        This is the :class:`~repro.routing.epoch.PartitionMapStore`'s
        delta-application hook; it skips the per-operation invariants
        (the store validated them at stage time) but keeps the size
        counters and version in step.
        """
        old = self._replicas.get(key)
        if old is not None:
            for pid in old:
                self._size_delta(pid, -1)
        if replicas is None:
            self._replicas.pop(key, None)
        else:
            self._replicas[key] = list(replicas)
            for pid in replicas:
                self._size_delta(pid, +1)
        self.version += 1

    def copy(self) -> "PartitionMap":
        """Deep copy (used to freeze 'the original plan O' for costing)."""
        clone = PartitionMap()
        clone._replicas = {k: list(v) for k, v in self._replicas.items()}
        clone._sizes = dict(self._sizes)
        clone.version = self.version
        return clone
