"""Epoch-versioned partition maps: snapshots, staged deltas, migration states.

SOAP's premise is that the partition map changes *while* transactions
are in flight.  This module gives that change a structure:

* :class:`MapEpoch` — an immutable snapshot of the whole map, identified
  by a monotonic epoch id.  A transaction pins the current epoch at
  admission and can keep reading a consistent map even as later commits
  publish new epochs.
* :class:`PartitionMapStore` — the single authority over the live map.
  All runtime mutation flows through *stages*: a transaction opens an
  :class:`EpochStage`, accumulates deltas against the live map, and the
  store publishes them atomically at commit (or drops them cleanly on
  abort).  Each publish produces exactly one new epoch.
* a per-tuple migration state machine (:class:`MigrationState`):
  ``STABLE`` → ``MOVING`` while a stage holds an in-flight relocation →
  back to ``STABLE`` at the tuple's new home, leaving a ``MOVED``
  tombstone behind so late readers routed by a stale epoch can tell a
  forwarded tuple from a routing bug.

**Snapshot representation.**  Epochs are not full copies.  The store
keeps the live map plus a bounded log of :class:`EpochTransition`
records, each holding the canonical per-key deltas of one publish
(``before`` → ``after`` replica tuples).  Constructing an epoch is O(1);
publishing is O(changed keys); reading through an old pinned epoch
resolves the key against the transitions published since that epoch
(undo direction), falling back to the live map.  The log is trimmed once
it exceeds ``max_delta_log`` entries, but never past the oldest pinned
epoch — so a pinned transaction's snapshot stays readable for its whole
lifetime, and an *unpinned* ancient epoch raises :class:`EpochError`
instead of silently returning wrong data.

**Pinned-read fast path.**  A pinned epoch that falls more than
``SNAPSHOT_DELTA_THRESHOLD`` transitions behind the live map stops
walking the delta chain per read: it materialises (once, lazily) a
merged *overlay* dict — key → replica tuple as of the pinned epoch, for
every key touched by any later transition — and extends it by O(new
deltas) per subsequent publish.  A read is then one dict probe plus a
live-map fallback, independent of chain depth, which keeps long-pinned
transactions within a small constant factor of live-route throughput.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from functools import cached_property
from itertools import count
from typing import Any, Callable, Iterator, Optional, Union

from ..errors import EpochError, RoutingError
from ..types import PartitionId, TupleKey
from .partition_map import PartitionMap

#: A tuple's replica list (primary first); ``None`` means "not mapped".
Replicas = tuple[PartitionId, ...]

#: Delta-chain depth past which a pinned epoch materialises its merged
#: snapshot overlay instead of walking the chain on every read.  Shallow
#: pins (a handful of publishes behind) stay on the walk — building an
#: overlay for them would cost more than it saves.
SNAPSHOT_DELTA_THRESHOLD = 4

#: Sentinel distinguishing "key untouched since this epoch" from a real
#: overlay value (which may legitimately be ``None`` = unmapped).
#: Typed ``Any`` so resolution helpers can return it alongside replica
#: tuples without a cast at every use site.
_UNTOUCHED: Any = object()


class MigrationState(enum.Enum):
    """Per-tuple migration lifecycle."""

    #: No in-flight placement change.
    STABLE = "stable"
    #: At least one open stage holds an unpublished relocation of the
    #: tuple; reads keep routing to the (still-authoritative) current
    #: epoch until the stage publishes.
    MOVING = "moving"
    #: A relocation of the tuple's primary recently published; the
    #: tombstone records where it went so stale routes can forward.
    MOVED = "moved"


@dataclass(frozen=True)
class MapDelta:
    """Canonical per-key delta: the replica list ``before`` → ``after``.

    Set-style (whole replica tuple, not an edit script), so replaying a
    delta log is unambiguous regardless of how the change was staged.
    """

    key: TupleKey
    before: Optional[Replicas]
    after: Optional[Replicas]


@dataclass(frozen=True)
class MovedTombstone:
    """Record of a recently-published primary relocation."""

    key: TupleKey
    source: PartitionId
    destination: PartitionId
    #: Epoch that published the move.
    epoch_id: int


@dataclass(frozen=True)
class EpochTransition:
    """One publish: the deltas that took epoch ``epoch_id - 1`` to
    ``epoch_id``, plus a key-indexed view of the prior values."""

    epoch_id: int
    deltas: tuple[MapDelta, ...]

    @cached_property
    def prev(self) -> dict[TupleKey, Optional[Replicas]]:
        """Key → replica tuple as of the *previous* epoch.

        Cached: the transition is immutable and pinned-epoch reads probe
        this dict on every resolution, so it is built exactly once.
        (``cached_property`` writes to ``__dict__`` directly, which is
        legal on a frozen dataclass.)
        """
        return {d.key: d.before for d in self.deltas}


class MapEpoch:
    """Immutable snapshot of the partition map at one epoch.

    Implements the read half of :class:`PartitionMap`'s interface
    (``replicas_of`` / ``primary_of`` / ``replica_count`` /
    ``partition_sizes`` / ``keys`` / ``in`` / ``len``), so planners and
    cost models can consume either interchangeably.
    """

    __slots__ = ("_store", "epoch_id", "_overlay", "_overlay_through")

    def __init__(self, store: "PartitionMapStore", epoch_id: int) -> None:
        self._store = store
        self.epoch_id = epoch_id
        #: Merged snapshot overlay: key → replica tuple *as of this
        #: epoch* for every key some later transition touched.  Built
        #: lazily once the chain exceeds SNAPSHOT_DELTA_THRESHOLD, then
        #: extended by O(new deltas) per publish.
        self._overlay: Optional[dict[TupleKey, Optional[Replicas]]] = None
        #: Store epoch id the overlay has absorbed transitions through.
        self._overlay_through = epoch_id

    # ------------------------------------------------------------------
    # Resolution against the transition log
    # ------------------------------------------------------------------
    def _transitions_since(self) -> list[EpochTransition]:
        """Transitions published after this epoch (oldest first)."""
        store = self._store
        if self.epoch_id == store.epoch_id:
            return []
        first_needed = self.epoch_id + 1
        if store._log and first_needed < store._log[0].epoch_id:
            raise EpochError(
                f"epoch {self.epoch_id} has expired (delta log trimmed); "
                f"pin epochs you intend to keep reading"
            )
        if not store._log:
            raise EpochError(f"epoch {self.epoch_id} has expired")
        offset = first_needed - store._log[0].epoch_id
        return store._log[offset:]

    def _sync_overlay(self) -> dict[TupleKey, Optional[Replicas]]:
        """Materialise / extend the merged overlay through the live epoch.

        The overlay maps each touched key to its value as of *this*
        epoch, i.e. the ``before`` of the earliest later transition that
        touched it — so absorbing transitions oldest-first with
        ``setdefault`` keeps the earliest ``before`` and extension by
        later publishes never overwrites an entry.
        """
        overlay = self._overlay
        if overlay is None:
            overlay = self._overlay = {}
            self._overlay_through = self.epoch_id
        store = self._store
        if self._overlay_through == store.epoch_id:
            return overlay
        first_needed = self._overlay_through + 1
        log = store._log
        if not log or first_needed < log[0].epoch_id:
            raise EpochError(
                f"epoch {self.epoch_id} has expired (delta log trimmed); "
                f"pin epochs you intend to keep reading"
            )
        for transition in log[first_needed - log[0].epoch_id:]:
            for delta in transition.deltas:
                overlay.setdefault(delta.key, delta.before)
        self._overlay_through = store.epoch_id
        return overlay

    def _resolve(self, key: TupleKey) -> Optional[Replicas]:
        """``key``'s value as of this epoch, or ``_UNTOUCHED`` when no
        later transition touched it (read the live map)."""
        store = self._store
        if self.epoch_id == store.epoch_id:
            return _UNTOUCHED
        overlay = self._overlay
        if overlay is not None:
            if self._overlay_through != store.epoch_id:
                overlay = self._sync_overlay()
            return overlay.get(key, _UNTOUCHED)
        transitions = self._transitions_since()
        if len(transitions) >= SNAPSHOT_DELTA_THRESHOLD:
            return self._sync_overlay().get(key, _UNTOUCHED)
        for transition in transitions:
            prev = transition.prev
            if key in prev:
                return prev[key]
        return _UNTOUCHED

    def replicas_of(self, key: TupleKey) -> Replicas:
        """Replica list of ``key`` as of this epoch (primary first)."""
        value = self._resolve(key)
        if value is _UNTOUCHED:
            return self._store.live_map.replicas_of(key)
        if value is None:
            raise RoutingError(
                f"tuple {key} is not mapped to any partition"
            )
        return value

    def primary_of(self, key: TupleKey) -> PartitionId:
        """The primary replica's partition as of this epoch."""
        return self.replicas_of(key)[0]

    def replica_count(self, key: TupleKey) -> int:
        """Number of replicas of ``key`` as of this epoch."""
        return len(self.replicas_of(key))

    def __contains__(self, key: TupleKey) -> bool:
        value = self._resolve(key)
        if value is _UNTOUCHED:
            return key in self._store.live_map
        return value is not None

    def keys(self) -> Iterator[TupleKey]:
        """Iterate the keys mapped as of this epoch."""
        keys = set(self._store.live_map.keys())
        for transition in reversed(self._transitions_since()):
            for delta in transition.deltas:
                if delta.before is None:
                    keys.discard(delta.key)
                else:
                    keys.add(delta.key)
        return iter(keys)

    def __len__(self) -> int:
        size = len(self._store.live_map)
        for transition in self._transitions_since():
            for delta in transition.deltas:
                if delta.before is None and delta.after is not None:
                    size -= 1
                elif delta.before is not None and delta.after is None:
                    size += 1
        return size

    def partition_sizes(self) -> dict[PartitionId, int]:
        """Replica counts per partition as of this epoch."""
        sizes = self._store.live_map.partition_sizes()
        for transition in self._transitions_since():
            for delta in transition.deltas:
                for pid in delta.after or ():
                    sizes[pid] = sizes.get(pid, 0) - 1
                for pid in delta.before or ():
                    sizes[pid] = sizes.get(pid, 0) + 1
        return {pid: n for pid, n in sizes.items() if n > 0}

    def __repr__(self) -> str:
        return f"<MapEpoch {self.epoch_id}>"


#: Anything the planners can read a placement from.
MapView = Union[PartitionMap, MapEpoch]


class EpochStage:
    """A mutable buffer of map deltas awaiting an atomic publish.

    Reads overlay the staged values on the *live* map (not the stage's
    base epoch), mirroring the sequential visibility the executor's
    commit path historically had: within one commit, each operation sees
    the effect of the previous one.  Validation matches
    :class:`PartitionMap` (duplicate replicas, missing tuples and
    last-replica removal all raise :class:`RoutingError` at stage time,
    so an invalid delta can never reach a published epoch).
    """

    def __init__(
        self, store: "PartitionMapStore", stage_id: int, owner: int
    ) -> None:
        self._store = store
        self.stage_id = stage_id
        #: Transaction id (or -1) that opened the stage, for diagnostics.
        self.owner = owner
        self.base_epoch_id = store.epoch_id
        self._pending: dict[TupleKey, Optional[Replicas]] = {}
        self._moving: set[TupleKey] = set()
        self.published = False
        self.discarded = False

    # ------------------------------------------------------------------
    # Overlay reads
    # ------------------------------------------------------------------
    def replicas_of(self, key: TupleKey) -> Replicas:
        """Replica list of ``key`` with staged deltas applied."""
        if key in self._pending:
            value = self._pending[key]
            if value is None:
                raise RoutingError(
                    f"tuple {key} is not mapped to any partition"
                )
            return value
        return self._store.live_map.replicas_of(key)

    def primary_of(self, key: TupleKey) -> PartitionId:
        """Primary partition of ``key`` with staged deltas applied."""
        return self.replicas_of(key)[0]

    def __contains__(self, key: TupleKey) -> bool:
        if key in self._pending:
            return self._pending[key] is not None
        return key in self._store.live_map

    # ------------------------------------------------------------------
    # Staging (same semantics and errors as PartitionMap's mutators)
    # ------------------------------------------------------------------
    def _check_open(self) -> None:
        if self.published or self.discarded:
            raise EpochError(
                f"stage {self.stage_id} is closed "
                f"({'published' if self.published else 'discarded'})"
            )

    def assign(self, key: TupleKey, partition_id: PartitionId) -> None:
        """Stage the initial single-replica placement of ``key``."""
        self._check_open()
        if key in self:
            raise RoutingError(f"tuple {key} is already mapped")
        self._pending[key] = (partition_id,)

    def add_replica(self, key: TupleKey, partition_id: PartitionId) -> None:
        """Stage a new replica of ``key`` on ``partition_id``."""
        self._check_open()
        replicas = self.replicas_of(key)
        if partition_id in replicas:
            raise RoutingError(
                f"tuple {key} already has a replica on partition "
                f"{partition_id}"
            )
        self._pending[key] = replicas + (partition_id,)

    def remove_replica(self, key: TupleKey, partition_id: PartitionId) -> None:
        """Stage dropping the replica of ``key`` on ``partition_id``."""
        self._check_open()
        replicas = self.replicas_of(key)
        if partition_id not in replicas:
            raise RoutingError(
                f"tuple {key} has no replica on partition {partition_id}"
            )
        if len(replicas) == 1:
            raise RoutingError(
                f"cannot remove the last replica of tuple {key}"
            )
        self._pending[key] = tuple(
            pid for pid in replicas if pid != partition_id
        )

    def move(
        self, key: TupleKey, source: PartitionId, destination: PartitionId
    ) -> None:
        """Stage relocating ``key``'s replica from source to destination."""
        self._check_open()
        replicas = self.replicas_of(key)
        if source not in replicas:
            raise RoutingError(
                f"tuple {key} has no replica on partition {source}"
            )
        if destination in replicas:
            raise RoutingError(
                f"tuple {key} already has a replica on partition "
                f"{destination}"
            )
        self._pending[key] = tuple(
            destination if pid == source else pid for pid in replicas
        )

    def mark_moving(self, key: TupleKey) -> None:
        """Enter ``key`` into the MOVING state for this stage's lifetime."""
        self._check_open()
        if key not in self._moving:
            self._moving.add(key)
            self._store._note_moving(key, +1)

    @property
    def staged_keys(self) -> frozenset[TupleKey]:
        """Keys with a staged delta."""
        return frozenset(self._pending)

    def __repr__(self) -> str:
        return (
            f"<EpochStage {self.stage_id} base={self.base_epoch_id} "
            f"keys={len(self._pending)} owner={self.owner}>"
        )


class PartitionMapStore:
    """Copy-on-write authority over the live partition map.

    Owns the live :class:`PartitionMap`, hands out immutable
    :class:`MapEpoch` snapshots, and is the only component that applies
    placement changes at runtime — the executor stages deltas during a
    repartition transaction and the store publishes them at commit.
    """

    def __init__(
        self,
        base: Optional[PartitionMap] = None,
        max_delta_log: int = 1024,
    ) -> None:
        if max_delta_log < 1:
            raise EpochError("max_delta_log must be >= 1")
        self._live = base if base is not None else PartitionMap()
        self.max_delta_log = max_delta_log
        self.epoch_id = 0
        self._log: list[EpochTransition] = []
        self._current = MapEpoch(self, 0)
        self._pins: dict[int, int] = {}
        self._stage_ids = count(1)
        #: key → number of open stages relocating it.
        self._moving: dict[TupleKey, int] = {}
        self._tombstones: dict[TupleKey, MovedTombstone] = {}
        #: Cumulative publish count (epoch churn metric).
        self.publishes = 0
        #: Called with the new epoch right after each publish.
        self.on_publish: Optional[Callable[[MapEpoch], None]] = None

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    @property
    def live_map(self) -> PartitionMap:
        """The authoritative mutable map (treat as read-only outside
        the store; all runtime mutation goes through stages)."""
        return self._live

    @property
    def current_epoch(self) -> MapEpoch:
        """The latest published epoch."""
        return self._current

    def replicas_of(self, key: TupleKey) -> Replicas:
        """Current replica list of ``key`` (primary first)."""
        return self._live.replicas_of(key)

    def primary_of(self, key: TupleKey) -> PartitionId:
        """Current primary partition of ``key``."""
        return self._live.primary_of(key)

    def partition_sizes(self) -> dict[PartitionId, int]:
        """Current replica counts per partition — O(partitions)."""
        return self._live.partition_sizes()

    def __contains__(self, key: TupleKey) -> bool:
        return key in self._live

    def __len__(self) -> int:
        return len(self._live)

    # ------------------------------------------------------------------
    # Pinning
    # ------------------------------------------------------------------
    def pin(self) -> MapEpoch:
        """Pin (and return) the current epoch; pairs with :meth:`unpin`.

        A pinned epoch's snapshot stays reconstructible: the delta log
        is never trimmed past the oldest pin.
        """
        epoch = self._current
        self._pins[epoch.epoch_id] = self._pins.get(epoch.epoch_id, 0) + 1
        return epoch

    def unpin(self, epoch: MapEpoch) -> None:
        """Release one pin on ``epoch``."""
        remaining = self._pins.get(epoch.epoch_id)
        if remaining is None:
            raise EpochError(f"epoch {epoch.epoch_id} is not pinned")
        if remaining == 1:
            del self._pins[epoch.epoch_id]
        else:
            self._pins[epoch.epoch_id] = remaining - 1
        self._trim_log()

    def pinned_epochs(self) -> tuple[int, ...]:
        """Currently pinned epoch ids (ascending)."""
        return tuple(sorted(self._pins))

    # ------------------------------------------------------------------
    # Migration states
    # ------------------------------------------------------------------
    def migration_state(self, key: TupleKey) -> MigrationState:
        """The tuple's current migration state."""
        if self._moving.get(key):
            return MigrationState.MOVING
        if key in self._tombstones:
            return MigrationState.MOVED
        return MigrationState.STABLE

    def moving_keys(self) -> frozenset[TupleKey]:
        """Keys currently held MOVING by at least one open stage."""
        return frozenset(k for k, n in self._moving.items() if n > 0)

    def tombstone_of(self, key: TupleKey) -> Optional[MovedTombstone]:
        """The MOVED tombstone for ``key``, if one is still retained."""
        return self._tombstones.get(key)

    def _note_moving(self, key: TupleKey, delta: int) -> None:
        n = self._moving.get(key, 0) + delta
        if n <= 0:
            self._moving.pop(key, None)
        else:
            self._moving[key] = n

    # ------------------------------------------------------------------
    # Staging and publishing
    # ------------------------------------------------------------------
    def begin_stage(self, owner: int = -1) -> EpochStage:
        """Open a new delta stage against the current epoch."""
        return EpochStage(self, next(self._stage_ids), owner)

    def publish(self, stage: EpochStage) -> MapEpoch:
        """Atomically apply ``stage``'s deltas and mint the next epoch.

        Per-key changes that net out to no change are elided; a stage
        with nothing effective to publish releases its MOVING marks and
        returns the current epoch unchanged (no epoch bump).
        """
        stage._check_open()
        if stage._store is not self:
            raise EpochError("stage belongs to a different store")
        deltas: list[MapDelta] = []
        for key in sorted(stage._pending):
            after = stage._pending[key]
            before = (
                self._live.replicas_of(key) if key in self._live else None
            )
            if before == after:
                continue
            if after is not None and len(set(after)) != len(after):
                raise RoutingError(
                    f"staged replica list for tuple {key} holds "
                    f"duplicates: {after}"
                )
            deltas.append(MapDelta(key=key, before=before, after=after))
        stage.published = True
        self._release_moving(stage)
        if not deltas:
            return self._current
        self.epoch_id += 1
        for delta in deltas:
            self._live.set_replicas(delta.key, delta.after)
            if (
                delta.before is not None
                and delta.after is not None
                and delta.before[0] != delta.after[0]
            ):
                self._tombstones[delta.key] = MovedTombstone(
                    key=delta.key,
                    source=delta.before[0],
                    destination=delta.after[0],
                    epoch_id=self.epoch_id,
                )
        self._log.append(
            EpochTransition(epoch_id=self.epoch_id, deltas=tuple(deltas))
        )
        self._current = MapEpoch(self, self.epoch_id)
        self.publishes += 1
        self._trim_log()
        if self.on_publish is not None:
            self.on_publish(self._current)
        return self._current

    def discard(self, stage: EpochStage) -> None:
        """Drop a stage without publishing (aborted transaction).

        Clears every MOVING mark the stage registered, so an aborted
        (or crash-killed) repartition transaction leaves no migration
        state behind — the published map never saw the stage.
        """
        if stage.published or stage.discarded:
            return
        stage.discarded = True
        self._release_moving(stage)

    def _release_moving(self, stage: EpochStage) -> None:
        for key in stage._moving:
            self._note_moving(key, -1)
        stage._moving.clear()

    # ------------------------------------------------------------------
    # Delta log
    # ------------------------------------------------------------------
    def delta_log(self) -> tuple[EpochTransition, ...]:
        """The retained transitions, oldest first."""
        return tuple(self._log)

    def _trim_log(self) -> None:
        """Drop transitions beyond the bound that no pin still needs."""
        if len(self._log) <= self.max_delta_log:
            return
        oldest_pin = min(self._pins) if self._pins else self.epoch_id
        while len(self._log) > self.max_delta_log:
            # The oldest transition T is needed by epochs < T.epoch_id.
            if self._log[0].epoch_id <= oldest_pin:
                trimmed_before = self._log.pop(0).epoch_id
                # Tombstones are retained only as long as the transition
                # that minted them is reconstructible.
                self._tombstones = {
                    k: t
                    for k, t in self._tombstones.items()
                    if t.epoch_id > trimmed_before
                }
            else:
                break

    def __repr__(self) -> str:
        return (
            f"<PartitionMapStore epoch={self.epoch_id} "
            f"keys={len(self._live)} log={len(self._log)} "
            f"moving={len(self._moving)}>"
        )
