"""Query objects: the unit of data access inside a transaction.

The paper's normal transactions contain 5 queries, each accessing one
unique tuple, read-only or write with equal probability.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..types import AccessMode, TupleKey


@dataclass(frozen=True)
class Query:
    """A single-tuple access: read the tuple, or overwrite its value."""

    table: str
    key: TupleKey
    mode: AccessMode
    value: Optional[int] = None

    def __post_init__(self) -> None:
        if self.mode is AccessMode.WRITE and self.value is None:
            object.__setattr__(self, "value", 0)

    @property
    def is_write(self) -> bool:
        """Whether this query needs an exclusive lock."""
        return self.mode is AccessMode.WRITE

    def to_sql(self) -> str:
        """Render as the mini-SQL dialect understood by the parser."""
        if self.is_write:
            return (
                f"UPDATE {self.table} SET value = {self.value} "
                f"WHERE key = {self.key}"
            )
        return f"SELECT value FROM {self.table} WHERE key = {self.key}"
