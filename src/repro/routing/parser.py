"""A small SQL-subset parser that extracts partition attributes.

The paper's prototype "implemented a query parser that reads a query and
extracts the partition attributes of the target objects, which will be
used for query routing".  This parser understands exactly the dialect
the workload uses — single-tuple selects and updates keyed on the
partition attribute ``key``:

    SELECT value FROM accounts WHERE key = 42
    UPDATE accounts SET value = 7 WHERE key = 42

Whitespace and keyword case are insignificant.  Anything else raises
:class:`QueryParseError` so routing bugs surface immediately instead of
silently misrouting.
"""

from __future__ import annotations

import re

from ..errors import ReproError
from ..types import AccessMode
from .query import Query


class QueryParseError(ReproError):
    """The query text does not match the supported dialect."""


_SELECT_RE = re.compile(
    r"^\s*SELECT\s+(?P<column>\w+)\s+FROM\s+(?P<table>\w+)\s+"
    r"WHERE\s+key\s*=\s*(?P<key>-?\d+)\s*;?\s*$",
    re.IGNORECASE,
)

_UPDATE_RE = re.compile(
    r"^\s*UPDATE\s+(?P<table>\w+)\s+SET\s+value\s*=\s*(?P<value>-?\d+)\s+"
    r"WHERE\s+key\s*=\s*(?P<key>-?\d+)\s*;?\s*$",
    re.IGNORECASE,
)


def parse_query(text: str) -> Query:
    """Parse one statement of the mini dialect into a :class:`Query`."""
    match = _SELECT_RE.match(text)
    if match:
        return Query(
            table=match.group("table"),
            key=int(match.group("key")),
            mode=AccessMode.READ,
        )
    match = _UPDATE_RE.match(text)
    if match:
        return Query(
            table=match.group("table"),
            key=int(match.group("key")),
            mode=AccessMode.WRITE,
            value=int(match.group("value")),
        )
    raise QueryParseError(f"unsupported query: {text!r}")


def parse_transaction(statements: str) -> list[Query]:
    """Parse a semicolon/newline-separated batch of statements."""
    queries: list[Query] = []
    for raw_line in statements.splitlines():
        for raw in raw_line.split(";"):
            stripped = raw.strip()
            if stripped:
                queries.append(parse_query(stripped))
    if not queries:
        raise QueryParseError("transaction contains no statements")
    return queries


def extract_partition_attribute(text: str) -> int:
    """Return just the partition attribute (the key) of a statement."""
    return parse_query(text).key
