"""Array-backed partition map for dense integer key spaces.

The standard :class:`~repro.routing.partition_map.PartitionMap` stores a
``dict[TupleKey, list[PartitionId]]`` — roughly 150 bytes per mapped
tuple once the dict entry, the list object, and its int elements are
counted.  At the paper's 500k-tuple scale that is ~75 MB of routing
state; at the production tier (1M–10M tuples) the map becomes the
coordinator's single largest allocation.

:class:`DensePartitionMap` exploits the structure of that tier: tuple
keys are consecutive integers in ``[0, capacity)`` and the overwhelming
majority of tuples have exactly one replica.  Single-replica placements
for in-range keys live in one flat ``array('i')`` column (4 bytes per
key) indexed *by the key itself*; only the rare multi-replica keys spill
to a side dict, and keys outside the dense range fall back to the
inherited dict representation wholesale.  Lookups and mutations keep the
exact error behaviour of ``PartitionMap`` (same messages, same check
order), so routers, epoch stores, and schedulers cannot tell the two
apart — asserted by the equivalence suite in
``tests/routing/test_dense_map.py``.

One deliberate divergence, documented rather than hidden:
:meth:`keys` iterates in-range keys in **ascending key order** (the
array is the source of truth and carries no insertion history), then
out-of-range keys in their dict insertion order.  The standard map
iterates purely in insertion order.  Nothing in the repository depends
on map iteration order for figure-series determinism — the scale tier
has its own presets — but callers that diff ``keys()`` streams across
map implementations must sort first.
"""

from __future__ import annotations

from array import array
from typing import Iterator, Optional, Sequence

from ..errors import RoutingError
from ..types import PartitionId, TupleKey
from .partition_map import PartitionMap

#: ``_primary`` sentinel: the key is not mapped.
_UNMAPPED = -1
#: ``_primary`` sentinel: the key's replica list lives in ``_multi``.
_SPILLED = -2


class DensePartitionMap(PartitionMap):
    """``PartitionMap`` storing dense single-replica keys in a flat array.

    ``capacity`` fixes the dense key range ``[0, capacity)`` up front
    (the production presets know their tuple count); keys outside the
    range remain fully supported through the inherited dict paths.
    Partition ids must be non-negative so they never collide with the
    array's sentinel values — true of every id the cluster assigns.
    """

    def __init__(self, capacity: int) -> None:
        super().__init__()
        if capacity < 1:
            raise RoutingError(
                f"dense map capacity must be positive, got {capacity}"
            )
        self.capacity = capacity
        #: Primary partition per in-range key, or a sentinel.
        self._primary = array("i", [_UNMAPPED]) * capacity
        #: Replica lists for in-range keys with != 1 replica.
        self._multi: dict[TupleKey, list[PartitionId]] = {}
        #: Mapped in-range key count (``_replicas`` holds out-of-range).
        self._dense_count = 0

    def _is_dense(self, key: TupleKey) -> bool:
        return isinstance(key, int) and 0 <= key < self.capacity

    @staticmethod
    def _check_partition(partition_id: PartitionId) -> None:
        if partition_id < 0:
            raise RoutingError(
                f"partition id must be non-negative, got {partition_id}"
            )

    def __len__(self) -> int:
        return self._dense_count + len(self._replicas)

    def __contains__(self, key: TupleKey) -> bool:
        if self._is_dense(key):
            return self._primary[key] != _UNMAPPED
        return key in self._replicas

    def keys(self) -> Iterator[TupleKey]:
        """Iterate mapped keys: dense range ascending, then overflow."""
        primary = self._primary
        for key in range(self.capacity):
            if primary[key] != _UNMAPPED:
                yield key
        yield from self._replicas

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def replicas_of(self, key: TupleKey) -> tuple[PartitionId, ...]:
        """All partitions holding a replica of ``key`` (primary first)."""
        if self._is_dense(key):
            primary = self._primary[key]
            if primary >= 0:
                return (primary,)
            if primary == _SPILLED:
                return tuple(self._multi[key])
            raise RoutingError(f"tuple {key} is not mapped to any partition")
        return super().replicas_of(key)

    def primary_of(self, key: TupleKey) -> PartitionId:
        """The primary replica's partition — one array read when dense."""
        if self._is_dense(key):
            primary = self._primary[key]
            if primary >= 0:
                return primary
            if primary == _SPILLED:
                return self._multi[key][0]
            raise RoutingError(f"tuple {key} is not mapped to any partition")
        return super().primary_of(key)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def assign(self, key: TupleKey, partition_id: PartitionId) -> None:
        """Initial placement of ``key`` with a single replica."""
        if not self._is_dense(key):
            super().assign(key, partition_id)
            return
        self._check_partition(partition_id)
        if self._primary[key] != _UNMAPPED:
            raise RoutingError(f"tuple {key} is already mapped")
        self._primary[key] = partition_id
        self._dense_count += 1
        self._size_delta(partition_id, +1)
        self.version += 1

    def add_replica(self, key: TupleKey, partition_id: PartitionId) -> None:
        """Record a new replica of ``key`` on ``partition_id``."""
        if not self._is_dense(key):
            super().add_replica(key, partition_id)
            return
        self._check_partition(partition_id)
        primary = self._primary[key]
        if primary == _UNMAPPED:
            raise RoutingError(f"tuple {key} is not mapped to any partition")
        if primary == _SPILLED:
            replicas = self._multi[key]
            if partition_id in replicas:
                raise RoutingError(
                    f"tuple {key} already has a replica on partition "
                    f"{partition_id}"
                )
            replicas.append(partition_id)
        else:
            if partition_id == primary:
                raise RoutingError(
                    f"tuple {key} already has a replica on partition "
                    f"{partition_id}"
                )
            self._multi[key] = [primary, partition_id]
            self._primary[key] = _SPILLED
        self._size_delta(partition_id, +1)
        self.version += 1

    def remove_replica(self, key: TupleKey, partition_id: PartitionId) -> None:
        """Drop the replica of ``key`` on ``partition_id``."""
        if not self._is_dense(key):
            super().remove_replica(key, partition_id)
            return
        primary = self._primary[key]
        if primary == _UNMAPPED:
            raise RoutingError(f"tuple {key} is not mapped to any partition")
        if primary == _SPILLED:
            replicas = self._multi[key]
            if partition_id not in replicas:
                raise RoutingError(
                    f"tuple {key} has no replica on partition {partition_id}"
                )
            if len(replicas) == 1:
                raise RoutingError(
                    f"cannot remove the last replica of tuple {key}"
                )
            replicas.remove(partition_id)
            if len(replicas) == 1:
                # Collapse back to the flat representation.
                self._primary[key] = replicas[0]
                del self._multi[key]
        else:
            if partition_id != primary:
                raise RoutingError(
                    f"tuple {key} has no replica on partition {partition_id}"
                )
            raise RoutingError(
                f"cannot remove the last replica of tuple {key}"
            )
        self._size_delta(partition_id, -1)
        self.version += 1

    def move(
        self, key: TupleKey, source: PartitionId, destination: PartitionId
    ) -> None:
        """Atomically relocate the replica of ``key`` from source to dest."""
        if not self._is_dense(key):
            super().move(key, source, destination)
            return
        self._check_partition(destination)
        primary = self._primary[key]
        if primary == _UNMAPPED:
            raise RoutingError(f"tuple {key} is not mapped to any partition")
        if primary == _SPILLED:
            replicas = self._multi[key]
            if source not in replicas:
                raise RoutingError(
                    f"tuple {key} has no replica on partition {source}"
                )
            if destination in replicas:
                raise RoutingError(
                    f"tuple {key} already has a replica on partition "
                    f"{destination}"
                )
            replicas[replicas.index(source)] = destination
        else:
            if source != primary:
                raise RoutingError(
                    f"tuple {key} has no replica on partition {source}"
                )
            if destination == primary:
                raise RoutingError(
                    f"tuple {key} already has a replica on partition "
                    f"{destination}"
                )
            self._primary[key] = destination
        self._size_delta(source, -1)
        self._size_delta(destination, +1)
        self.version += 1

    def set_replicas(
        self, key: TupleKey, replicas: Optional[Sequence[PartitionId]]
    ) -> None:
        """Install ``key``'s whole replica list (``None`` unmaps it)."""
        if not self._is_dense(key):
            super().set_replicas(key, replicas)
            return
        primary = self._primary[key]
        if primary == _SPILLED:
            for pid in self._multi.pop(key):
                self._size_delta(pid, -1)
        elif primary != _UNMAPPED:
            self._size_delta(primary, -1)
        was_mapped = primary != _UNMAPPED
        if replicas is None:
            self._primary[key] = _UNMAPPED
            if was_mapped:
                self._dense_count -= 1
        else:
            installed = list(replicas)
            for pid in installed:
                self._check_partition(pid)
            if len(installed) == 1:
                self._primary[key] = installed[0]
            else:
                self._primary[key] = _SPILLED
                self._multi[key] = installed
            for pid in installed:
                self._size_delta(pid, +1)
            if not was_mapped:
                self._dense_count += 1
        self.version += 1

    def copy(self) -> "DensePartitionMap":
        """Deep copy (used to freeze 'the original plan O' for costing)."""
        clone = DensePartitionMap(self.capacity)
        clone._primary = array("i", self._primary)
        clone._multi = {k: list(v) for k, v in self._multi.items()}
        clone._replicas = {k: list(v) for k, v in self._replicas.items()}
        clone._sizes = dict(self._sizes)
        clone._dense_count = self._dense_count
        clone.version = self.version
        return clone
