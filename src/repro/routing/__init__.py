"""Query routing: the partition lookup table, epoch-versioned map store,
query model, parser, and router."""

from .dense_map import DensePartitionMap
from .epoch import (
    EpochStage,
    EpochTransition,
    MapDelta,
    MapEpoch,
    MigrationState,
    MovedTombstone,
    PartitionMapStore,
)
from .parser import QueryParseError, extract_partition_attribute, parse_query, parse_transaction
from .partition_map import PartitionMap
from .query import Query
from .router import QueryRouter

__all__ = [
    "DensePartitionMap",
    "EpochStage",
    "EpochTransition",
    "MapDelta",
    "MapEpoch",
    "MigrationState",
    "MovedTombstone",
    "PartitionMap",
    "PartitionMapStore",
    "Query",
    "QueryParseError",
    "QueryRouter",
    "extract_partition_attribute",
    "parse_query",
    "parse_transaction",
]
