"""Query routing: the partition lookup table, query model, parser, router."""

from .parser import QueryParseError, extract_partition_attribute, parse_query, parse_transaction
from .partition_map import PartitionMap
from .query import Query
from .router import QueryRouter

__all__ = [
    "PartitionMap",
    "Query",
    "QueryParseError",
    "QueryRouter",
    "extract_partition_attribute",
    "parse_query",
    "parse_transaction",
]
