"""Metrics: per-interval collection, series extraction, text reports."""

from .collectors import IntervalRecord, MetricsCollector
from .export import (
    INTERVAL_FIELDS,
    INTERVAL_STATE_FIELDS,
    interval_from_state_dict,
    interval_to_dict,
    interval_to_state_dict,
    intervals_to_csv,
    result_from_state_dict,
    result_to_dict,
    result_to_json,
    result_to_state_dict,
    save_result,
)
from .report import (
    format_comparison_table,
    format_interval_table,
    format_sparkline_panel,
    sparkline,
    summarise,
)
from .series import area_under, first_index_reaching, mean, series, smooth

__all__ = [
    "INTERVAL_FIELDS",
    "INTERVAL_STATE_FIELDS",
    "IntervalRecord",
    "MetricsCollector",
    "interval_from_state_dict",
    "interval_to_dict",
    "interval_to_state_dict",
    "intervals_to_csv",
    "result_from_state_dict",
    "result_to_dict",
    "result_to_json",
    "result_to_state_dict",
    "save_result",
    "area_under",
    "first_index_reaching",
    "format_comparison_table",
    "format_interval_table",
    "format_sparkline_panel",
    "sparkline",
    "mean",
    "series",
    "smooth",
    "summarise",
]
