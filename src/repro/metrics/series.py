"""Time-series extraction and summary statistics over interval records."""

from __future__ import annotations

import math
from typing import Callable, Sequence

from .collectors import IntervalRecord


def series(
    intervals: Sequence[IntervalRecord],
    metric: str,
) -> list[float]:
    """Extract one named metric as a list, one value per interval.

    ``metric`` is the name of any numeric attribute or property of
    :class:`IntervalRecord` (e.g. ``"throughput_txn_per_min"``,
    ``"failure_rate"``, ``"rep_rate"``, ``"mean_latency_ms"``).
    """
    return [float(getattr(record, metric)) for record in intervals]


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean (0 for an empty sequence)."""
    if not values:
        return 0.0
    return math.fsum(values) / len(values)


def smooth(values: Sequence[float], window: int = 3) -> list[float]:
    """Centred moving average used to de-noise plotted series."""
    if window < 1:
        raise ValueError(f"window must be >= 1: {window}")
    if window == 1:
        return list(values)
    half = window // 2
    result = []
    for i in range(len(values)):
        low = max(0, i - half)
        high = min(len(values), i + half + 1)
        result.append(math.fsum(values[low:high]) / (high - low))
    return result


def first_index_reaching(
    values: Sequence[float],
    threshold: float,
    predicate: Callable[[float, float], bool] = lambda v, t: v >= t,
) -> int:
    """First interval index where the metric crosses ``threshold`` (-1 if never).

    Used to measure repartition completion time: e.g. the first interval
    where RepRate reaches 1.0.
    """
    for i, value in enumerate(values):
        if predicate(value, threshold):
            return i
    return -1


def area_under(values: Sequence[float]) -> float:
    """Sum of the series (proxy for integral over the run)."""
    return math.fsum(values)
