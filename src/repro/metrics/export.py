"""Exporting experiment results to JSON and CSV.

Benchmark and example runs print text tables; downstream analysis
(plotting the figures, statistics across seeds) wants structured data.
These helpers serialise :class:`IntervalRecord` sequences and whole
:class:`~repro.experiments.runner.ExperimentResult` objects.
"""

from __future__ import annotations

import csv
import dataclasses
import io
import json
from typing import TYPE_CHECKING, Any, Sequence

from .collectors import IntervalRecord

if TYPE_CHECKING:  # pragma: no cover
    from ..experiments.runner import ExperimentResult

#: The columns exported for each interval, in order.
INTERVAL_FIELDS = (
    "index",
    "start",
    "end",
    "submitted",
    "committed",
    "aborted",
    "normal_submitted",
    "normal_committed",
    "normal_aborted",
    "rep_committed",
    "rep_aborted",
    "normal_cost",
    "rep_cost_high",
    "rep_cost_low",
    "rep_cost_piggyback",
    "queue_length_end",
    "retries",
    "degraded_s",
    "committed_degraded",
    "epoch_publishes",
    "forwarded_reads",
    "stale_route_retries",
    "nodes_joining",
    "nodes_active",
    "nodes_draining",
    "nodes_retired",
    # Derived series (the paper's y-axes):
    "migration_backlog",
    "rep_rate",
    "throughput_txn_per_min",
    "mean_latency_ms",
    "failure_rate",
)


#: Every *raw* (stored, not derived) field of an interval, in declaration
#: order.  Unlike :data:`INTERVAL_FIELDS` this includes the latency sample
#: list and the cumulative counters, so a record serialised with
#: :func:`interval_to_state_dict` round-trips bit-for-bit — which is what
#: the experiment result cache depends on.
INTERVAL_STATE_FIELDS = tuple(
    f.name for f in dataclasses.fields(IntervalRecord)
)


def interval_to_dict(record: IntervalRecord) -> dict[str, Any]:
    """One interval as a flat JSON-ready dict."""
    return {field: getattr(record, field) for field in INTERVAL_FIELDS}


def interval_to_state_dict(record: IntervalRecord) -> dict[str, Any]:
    """One interval as a full-fidelity dict of its raw fields."""
    return {
        field: getattr(record, field) for field in INTERVAL_STATE_FIELDS
    }


def interval_from_state_dict(payload: dict[str, Any]) -> IntervalRecord:
    """Rebuild an interval from :func:`interval_to_state_dict` output."""
    return IntervalRecord(**payload)


def result_to_state_dict(result: "ExperimentResult") -> dict[str, Any]:
    """A result's complete measured state (everything but the config).

    The config is deliberately omitted: callers that round-trip results
    (the cache) already hold the config — it *is* the lookup key — so
    storing it again would only invite divergence.
    """
    return {
        "arrival_rate_txn_per_s": result.arrival_rate_txn_per_s,
        "rep_ops_total": result.rep_ops_total,
        "repartition_start_interval": result.repartition_start_interval,
        "repartition_completed_at": result.repartition_completed_at,
        "summary": dict(result.summary),
        "intervals": [
            interval_to_state_dict(r) for r in result.intervals
        ],
    }


def result_from_state_dict(
    payload: dict[str, Any], config: Any
) -> "ExperimentResult":
    """Rebuild a result from :func:`result_to_state_dict` plus its config."""
    from ..experiments.runner import ExperimentResult

    return ExperimentResult(
        config=config,
        intervals=[
            interval_from_state_dict(d) for d in payload["intervals"]
        ],
        repartition_start_interval=payload["repartition_start_interval"],
        rep_ops_total=payload["rep_ops_total"],
        repartition_completed_at=payload["repartition_completed_at"],
        arrival_rate_txn_per_s=payload["arrival_rate_txn_per_s"],
        summary=dict(payload["summary"]),
    )


def intervals_to_csv(records: Sequence[IntervalRecord]) -> str:
    """Render intervals as CSV text (header + one row per interval)."""
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=INTERVAL_FIELDS)
    writer.writeheader()
    for record in records:
        writer.writerow(interval_to_dict(record))
    return buffer.getvalue()


def result_to_dict(result: "ExperimentResult") -> dict[str, Any]:
    """A whole experiment result as a JSON-ready dict."""
    config = result.config
    return {
        "config": {
            "name": config.name,
            "seed": config.seed,
            "scheduler": config.scheduler,
            "distribution": config.distribution,
            "load": config.load,
            "alpha": config.alpha,
            "node_count": config.cluster.node_count,
            "capacity_units_per_s": config.cluster.capacity_units_per_s,
            "tuple_count": config.workload.tuple_count,
            "distinct_types": config.workload.distinct_types,
            "interval_s": config.runtime.interval_s,
            "warmup_intervals": config.runtime.warmup_intervals,
            "measure_intervals": config.runtime.measure_intervals,
        },
        "arrival_rate_txn_per_s": result.arrival_rate_txn_per_s,
        "rep_ops_total": result.rep_ops_total,
        "repartition_start_interval": result.repartition_start_interval,
        "repartition_completed_at": result.repartition_completed_at,
        "completion_interval": result.completion_interval,
        "summary": dict(result.summary),
        "intervals": [interval_to_dict(r) for r in result.intervals],
    }


def result_to_json(result: "ExperimentResult", indent: int = 2) -> str:
    """A whole experiment result as a JSON string."""
    return json.dumps(result_to_dict(result), indent=indent)


def save_result(result: "ExperimentResult", path: str) -> None:
    """Write a result to ``path`` (.json or .csv by extension)."""
    if path.endswith(".json"):
        with open(path, "w") as handle:
            handle.write(result_to_json(result))
    elif path.endswith(".csv"):
        with open(path, "w") as handle:
            handle.write(intervals_to_csv(result.intervals))
    else:
        raise ValueError(f"unsupported export extension: {path!r}")
