"""Plain-text reporting of interval metrics (the benchmark harness output)."""

from __future__ import annotations

from typing import Mapping, Sequence

from .collectors import IntervalRecord
from .series import mean, series


def format_interval_table(
    intervals: Sequence[IntervalRecord],
    every: int = 1,
) -> str:
    """Render per-interval rows as a fixed-width table."""
    header = (
        f"{'int':>4} {'RepRate':>8} {'Thru(t/m)':>10} {'Lat(ms)':>10} "
        f"{'FailRate':>9} {'Queue':>6}"
    )
    lines = [header, "-" * len(header)]
    for record in intervals:
        if record.index % every != 0:
            continue
        lines.append(
            f"{record.index:>4} {record.rep_rate:>8.3f} "
            f"{record.throughput_txn_per_min:>10.1f} "
            f"{record.mean_latency_ms:>10.1f} {record.failure_rate:>9.3f} "
            f"{record.queue_length_end:>6}"
        )
    return "\n".join(lines)


def format_comparison_table(
    results: Mapping[str, Sequence[IntervalRecord]],
    metric: str,
    title: str = "",
    every: int = 10,
) -> str:
    """Side-by-side series for several schedulers, one column each.

    This is the textual equivalent of one sub-figure in the paper: the
    x-axis is the interval index, one column per scheduler line.
    """
    names = list(results)
    width = max(10, max((len(n) for n in names), default=10) + 1)
    lines = []
    if title:
        lines.append(title)
    lines.append(
        f"{'interval':>8} " + " ".join(f"{name:>{width}}" for name in names)
    )
    columns = {name: series(records, metric) for name, records in results.items()}
    length = max((len(col) for col in columns.values()), default=0)
    for i in range(0, length, every):
        row = [f"{i:>8}"]
        for name in names:
            col = columns[name]
            value = col[i] if i < len(col) else float("nan")
            row.append(f"{value:>{width}.3f}")
        lines.append(" ".join(row))
    lines.append(
        f"{'mean':>8} "
        + " ".join(f"{mean(columns[name]):>{width}.3f}" for name in names)
    )
    return "\n".join(lines)


_SPARK_BLOCKS = " ▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float]) -> str:
    """A unicode sparkline of a series (empty string for no data).

    Used to give the textual figure renderings a visual line per
    scheduler, e.g. ``▁▂▄▆▇███`` for a RepRate ramp.
    """
    if not values:
        return ""
    low = min(values)
    high = max(values)
    span = high - low
    if span <= 0:
        return _SPARK_BLOCKS[1] * len(values)
    scale = len(_SPARK_BLOCKS) - 2
    return "".join(
        _SPARK_BLOCKS[1 + int((v - low) / span * scale)] for v in values
    )


def format_sparkline_panel(
    results: Mapping[str, Sequence[IntervalRecord]],
    metric: str,
    title: str = "",
) -> str:
    """One line per scheduler: name, sparkline, min/max annotations."""
    lines = [title] if title else []
    width = max((len(name) for name in results), default=8)
    for name, records in results.items():
        values = series(records, metric)
        if values:
            annotation = f"min={min(values):.3g} max={max(values):.3g}"
        else:
            annotation = "no data"
        lines.append(
            f"{name:>{width}} {sparkline(values)}  {annotation}"
        )
    return "\n".join(lines)


def summarise(intervals: Sequence[IntervalRecord]) -> dict[str, float]:
    """Whole-run summary statistics for one experiment."""
    summary = {
        "mean_throughput_txn_per_min": mean(
            series(intervals, "throughput_txn_per_min")
        ),
        "mean_latency_ms": mean(series(intervals, "mean_latency_ms")),
        "mean_failure_rate": mean(series(intervals, "failure_rate")),
        "final_rep_rate": intervals[-1].rep_rate if intervals else 0.0,
        "total_committed": float(
            sum(record.normal_committed for record in intervals)
        ),
        "total_aborted": float(
            sum(record.aborted for record in intervals)
        ),
        "total_retries": float(
            sum(record.retries for record in intervals)
        ),
        "total_degraded_s": sum(record.degraded_s for record in intervals),
        "total_committed_degraded": float(
            sum(record.committed_degraded for record in intervals)
        ),
    }
    for cause in sorted(
        {c for record in intervals for c in record.aborted_by_cause}
    ):
        summary[f"aborted_{cause}"] = float(
            sum(record.aborted_by_cause.get(cause, 0) for record in intervals)
        )
    degraded = summary["total_degraded_s"]
    if degraded > 0:
        summary["goodput_degraded_txn_per_min"] = (
            summary["total_committed_degraded"] * 60.0 / degraded
        )
    return summary
