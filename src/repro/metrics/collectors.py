"""Per-interval metrics collection.

The paper reports four per-interval series (20-second intervals):

* **RepRate** — fraction of repartition operations applied so far;
* **Throughput** — committed normal transactions per minute;
* **Latency** — submission-to-finish time of normal transactions;
* **Failure rate** — aborted / submitted transactions in the interval.

The collector also accumulates the work-unit costs the Feedback
scheduler's PV measurement needs: normal-transaction cost, the cost of
high-priority (feedback-enforced) repartition transactions, low-priority
(AfterAll-style) repartition cost, and piggybacked repartition cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Generator, Optional

from ..sim.events import Event
from ..types import Priority
from ..txn.transaction import Transaction

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.environment import Environment


@dataclass
class IntervalRecord:
    """Everything measured during one interval."""

    index: int
    start: float
    end: float

    submitted: int = 0
    committed: int = 0
    aborted: int = 0
    #: Aborts this interval keyed by machine-readable cause
    #: (``TransactionAborted.cause``: deadlock, lock_timeout, node_down,
    #: 2pc_abort, injected, queue_timeout, other).
    aborted_by_cause: dict[str, int] = field(default_factory=dict)
    #: Aborted transactions re-enqueued for another attempt.
    retries: int = 0
    #: Virtual seconds of this interval during which >= 1 node was down.
    degraded_s: float = 0.0
    #: Normal commits that happened while >= 1 node was down (goodput
    #: during degradation).
    committed_degraded: int = 0

    normal_submitted: int = 0
    normal_committed: int = 0
    normal_aborted: int = 0
    rep_committed: int = 0
    rep_aborted: int = 0

    latency_sum: float = 0.0
    latency_count: int = 0
    latencies: list[float] = field(default_factory=list)

    normal_cost: float = 0.0
    rep_cost_high: float = 0.0
    rep_cost_low: float = 0.0
    rep_cost_piggyback: float = 0.0

    rep_ops_applied_cumulative: int = 0
    rep_ops_total: int = 0

    queue_length_end: int = 0

    #: Map epochs published this interval (epoch churn).
    epoch_publishes: int = 0
    #: Reads forwarded past a just-migrated replica this interval.
    forwarded_reads: int = 0
    #: Retries of transactions aborted with the ``stale_route`` cause.
    stale_route_retries: int = 0

    #: Cluster membership census at interval close (elastic runs); all
    #: zero when no node-state probe is wired.
    nodes_joining: int = 0
    nodes_active: int = 0
    nodes_draining: int = 0
    nodes_retired: int = 0

    # ------------------------------------------------------------------
    # Derived series (the paper's y-axes)
    # ------------------------------------------------------------------
    @property
    def duration(self) -> float:
        """Interval length in virtual seconds."""
        return self.end - self.start

    @property
    def throughput_txn_per_min(self) -> float:
        """Committed normal transactions per minute."""
        if self.duration <= 0:
            return 0.0
        return self.normal_committed * 60.0 / self.duration

    @property
    def mean_latency_s(self) -> float:
        """Mean normal-transaction latency (0 when none committed)."""
        if self.latency_count == 0:
            return 0.0
        return self.latency_sum / self.latency_count

    @property
    def mean_latency_ms(self) -> float:
        """Mean latency in milliseconds (the paper's unit)."""
        return self.mean_latency_s * 1000.0

    @property
    def goodput_degraded_txn_per_min(self) -> float:
        """Normal commits per minute of node-down time this interval."""
        if self.degraded_s <= 0:
            return 0.0
        return self.committed_degraded * 60.0 / self.degraded_s

    @property
    def failure_rate(self) -> float:
        """Aborted / submitted transactions this interval."""
        if self.submitted == 0:
            return 0.0
        return self.aborted / self.submitted

    @property
    def rep_rate(self) -> float:
        """Fraction of repartition operations applied so far."""
        if self.rep_ops_total == 0:
            return 0.0
        return self.rep_ops_applied_cumulative / self.rep_ops_total

    @property
    def migration_backlog(self) -> int:
        """Repartition operations still waiting to be applied.

        During an elastic drain this is the mass-migration backlog the
        scale-in is waiting on; it returns to zero at quiescence.
        """
        return self.rep_ops_total - self.rep_ops_applied_cumulative

    @property
    def pv_ratio(self) -> float:
        """High-priority repartition cost / normal cost (Feedback's PV)."""
        if self.normal_cost <= 0:
            return 0.0
        return self.rep_cost_high / self.normal_cost

    @property
    def pv_ratio_with_piggyback(self) -> float:
        """PV counting piggybacked operations too (Hybrid's measurement)."""
        if self.normal_cost <= 0:
            return 0.0
        return (self.rep_cost_high + self.rep_cost_piggyback) / self.normal_cost

    def latency_percentile(self, percentile: float) -> float:
        """Latency percentile in seconds (0 when nothing committed)."""
        if not self.latencies:
            return 0.0
        if not 0 <= percentile <= 100:
            raise ValueError(f"percentile out of range: {percentile}")
        ordered = sorted(self.latencies)
        rank = (percentile / 100.0) * (len(ordered) - 1)
        low = int(rank)
        high = min(low + 1, len(ordered) - 1)
        fraction = rank - low
        return ordered[low] * (1 - fraction) + ordered[high] * fraction


class MetricsCollector:
    """Accumulates transaction events into per-interval records."""

    def __init__(
        self,
        env: "Environment",
        interval_s: float = 20.0,
        queue_length_probe: Optional[Callable[[], int]] = None,
    ) -> None:
        if interval_s <= 0:
            raise ValueError(f"interval must be positive: {interval_s}")
        self.env = env
        self.interval_s = interval_s
        #: Sampled at each interval close; may be wired after construction
        #: via :meth:`set_queue_length_probe` when the queue owner (the
        #: transaction manager) is built later than the collector.
        self.queue_length_probe = queue_length_probe
        #: Samples the cluster's per-state node counts at interval close
        #: (elastic runs); wired via :meth:`set_node_state_probe`.
        self.node_state_probe: Optional[Callable[[], dict[str, int]]] = None
        self.intervals: list[IntervalRecord] = []
        self.rep_ops_total = 0
        self.rep_ops_applied = 0
        #: Called with each record right after its interval closes; this
        #: is how the repartition schedulers observe the system without
        #: racing the collector's own clock.
        self.interval_observers: list[Callable[[IntervalRecord], None]] = []
        #: Nodes currently down (fault injection); drives the
        #: goodput-during-degradation accounting.
        self._down_nodes: set[int] = set()
        self._degraded_since: Optional[float] = None
        self._current = IntervalRecord(index=0, start=env.now, end=env.now)
        self._ticker = env.process(self._tick_loop())

    # ------------------------------------------------------------------
    # Recording (called by the transaction manager / session)
    # ------------------------------------------------------------------
    def record_submitted(self, txn: Transaction) -> None:
        """A transaction entered the processing queue."""
        self._current.submitted += 1
        if txn.is_normal:
            self._current.normal_submitted += 1

    def record_committed(self, txn: Transaction) -> None:
        """A transaction committed; attribute its latency and cost."""
        self._current.committed += 1
        if txn.is_normal:
            self._current.normal_committed += 1
            if self._down_nodes:
                self._current.committed_degraded += 1
            latency = txn.latency
            if latency is not None:
                self._current.latency_sum += latency
                self._current.latency_count += 1
                self._current.latencies.append(latency)
            self._current.normal_cost += txn.normal_cost_units
            if txn.rep_cost_units > 0:
                self._current.rep_cost_piggyback += txn.rep_cost_units
        else:
            self._current.rep_committed += 1
            if txn.priority is Priority.LOW:
                self._current.rep_cost_low += txn.rep_cost_units
            else:
                self._current.rep_cost_high += txn.rep_cost_units

    def record_aborted(self, txn: Transaction) -> None:
        """A transaction aborted."""
        self._current.aborted += 1
        cause = txn.abort_cause or "other"
        by_cause = self._current.aborted_by_cause
        by_cause[cause] = by_cause.get(cause, 0) + 1
        if txn.is_normal:
            self._current.normal_aborted += 1
        else:
            self._current.rep_aborted += 1

    def record_retry(self, txn: Transaction) -> None:
        """An aborted transaction was re-enqueued for another attempt."""
        self._current.retries += 1
        if txn.abort_cause == "stale_route":
            self._current.stale_route_retries += 1

    def record_epoch_publish(self) -> None:
        """A new partition-map epoch was published (epoch churn)."""
        self._current.epoch_publishes += 1

    def record_forwarded_read(self) -> None:
        """A read was forwarded past a just-migrated replica."""
        self._current.forwarded_reads += 1

    # ------------------------------------------------------------------
    # Fault-injection notifications (degradation accounting)
    # ------------------------------------------------------------------
    def note_node_down(self, node_id: int) -> None:
        """A node crashed; start (or continue) the degraded clock."""
        if not self._down_nodes:
            self._degraded_since = self.env.now
        self._down_nodes.add(node_id)

    def note_node_up(self, node_id: int) -> None:
        """A node restarted; stop the degraded clock when none are down."""
        self._down_nodes.discard(node_id)
        if not self._down_nodes and self._degraded_since is not None:
            self._current.degraded_s += self.env.now - self._degraded_since
            self._degraded_since = None

    def set_queue_length_probe(self, probe: Callable[[], int]) -> None:
        """Wire (or replace) the queue-length probe after construction."""
        if not callable(probe):
            raise TypeError(f"probe must be callable, got {probe!r}")
        self.queue_length_probe = probe

    def set_node_state_probe(
        self, probe: Callable[[], dict[str, int]]
    ) -> None:
        """Wire the membership census probe (``Cluster.state_counts``)."""
        if not callable(probe):
            raise TypeError(f"probe must be callable, got {probe!r}")
        self.node_state_probe = probe

    def record_rep_op_applied(self) -> None:
        """One repartition operation took effect (committed)."""
        self.rep_ops_applied += 1

    def set_rep_ops_total(self, total: int) -> None:
        """Register how many repartition operations the plan contains."""
        self.rep_ops_total = total

    # ------------------------------------------------------------------
    # Interval machinery
    # ------------------------------------------------------------------
    @property
    def current_interval(self) -> IntervalRecord:
        """The interval currently being filled (not yet closed)."""
        return self._current

    @property
    def last_closed(self) -> Optional[IntervalRecord]:
        """The most recently completed interval, if any."""
        return self.intervals[-1] if self.intervals else None

    def _tick_loop(self) -> Generator[Event, Any, None]:
        while True:
            yield self.env.timeout(self.interval_s)
            self._close_interval()

    def _close_interval(self) -> None:
        record = self._current
        record.end = self.env.now
        if self._degraded_since is not None:
            # Flush the open degraded stretch into this interval and
            # restart the clock so the next interval gets the rest.
            record.degraded_s += self.env.now - self._degraded_since
            self._degraded_since = self.env.now
        record.rep_ops_applied_cumulative = self.rep_ops_applied
        record.rep_ops_total = self.rep_ops_total
        if self.queue_length_probe is not None:
            record.queue_length_end = self.queue_length_probe()
        if self.node_state_probe is not None:
            census = self.node_state_probe()
            record.nodes_joining = census.get("joining", 0)
            record.nodes_active = census.get("active", 0)
            record.nodes_draining = census.get("draining", 0)
            record.nodes_retired = census.get("retired", 0)
        self.intervals.append(record)
        self._current = IntervalRecord(
            index=record.index + 1, start=self.env.now, end=self.env.now
        )
        for observer in list(self.interval_observers):
            observer(record)
