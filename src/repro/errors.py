"""Exception hierarchy for the SOAP reproduction."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library-specific errors."""


class ConfigError(ReproError):
    """An experiment or component configuration is invalid."""


class SimulationError(ReproError, ValueError):
    """The simulation kernel was misused (e.g. scheduling into the past).

    Subclasses :class:`ValueError` as well so callers that guarded the
    kernel's historical ``ValueError`` behaviour keep working.
    """


class MembershipError(ReproError):
    """An illegal node-lifecycle transition (e.g. retiring a node that
    still holds tuples, draining a node that is not ACTIVE)."""


class RoutingError(ReproError):
    """The query router could not resolve a key to a partition."""


class EpochError(ReproError):
    """Epoch/staging misuse: closed stage reused, expired epoch read,
    unbalanced pin/unpin, or a stage published against the wrong store."""


class StorageError(ReproError):
    """A storage-level operation failed (missing tuple, duplicate, ...)."""


class PartitioningError(ReproError):
    """A partition plan or repartition operation is inconsistent."""


class TransactionAborted(ReproError):
    """A transaction was aborted; ``reason`` explains why.

    Raised *inside* transaction executor processes; the transaction
    manager catches it, releases resources, and records the failure.

    ``cause`` is a stable machine-readable category (one per subclass)
    used by the aborts-by-cause metric; the free-text ``reason`` stays
    human-oriented.
    """

    cause = "other"

    def __init__(self, txn_id: int, reason: str) -> None:
        super().__init__(f"transaction {txn_id} aborted: {reason}")
        self.txn_id = txn_id
        self.reason = reason


class LockTimeout(TransactionAborted):
    """A lock wait exceeded the configured timeout."""

    cause = "lock_timeout"

    def __init__(self, txn_id: int, key: object, wait_s: float) -> None:
        TransactionAborted.__init__(
            self, txn_id, f"lock wait on {key!r} exceeded {wait_s}s"
        )
        self.key = key
        self.wait_s = wait_s


class DeadlockAbort(TransactionAborted):
    """The deadlock detector chose this transaction as the victim."""

    cause = "deadlock"

    def __init__(self, txn_id: int, cycle: tuple[int, ...]) -> None:
        TransactionAborted.__init__(
            self, txn_id, f"deadlock victim in cycle {cycle}"
        )
        self.cycle = cycle


class NodeDownError(TransactionAborted):
    """A transaction touched a crashed data node.

    Raised on the spot when a transaction tries to lock or work on a
    node that is down, and injected into lock waits and in-service jobs
    when a node crashes under in-flight transactions.  The transaction
    manager treats it as retryable: the victim is re-enqueued with
    exponential backoff until its attempt budget runs out.
    """

    cause = "node_down"

    def __init__(self, node_id: int, txn_id: int = -1) -> None:
        TransactionAborted.__init__(
            self, txn_id, f"node {node_id} is down"
        )
        self.node_id = node_id


class TwoPhaseAbort(TransactionAborted):
    """A 2PC round ended in abort (NO votes, unreachable participants)."""

    cause = "2pc_abort"

    def __init__(
        self,
        txn_id: int,
        no_votes: tuple[int, ...],
        down: tuple[int, ...] = (),
        timed_out: bool = False,
    ) -> None:
        detail = f"2PC participant(s) {no_votes} voted no"
        if down:
            detail += f" (down: {down})"
        if timed_out:
            detail += " [phase timeout]"
        TransactionAborted.__init__(self, txn_id, detail)
        self.no_votes = no_votes
        self.down = down
        self.timed_out = timed_out


class StaleRouteAbort(TransactionAborted):
    """A transaction's pinned-epoch route no longer matches the map.

    Raised (under the ``"abort"`` stale-route policy) when a concurrent
    migration publishes a new epoch between a transaction's routing
    decision and its lock grant or commit.  Retryable: the transaction
    manager re-enqueues the victim with backoff, and the fresh attempt
    pins the new epoch and routes correctly.
    """

    cause = "stale_route"

    def __init__(
        self, txn_id: int, key: object, partition: int
    ) -> None:
        TransactionAborted.__init__(
            self,
            txn_id,
            f"route for tuple {key!r} via partition {partition} is stale "
            f"(partition map epoch advanced)",
        )
        self.key = key
        self.partition = partition


class InjectedFault(TransactionAborted):
    """A configured failure-injection coin flip aborted the transaction."""

    cause = "injected"
