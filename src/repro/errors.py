"""Exception hierarchy for the SOAP reproduction."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library-specific errors."""


class ConfigError(ReproError):
    """An experiment or component configuration is invalid."""


class RoutingError(ReproError):
    """The query router could not resolve a key to a partition."""


class StorageError(ReproError):
    """A storage-level operation failed (missing tuple, duplicate, ...)."""


class PartitioningError(ReproError):
    """A partition plan or repartition operation is inconsistent."""


class TransactionAborted(ReproError):
    """A transaction was aborted; ``reason`` explains why.

    Raised *inside* transaction executor processes; the transaction
    manager catches it, releases resources, and records the failure.
    """

    def __init__(self, txn_id: int, reason: str) -> None:
        super().__init__(f"transaction {txn_id} aborted: {reason}")
        self.txn_id = txn_id
        self.reason = reason


class LockTimeout(TransactionAborted):
    """A lock wait exceeded the configured timeout."""

    def __init__(self, txn_id: int, key: object, wait_s: float) -> None:
        TransactionAborted.__init__(
            self, txn_id, f"lock wait on {key!r} exceeded {wait_s}s"
        )
        self.key = key
        self.wait_s = wait_s


class DeadlockAbort(TransactionAborted):
    """The deadlock detector chose this transaction as the victim."""

    def __init__(self, txn_id: int, cycle: tuple[int, ...]) -> None:
        TransactionAborted.__init__(
            self, txn_id, f"deadlock victim in cycle {cycle}"
        )
        self.cycle = cycle
