"""Two-phase commit across the participating data nodes.

The paper's prototype commits distributed transactions through Bitronix
(a JTA transaction manager) speaking XA two-phase commit to each
PostgreSQL node.  This module reproduces the protocol's *timing and
failure* behaviour on the simulated network:

* phase 1 — the coordinator sends PREPARE to every participant in
  parallel and waits for all votes (one network round trip each, plus a
  small prepare-work charge at the participant);
* phase 2 — on unanimous YES, COMMIT messages go out in parallel; any NO
  (or injected participant failure) turns phase 2 into ABORT.

A single-participant transaction skips the protocol entirely (one-phase
commit), which is exactly why collocating a transaction's tuples makes
it cheaper — the effect the paper's cost model captures as C vs 2C.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Generator, Optional, Sequence

from ..cluster.node import DataNode
from ..sim.events import Event
from ..sim.network import Network

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.environment import Environment


@dataclass(frozen=True)
class TwoPhaseCommitConfig:
    """Protocol parameters."""

    #: Work units a participant spends logging the prepare record.
    prepare_work_units: float = 0.0
    #: Probability that a participant votes NO (failure injection).
    vote_no_probability: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.vote_no_probability <= 1.0:
            raise ValueError(
                f"vote_no_probability must be in [0, 1]: "
                f"{self.vote_no_probability}"
            )
        if self.prepare_work_units < 0:
            raise ValueError("prepare work cannot be negative")


@dataclass
class CommitOutcome:
    """Result of a 2PC round."""

    committed: bool
    no_votes: tuple[int, ...] = ()


class TwoPhaseCommitCoordinator:
    """Runs 2PC rounds between a coordinator and participant nodes."""

    def __init__(
        self,
        env: "Environment",
        network: Network,
        config: Optional[TwoPhaseCommitConfig] = None,
        rng: Optional[random.Random] = None,
    ) -> None:
        self.env = env
        self.network = network
        self.config = config or TwoPhaseCommitConfig()
        self._rng = rng
        self.rounds = 0
        self.aborts = 0
        if self.config.vote_no_probability > 0 and rng is None:
            raise ValueError("failure injection requires an rng")

    def commit(
        self,
        coordinator_id: int,
        participants: Sequence[DataNode],
    ) -> Generator[Event, Any, CommitOutcome]:
        """Process generator running one 2PC round.

        Returns a :class:`CommitOutcome`; the caller applies or undoes
        the transaction's effects accordingly.
        """
        self.rounds += 1
        if len(participants) <= 1:
            # One-phase commit: no coordination needed.
            return CommitOutcome(committed=True)

        # Phase 1: PREPARE round trips in parallel.
        prepare_jobs = [
            self.env.process(self._prepare_one(coordinator_id, node))
            for node in participants
        ]
        votes_by_event = yield self.env.all_of(prepare_jobs)
        votes = [votes_by_event[job] for job in prepare_jobs]

        no_votes = tuple(
            node.node_id
            for node, vote in zip(participants, votes)
            if not vote
        )
        committed = not no_votes
        if not committed:
            self.aborts += 1

        # Phase 2: COMMIT/ABORT round trips in parallel.
        decision_jobs = [
            self.env.process(
                self.network.round_trip(coordinator_id, node.node_id)
            )
            for node in participants
        ]
        yield self.env.all_of(decision_jobs)
        return CommitOutcome(committed=committed, no_votes=no_votes)

    def _prepare_one(
        self, coordinator_id: int, node: DataNode
    ) -> Generator[Event, Any, bool]:
        """PREPARE round trip to one participant; returns its vote."""
        yield from self.network.transfer(coordinator_id, node.node_id)
        if self.config.prepare_work_units > 0:
            yield from node.work(self.config.prepare_work_units)
        yield from self.network.transfer(node.node_id, coordinator_id)
        if self.config.vote_no_probability > 0:
            assert self._rng is not None
            if self._rng.random() < self.config.vote_no_probability:
                return False
        return True
