"""Two-phase commit across the participating data nodes.

The paper's prototype commits distributed transactions through Bitronix
(a JTA transaction manager) speaking XA two-phase commit to each
PostgreSQL node.  This module reproduces the protocol's *timing and
failure* behaviour on the simulated network:

* phase 1 — the coordinator sends PREPARE to every participant in
  parallel and waits for all votes (one network round trip each, plus a
  small prepare-work charge at the participant);
* phase 2 — on unanimous YES, COMMIT messages go out in parallel; any NO
  (or injected participant failure) turns phase 2 into ABORT.

Failure handling follows presumed abort: a participant that is down, or
that fails mid-prepare because its node crashed, counts as a NO vote; an
optional per-phase timeout bounds how long the coordinator waits for
votes, with participants that have not answered by the deadline also
counted as NO.  Crashed participants are skipped in phase 2 — on
recovery they find no COMMIT record in their log and roll the
transaction back, which is exactly what the decision message would have
told them.

A single-participant transaction skips the protocol entirely (one-phase
commit), which is exactly why collocating a transaction's tuples makes
it cheaper — the effect the paper's cost model captures as C vs 2C.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Generator, Optional, Sequence

from ..cluster.node import DataNode
from ..errors import NodeDownError
from ..sim.events import Event
from ..sim.network import Network

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.environment import Environment


@dataclass(frozen=True)
class TwoPhaseCommitConfig:
    """Protocol parameters."""

    #: Work units a participant spends logging the prepare record.
    prepare_work_units: float = 0.0
    #: Probability that a participant votes NO (failure injection).
    vote_no_probability: float = 0.0
    #: Abort the round if phase 1 has not collected every vote within
    #: this many seconds (``None`` = wait for all votes indefinitely).
    phase_timeout_s: Optional[float] = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.vote_no_probability <= 1.0:
            raise ValueError(
                f"vote_no_probability must be in [0, 1]: "
                f"{self.vote_no_probability}"
            )
        if self.prepare_work_units < 0:
            raise ValueError("prepare work cannot be negative")
        if self.phase_timeout_s is not None and self.phase_timeout_s <= 0:
            raise ValueError("phase timeout must be positive or None")


@dataclass
class CommitOutcome:
    """Result of a 2PC round."""

    committed: bool
    no_votes: tuple[int, ...] = ()
    #: Participants that were unreachable (crashed) during the round.
    down: tuple[int, ...] = ()
    #: Whether the phase-1 vote collection hit ``phase_timeout_s``.
    timed_out: bool = False


class TwoPhaseCommitCoordinator:
    """Runs 2PC rounds between a coordinator and participant nodes."""

    def __init__(
        self,
        env: "Environment",
        network: Network,
        config: Optional[TwoPhaseCommitConfig] = None,
        rng: Optional[random.Random] = None,
    ) -> None:
        self.env = env
        self.network = network
        self.config = config or TwoPhaseCommitConfig()
        self._rng = rng
        self.rounds = 0
        self.aborts = 0
        self.down_participant_rounds = 0
        self.timeout_rounds = 0
        if self.config.vote_no_probability > 0 and rng is None:
            raise ValueError("failure injection requires an rng")

    def commit(
        self,
        coordinator_id: int,
        participants: Sequence[DataNode],
    ) -> Generator[Event, Any, CommitOutcome]:
        """Process generator running one 2PC round.

        Returns a :class:`CommitOutcome`; the caller applies or undoes
        the transaction's effects accordingly.
        """
        self.rounds += 1
        if len(participants) <= 1:
            # One-phase commit: no coordination needed — but not to a
            # corpse: a lone participant that crashed mid-transaction
            # cannot acknowledge the commit.
            if participants and participants[0].is_down:
                self.aborts += 1
                self.down_participant_rounds += 1
                down = (participants[0].node_id,)
                return CommitOutcome(committed=False, no_votes=down, down=down)
            return CommitOutcome(committed=True)

        # Phase 1: PREPARE round trips in parallel.
        prepare_jobs = [
            self.env.process(self._prepare_one(coordinator_id, node))
            for node in participants
        ]
        all_votes = self.env.all_of(prepare_jobs)
        timed_out = False
        if self.config.phase_timeout_s is None:
            yield all_votes
        else:
            timeout = self.env.timeout(self.config.phase_timeout_s)
            yield self.env.any_of([all_votes, timeout])
            timed_out = not all_votes.triggered
        # A job that has not answered by the deadline counts as NO
        # (presumed abort); it keeps running harmlessly in the background.
        votes = [
            bool(job.value) if job.triggered and job.ok else False
            for job in prepare_jobs
        ]

        no_votes = tuple(
            node.node_id
            for node, vote in zip(participants, votes)
            if not vote
        )
        down = tuple(
            node.node_id for node in participants if node.is_down
        )
        committed = not no_votes
        if not committed:
            self.aborts += 1
            if down:
                self.down_participant_rounds += 1
        if timed_out:
            self.timeout_rounds += 1

        # Phase 2: COMMIT/ABORT round trips in parallel.  Crashed
        # participants are skipped — there is nobody to answer; their
        # recovery rolls the transaction back from the log.
        decision_jobs = [
            self.env.process(
                self.network.round_trip(coordinator_id, node.node_id)
            )
            for node in participants
            if not node.is_down
        ]
        if decision_jobs:
            yield self.env.all_of(decision_jobs)
        return CommitOutcome(
            committed=committed,
            no_votes=no_votes,
            down=down,
            timed_out=timed_out,
        )

    def _prepare_one(
        self, coordinator_id: int, node: DataNode
    ) -> Generator[Event, Any, bool]:
        """PREPARE round trip to one participant; returns its vote.

        An unreachable participant — already down when PREPARE is sent,
        or crashing while serving the prepare work — votes NO rather
        than raising, so one dead node cannot blow up the whole round.
        """
        if node.is_down:
            return False
        try:
            yield from self.network.transfer(coordinator_id, node.node_id)
            if self.config.prepare_work_units > 0:
                yield from node.work(self.config.prepare_work_units)
            yield from self.network.transfer(node.node_id, coordinator_id)
        except NodeDownError:
            return False
        if node.is_down:
            return False
        if self.config.vote_no_probability > 0:
            assert self._rng is not None
            if self._rng.random() < self.config.vote_no_probability:
                return False
        return True
