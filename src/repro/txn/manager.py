"""The transaction manager: global ids, submission, dispatch, retry.

Mirrors the paper's TM (§2.1): every submitted transaction receives a
global unique id, enters the priority processing queue, and is dispatched
when a connection slot frees up.  The TM coordinates the transaction's
life cycle (the executor implements 2PL + 2PC) and notifies the
repartition scheduler of arrivals and completions, which is where the
Piggyback strategy hooks in.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from itertools import count
from typing import TYPE_CHECKING, Any, Generator, Optional, Protocol

from ..errors import ConfigError
from ..partitioning.operations import RepartitionOperation
from ..routing.query import Query
from ..sim.events import Event
from ..sim.resources import Resource
from ..types import Priority, TxnKind, TxnStatus
from .executor import TransactionExecutor
from .queue import ProcessingQueue
from .transaction import Transaction

if TYPE_CHECKING:  # pragma: no cover
    from ..metrics.collectors import MetricsCollector
    from ..sim.environment import Environment


class SchedulerHook(Protocol):
    """The surface the repartition scheduler exposes to the TM."""

    def on_submit(self, txn: Transaction) -> None:
        """Called for every normal transaction entering the queue."""

    def on_finished(self, txn: Transaction, success: bool) -> None:
        """Called when any transaction commits or aborts."""


class NullScheduler:
    """Default hook used when no repartitioning is active."""

    def on_submit(self, txn: Transaction) -> None:
        """No-op."""

    def on_finished(self, txn: Transaction, success: bool) -> None:
        """No-op."""


#: Abort reason used for transactions that expired waiting in the queue.
QUEUE_TIMEOUT_REASON = "transaction deadline exceeded in queue"

#: Abort *cause* label for the same (no exception type is involved —
#: the reaper aborts queued transactions without raising).
QUEUE_TIMEOUT_CAUSE = "queue_timeout"


@dataclass(frozen=True)
class TransactionManagerConfig:
    """Dispatch and retry policy."""

    #: Simultaneously executing transactions (cluster-wide connection cap).
    max_concurrent: int = 50
    #: Total attempts (first + retries) for an aborted normal transaction.
    max_attempts: int = 3
    #: Base delay before a retry is resubmitted (attempt 2 waits this
    #: long; each further attempt multiplies by ``retry_backoff_factor``).
    retry_delay_s: float = 0.1
    #: Exponential backoff multiplier applied per failed attempt.
    retry_backoff_factor: float = 2.0
    #: Ceiling on the (pre-jitter) retry delay.
    max_retry_delay_s: float = 10.0
    #: Random spread added to each retry delay: the actual delay is
    #: multiplied by ``1 + U(0, retry_jitter)``.  Jitter decorrelates the
    #: retry stampede after a node crash; it requires the manager to be
    #: given an ``rng`` so runs stay reproducible.
    retry_jitter: float = 0.0
    #: Whether aborted repartition transactions are resubmitted until done.
    retry_repartition: bool = True
    #: Client-side transaction deadline: a *normal* transaction that has
    #: already been in the system longer than this when the dispatcher
    #: picks it up is aborted without executing (models the JTA/Bitronix
    #: transaction timeout of the paper's prototype).  ``None`` disables.
    queue_timeout_s: Optional[float] = None
    #: LOW-priority (AfterAll-style) transactions dispatch only while the
    #: system is *idle*: at most this fraction of the connection slots in
    #: use.  This implements the paper's "scheduled when the system is
    #: idle" semantics rather than merely "queue momentarily empty".
    low_priority_idle_fraction: float = 0.1
    #: How often the dispatcher re-checks idleness while holding back a
    #: LOW-priority transaction.
    idle_poll_s: float = 0.5
    #: How often the reaper scans the queue for transactions past their
    #: deadline (so clients give up *at* the timeout, not whenever the
    #: dispatcher would finally have served them).
    reaper_period_s: float = 1.0

    def __post_init__(self) -> None:
        if self.max_concurrent < 1:
            raise ConfigError("max_concurrent must be >= 1")
        if self.max_attempts < 1:
            raise ConfigError("max_attempts must be >= 1")
        if self.retry_delay_s < 0:
            raise ConfigError("retry delay cannot be negative")
        if self.retry_backoff_factor < 1.0:
            raise ConfigError("retry backoff factor must be >= 1")
        if self.max_retry_delay_s < self.retry_delay_s:
            raise ConfigError("max retry delay cannot undercut the base delay")
        if self.retry_jitter < 0:
            raise ConfigError("retry jitter cannot be negative")
        if self.queue_timeout_s is not None and self.queue_timeout_s <= 0:
            raise ConfigError("queue timeout must be positive or None")
        if not 0.0 <= self.low_priority_idle_fraction <= 1.0:
            raise ConfigError("idle fraction must be in [0, 1]")
        if self.idle_poll_s <= 0:
            raise ConfigError("idle poll period must be positive")


class TransactionManager:
    """Creates, queues, dispatches, and retries transactions."""

    def __init__(
        self,
        env: "Environment",
        executor: TransactionExecutor,
        metrics: Optional["MetricsCollector"] = None,
        config: Optional[TransactionManagerConfig] = None,
        rng: Optional[random.Random] = None,
    ) -> None:
        self.env = env
        self.executor = executor
        self.metrics = metrics
        self.config = config or TransactionManagerConfig()
        if self.config.retry_jitter > 0 and rng is None:
            raise ConfigError("retry jitter requires an rng")
        self._retry_rng = rng
        self.queue = ProcessingQueue(env)
        self.scheduler: SchedulerHook = NullScheduler()
        self._ids = count(1)
        self._slots = Resource(env, self.config.max_concurrent)
        self._dispatcher = env.process(self._dispatch_loop())
        if self.config.queue_timeout_s is not None:
            self._reaper = env.process(self._reaper_loop())
        self.in_flight = 0
        self.total_submitted = 0
        self.total_committed = 0
        self.total_aborted = 0
        self.total_retries = 0

    # ------------------------------------------------------------------
    # Transaction factories
    # ------------------------------------------------------------------
    def next_id(self) -> int:
        """Allocate a global unique transaction id."""
        return next(self._ids)

    def create_normal(
        self, queries: list[Query], type_id: Optional[int] = None
    ) -> Transaction:
        """Build a normal transaction (not yet submitted)."""
        return Transaction(
            txn_id=self.next_id(),
            kind=TxnKind.NORMAL,
            queries=list(queries),
            type_id=type_id,
            created_at=self.env.now,
        )

    def create_repartition(
        self,
        ops: list[RepartitionOperation],
        type_id: Optional[int] = None,
        benefit: float = 0.0,
        cost: float = 0.0,
        benefit_density: float = 0.0,
    ) -> Transaction:
        """Build a repartition transaction (not yet submitted)."""
        return Transaction(
            txn_id=self.next_id(),
            kind=TxnKind.REPARTITION,
            rep_ops=list(ops),
            type_id=type_id,
            benefit=benefit,
            cost=cost,
            benefit_density=benefit_density,
            created_at=self.env.now,
        )

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(
        self, txn: Transaction, priority: Optional[Priority] = None
    ) -> None:
        """Queue a transaction for execution."""
        if priority is not None:
            txn.priority = priority
        txn.status = TxnStatus.QUEUED
        txn.submitted_at = self.env.now
        if txn.first_submitted_at is None:
            txn.first_submitted_at = self.env.now
        txn.attempts += 1
        if txn.is_normal:
            # Give the repartition scheduler its piggyback opportunity
            # before the transaction becomes visible to the dispatcher.
            self.scheduler.on_submit(txn)
        self.total_submitted += 1
        if self.metrics is not None:
            self.metrics.record_submitted(txn)
        self.queue.put(txn)

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def _idle_enough_for_low_priority(self) -> bool:
        threshold = int(
            self.config.max_concurrent * self.config.low_priority_idle_fraction
        )
        return self.in_flight <= threshold

    def _dispatch_loop(self) -> Generator[Event, Any, None]:
        while True:
            if len(self.queue) == 0:
                yield self.queue.wait_nonempty()
                continue
            head = self.queue.peek()
            if (
                head is not None
                and head.priority is Priority.LOW
                and not self._idle_enough_for_low_priority()
            ):
                # AfterAll semantics: background repartition work waits
                # for genuine idleness, not just an empty queue.
                yield self.env.timeout(self.config.idle_poll_s)
                continue
            slot = self._slots.request()
            yield slot
            txn = self.queue.pop()
            if txn is None:
                # The queued item was claimed (piggyback) meanwhile.
                self._slots.release(slot)
                continue
            if (
                txn.priority is Priority.LOW
                and not self._idle_enough_for_low_priority()
            ):
                # Idleness evaporated while we waited for the slot; put
                # the transaction back and re-check shortly.
                self.queue.put(txn)
                self._slots.release(slot)
                yield self.env.timeout(self.config.idle_poll_s)
                continue
            self.env.process(self._run(txn, slot))

    def _reaper_loop(self) -> Generator[Event, Any, None]:
        """Abort queued normal transactions the moment they expire."""
        while True:
            yield self.env.timeout(self.config.reaper_period_s)
            expired = [
                txn for txn in self.queue.waiting() if self._expired(txn)
            ]
            for txn in expired:
                if self.queue.remove(txn.txn_id) is None:
                    continue  # dispatched concurrently
                self._abort_expired(txn)

    def _abort_expired(self, txn: Transaction) -> None:
        txn.status = TxnStatus.ABORTED
        txn.abort_reason = QUEUE_TIMEOUT_REASON
        txn.abort_cause = QUEUE_TIMEOUT_CAUSE
        txn.finished_at = self.env.now
        self.total_aborted += 1
        if self.metrics is not None:
            self.metrics.record_aborted(txn)
        self.scheduler.on_finished(txn, False)

    def _expired(self, txn: Transaction) -> bool:
        timeout = self.config.queue_timeout_s
        if timeout is None or not txn.is_normal:
            return False
        assert txn.first_submitted_at is not None
        return self.env.now - txn.first_submitted_at > timeout

    def _run(self, txn: Transaction, slot: Any) -> Generator[Event, Any, None]:
        if self._expired(txn):
            # Normally the reaper catches these; this guards the window
            # between two reaper scans.
            self._slots.release(slot)
            self._abort_expired(txn)
            return
            yield  # pragma: no cover - keeps this a generator function
        self.in_flight += 1
        try:
            success = yield self.env.process(self.executor.execute(txn))
        finally:
            self.in_flight -= 1
            self._slots.release(slot)
        if success:
            self.total_committed += 1
            if self.metrics is not None:
                self.metrics.record_committed(txn)
            self.scheduler.on_finished(txn, True)
        else:
            self.total_aborted += 1
            if self.metrics is not None:
                self.metrics.record_aborted(txn)
            self.scheduler.on_finished(txn, False)
            self._maybe_retry(txn)

    # ------------------------------------------------------------------
    # Retry
    # ------------------------------------------------------------------
    def _maybe_retry(self, txn: Transaction) -> None:
        if txn.is_repartition:
            if self.config.retry_repartition:
                self.env.process(self._resubmit_later(txn))
            return
        if txn.abort_reason == QUEUE_TIMEOUT_REASON:
            return  # the client has given up; retrying helps nobody
        if txn.attempts < self.config.max_attempts:
            self.env.process(self._resubmit_later(txn))

    def _retry_delay(self, txn: Transaction) -> float:
        """Exponential backoff with optional jitter for attempt N+1.

        ``txn.attempts`` failed attempts have happened; the first retry
        waits the base delay, each further one doubles (by default) up
        to ``max_retry_delay_s``.  Jitter spreads simultaneous victims
        of one crash so they do not re-arrive in lockstep.
        """
        cfg = self.config
        exponent = max(0, txn.attempts - 1)
        delay = min(
            cfg.max_retry_delay_s,
            cfg.retry_delay_s * cfg.retry_backoff_factor**exponent,
        )
        if cfg.retry_jitter > 0:
            assert self._retry_rng is not None
            delay *= 1.0 + cfg.retry_jitter * self._retry_rng.random()
        return delay

    def _resubmit_later(
        self, txn: Transaction
    ) -> Generator[Event, Any, None]:
        yield self.env.timeout(self._retry_delay(txn))
        self.total_retries += 1
        if self.metrics is not None:
            self.metrics.record_retry(txn)
        txn.status = TxnStatus.CREATED
        txn.abort_reason = None
        txn.abort_cause = None
        txn.finished_at = None
        self.submit(txn)
