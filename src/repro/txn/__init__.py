"""Transaction layer: transactions, queue, 2PC, executor, manager."""

from .executor import COORDINATOR_NODE_ID, ExecutorConfig, TransactionExecutor
from .manager import (
    NullScheduler,
    TransactionManager,
    TransactionManagerConfig,
)
from .queue import ProcessingQueue
from .transaction import Transaction
from .two_phase_commit import (
    CommitOutcome,
    TwoPhaseCommitConfig,
    TwoPhaseCommitCoordinator,
)

__all__ = [
    "COORDINATOR_NODE_ID",
    "CommitOutcome",
    "ExecutorConfig",
    "NullScheduler",
    "ProcessingQueue",
    "Transaction",
    "TransactionExecutor",
    "TransactionManager",
    "TransactionManagerConfig",
    "TwoPhaseCommitConfig",
    "TwoPhaseCommitCoordinator",
]
