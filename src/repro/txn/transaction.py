"""Transaction objects: normal OLTP transactions and repartition transactions.

A normal transaction carries queries (5 single-tuple accesses in the
paper's workload).  A repartition transaction carries repartition
operations.  With the piggyback strategy a normal transaction may carry
*both*: the repartitioner injects the operations of a pending repartition
transaction into it (Algorithm 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..partitioning.operations import RepartitionOperation
from ..routing.query import Query
from ..types import Priority, TxnId, TxnKind, TxnStatus


@dataclass
class Transaction:
    """A unit of work flowing through the transaction manager."""

    txn_id: TxnId
    kind: TxnKind
    queries: list[Query] = field(default_factory=list)
    rep_ops: list[RepartitionOperation] = field(default_factory=list)
    priority: Priority = Priority.NORMAL
    #: Workload type id (normal txns) / benefiting type id (repartition txns).
    type_id: Optional[int] = None
    status: TxnStatus = TxnStatus.CREATED

    # Repartition-transaction metadata filled by Algorithm 1.
    benefit: float = 0.0
    cost: float = 0.0
    benefit_density: float = 0.0

    # Piggyback bookkeeping: id of the repartition transaction whose ops
    # this (normal) transaction is carrying, if any.
    carrying_rep_txn: Optional[TxnId] = None

    # Timing (virtual seconds); ``first_submitted_at`` survives resubmits
    # so latency spans the whole retry chain, as a user would perceive it.
    created_at: float = 0.0
    first_submitted_at: Optional[float] = None
    submitted_at: Optional[float] = None
    started_at: Optional[float] = None
    finished_at: Optional[float] = None

    #: Map epoch pinned at admission of the current attempt (set by the
    #: executor); routing staleness is judged against this snapshot.
    pinned_epoch_id: Optional[int] = None

    attempts: int = 0
    abort_reason: Optional[str] = None
    #: Machine-readable abort category (``TransactionAborted.cause``)
    #: for the aborts-by-cause metric; cleared on resubmit.
    abort_cause: Optional[str] = None

    # Work-unit accounting (filled by the executor) for the PV metric.
    normal_cost_units: float = 0.0
    rep_cost_units: float = 0.0

    def __post_init__(self) -> None:
        if self.kind is TxnKind.REPARTITION and self.queries:
            raise ValueError(
                f"repartition transaction {self.txn_id} cannot carry queries"
            )
        if self.kind is TxnKind.REPARTITION and not self.rep_ops:
            raise ValueError(
                f"repartition transaction {self.txn_id} has no operations"
            )

    # ------------------------------------------------------------------
    # Derived properties
    # ------------------------------------------------------------------
    @property
    def is_normal(self) -> bool:
        """Whether this is a client (non-repartition) transaction."""
        return self.kind is TxnKind.NORMAL

    @property
    def is_repartition(self) -> bool:
        """Whether this is a pure repartition transaction."""
        return self.kind is TxnKind.REPARTITION

    @property
    def is_piggybacked(self) -> bool:
        """Whether a normal transaction carries repartition operations."""
        return self.is_normal and bool(self.rep_ops)

    @property
    def latency(self) -> Optional[float]:
        """Submission-to-finish latency, once finished."""
        if self.finished_at is None or self.first_submitted_at is None:
            return None
        return self.finished_at - self.first_submitted_at

    @property
    def committed(self) -> bool:
        """Whether the transaction committed."""
        return self.status is TxnStatus.COMMITTED

    # ------------------------------------------------------------------
    # Piggyback helpers (Algorithm 2)
    # ------------------------------------------------------------------
    def attach_rep_ops(
        self, rep_txn_id: TxnId, ops: list[RepartitionOperation]
    ) -> None:
        """Inject a repartition transaction's operations into this one."""
        if not self.is_normal:
            raise ValueError("only normal transactions can carry piggybacks")
        if self.carrying_rep_txn is not None:
            raise ValueError(
                f"transaction {self.txn_id} already carries repartition "
                f"transaction {self.carrying_rep_txn}"
            )
        self.carrying_rep_txn = rep_txn_id
        self.rep_ops = list(ops)

    def strip_rep_ops(self) -> list[RepartitionOperation]:
        """Remove piggybacked operations (carrier failed; Algorithm 2 l.14)."""
        ops, self.rep_ops = self.rep_ops, []
        self.carrying_rep_txn = None
        return ops

    def __repr__(self) -> str:
        tag = self.kind.value
        if self.is_piggybacked:
            tag = "piggybacked"
        return (
            f"<Txn {self.txn_id} {tag} prio={self.priority.name} "
            f"status={self.status.value}>"
        )
