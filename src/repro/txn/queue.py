"""The processing queue: priority scheduling with FIFO tie-breaking.

Paper §2.1: "All the submitted transactions will be associated with a
scheduling priority and then put into a processing queue, where higher-
priority transactions will be executed first, while the FIFO policy will
be applied to break the tie."

The queue additionally supports *removal* and *re-prioritisation* of
waiting transactions, which the Feedback scheduler uses to promote
repartition transactions and the Piggyback scheduler uses to claim a
queued repartition transaction for injection into a carrier.
"""

from __future__ import annotations

import heapq
from itertools import count
from typing import TYPE_CHECKING, Optional

from ..sim.events import Event
from ..types import Priority, TxnId
from .transaction import Transaction

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.environment import Environment


class ProcessingQueue:
    """Priority + FIFO queue of transactions awaiting dispatch."""

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self._heap: list[tuple[int, int, TxnId]] = []
        self._entries: dict[TxnId, Transaction] = {}
        #: Sequence number of each transaction's *live* heap entry.  A
        #: heap entry whose sequence no longer matches is stale (the txn
        #: was removed, or removed and re-inserted — e.g. demoted by
        #: ``reprioritise``) and must be skipped; matching on txn id
        #: alone would dequeue a demoted transaction at its old
        #: priority through the abandoned entry.
        self._live_seq: dict[TxnId, int] = {}
        self._seq = count()
        self._waiters: list[Event] = []

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, txn_id: TxnId) -> bool:
        return txn_id in self._entries

    # ------------------------------------------------------------------
    # Producers
    # ------------------------------------------------------------------
    def put(self, txn: Transaction, priority: Optional[Priority] = None) -> None:
        """Enqueue ``txn`` (at its own priority unless overridden)."""
        if txn.txn_id in self._entries:
            raise ValueError(f"transaction {txn.txn_id} is already queued")
        if priority is not None:
            txn.priority = priority
        seq = next(self._seq)
        heapq.heappush(self._heap, (int(txn.priority), seq, txn.txn_id))
        self._entries[txn.txn_id] = txn
        self._live_seq[txn.txn_id] = seq
        self._wake_waiters()

    # ------------------------------------------------------------------
    # Consumers
    # ------------------------------------------------------------------
    def pop(self) -> Optional[Transaction]:
        """Dequeue the highest-priority (then oldest) transaction."""
        while self._heap:
            _prio, seq, txn_id = heapq.heappop(self._heap)
            if self._live_seq.get(txn_id) != seq:
                continue  # stale entry (removed or re-prioritised)
            del self._live_seq[txn_id]
            return self._entries.pop(txn_id)
        return None

    def peek(self) -> Optional[Transaction]:
        """The transaction :meth:`pop` would return, without removing it."""
        while self._heap:
            _prio, seq, txn_id = self._heap[0]
            if self._live_seq.get(txn_id) == seq:
                return self._entries[txn_id]
            heapq.heappop(self._heap)  # discard stale entry
        return None

    def wait_nonempty(self) -> Event:
        """Event that succeeds once the queue holds at least one item."""
        event = Event(self.env)
        if self._entries:
            event.succeed()
        else:
            self._waiters.append(event)
        return event

    # ------------------------------------------------------------------
    # Surgical operations (Feedback promotion, Piggyback claiming)
    # ------------------------------------------------------------------
    def remove(self, txn_id: TxnId) -> Optional[Transaction]:
        """Withdraw a waiting transaction; ``None`` if it is not queued.

        The heap entry is left behind and skipped lazily by :meth:`pop`
        (its recorded sequence number no longer matches).
        """
        txn = self._entries.pop(txn_id, None)
        if txn is not None:
            self._live_seq.pop(txn_id, None)
        return txn

    def reprioritise(self, txn_id: TxnId, priority: Priority) -> bool:
        """Move a waiting transaction to a different priority level."""
        txn = self.remove(txn_id)
        if txn is None:
            return False
        self.put(txn, priority)
        return True

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def waiting(self) -> list[Transaction]:
        """Snapshot of every waiting transaction (undefined order)."""
        return list(self._entries.values())

    def counts_by_priority(self) -> dict[Priority, int]:
        """How many waiting transactions sit at each priority level."""
        counts = {priority: 0 for priority in Priority}
        for txn in self._entries.values():
            counts[txn.priority] += 1
        return counts

    def waiting_normal_work(self) -> int:
        """Number of queued *normal* transactions (queue-pressure signal)."""
        return sum(1 for t in self._entries.values() if t.is_normal)

    def _wake_waiters(self) -> None:
        waiters, self._waiters = self._waiters, []
        for event in waiters:
            if not event.triggered:
                event.succeed()
