"""Transaction execution: locking, work, repartition ops, commit, undo.

The executor turns a :class:`~repro.txn.transaction.Transaction` into a
simulation process implementing strict two-phase locking:

1. route each query, acquire the tuple lock (S for reads, X for writes)
   at the owning node, and charge the query's work to that node;
2. execute any repartition operations the transaction carries (its own,
   if it is a repartition transaction, or piggybacked ones) — locking at
   source *and* destination, charging copy work, and moving bytes across
   the network;
3. run two-phase commit when more than one partition participated;
4. on commit, apply deferred effects (tuple deletions at migration
   sources, partition-map updates) and release all locks;
5. on abort (deadlock, lock timeout, injected failure, 2PC NO vote),
   undo every applied write and inserted replica, release locks, and
   report the failure.

Cost model hookup: a transaction whose queries span one partition is
charged ``C`` in total, one spanning several is charged ``2·C`` (§3.1) —
the extra work is exactly the overhead the repartition plan removes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Generator, Optional

from ..cluster.cluster import Cluster
from ..cluster.node import DataNode
from ..errors import (
    InjectedFault,
    LockTimeout,
    NodeDownError,
    StaleRouteAbort,
    TransactionAborted,
    TwoPhaseAbort,
)
from ..locking.lock_manager import LockMode
from ..partitioning.cost_model import CostModel
from ..partitioning.operations import (
    CreateReplica,
    DeleteReplica,
    Migrate,
    RepartitionOperation,
)
from ..routing.epoch import EpochStage, MapEpoch
from ..routing.query import Query
from ..routing.router import QueryRouter
from ..sim.events import Event
from ..types import AccessMode, PartitionId, Priority, TxnStatus
from .transaction import Transaction
from .two_phase_commit import TwoPhaseCommitCoordinator

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.environment import Environment

#: Node id used for the coordinator (the query-router/TM machine).
COORDINATOR_NODE_ID = -1


@dataclass(frozen=True)
class ExecutorConfig:
    """Execution-time knobs."""

    #: Abort a transaction whose lock wait exceeds this (None = wait forever).
    lock_timeout_s: Optional[float] = 5.0
    #: Probability that executing one repartition operation fails
    #: (injected fault, e.g. the destination rejecting the insert).
    rep_op_failure_probability: float = 0.0
    #: Isolation level.  The paper's prototype runs PostgreSQL at
    #: ``"read_committed"`` (reads do not hold tuple locks; only writes
    #: take exclusive locks until commit).  ``"serializable"`` makes
    #: reads hold shared locks to commit (strict 2PL) — the paper notes
    #: this "will decrease the system concurrency".
    isolation: str = "read_committed"
    #: Fixed work charged once per transaction (begin/commit processing
    #: at the TM).  §3.1's granularity trade-off: per-op repartition
    #: transactions multiply this overhead, one giant transaction
    #: amortises it but monopolises locks.
    per_txn_overhead_units: float = 0.0
    #: What to do when a concurrent migration invalidates a route between
    #: the routing decision and the lock grant (or, for read-committed
    #: reads, the commit):
    #:
    #: * ``"follow"`` (default) — re-route and forward to the tuple's
    #:   new home, the paper-faithful behaviour;
    #: * ``"abort"`` — route against the transaction's pinned epoch and
    #:   abort with the retryable ``stale_route`` cause, surfacing map
    #:   churn to the retry/backoff machinery instead of hiding it.
    stale_route_policy: str = "follow"

    def __post_init__(self) -> None:
        if self.lock_timeout_s is not None and self.lock_timeout_s <= 0:
            raise ValueError("lock timeout must be positive or None")
        if not 0.0 <= self.rep_op_failure_probability <= 1.0:
            raise ValueError("rep-op failure probability must be in [0, 1]")
        if self.isolation not in ("read_committed", "serializable"):
            raise ValueError(f"unknown isolation level {self.isolation!r}")
        if self.per_txn_overhead_units < 0:
            raise ValueError("per-transaction overhead cannot be negative")
        if self.stale_route_policy not in ("follow", "abort"):
            raise ValueError(
                f"unknown stale-route policy {self.stale_route_policy!r}"
            )


class _Journal:
    """Per-transaction WAL journaling across the nodes it touches.

    Every method is a no-op for nodes without a WAL attached, so the
    executor pays nothing unless durability logging is enabled.
    """

    def __init__(self, txn: Transaction) -> None:
        self.txn = txn
        self._begun: set[DataNode] = set()

    def _ensure_begun(self, node: DataNode) -> bool:
        if node.wal is None:
            return False
        if node not in self._begun:
            node.wal.log_begin(self.txn.txn_id)
            self._begun.add(node)
        return True

    def write(self, node: DataNode, key: int, value: int) -> None:
        if self._ensure_begun(node):
            node.wal.log_write(self.txn.txn_id, key, value)

    def insert(self, node: DataNode, record) -> None:
        if self._ensure_begun(node):
            node.wal.log_insert(self.txn.txn_id, record)

    def delete(self, node: DataNode, key: int) -> None:
        if self._ensure_begun(node):
            node.wal.log_delete(self.txn.txn_id, key)

    def close(self, committed: bool) -> None:
        # Sorted for determinism: set iteration order over nodes would
        # otherwise depend on object identity.
        for node in sorted(self._begun, key=lambda n: n.node_id):
            assert node.wal is not None
            if committed:
                node.wal.log_commit(self.txn.txn_id)
            else:
                node.wal.log_abort(self.txn.txn_id)
        self._begun.clear()


class TransactionExecutor:
    """Executes transactions against the simulated cluster."""

    def __init__(
        self,
        env: "Environment",
        cluster: Cluster,
        router: QueryRouter,
        cost_model: CostModel,
        two_phase_commit: TwoPhaseCommitCoordinator,
        config: Optional[ExecutorConfig] = None,
        rng: Optional[random.Random] = None,
    ) -> None:
        self.env = env
        self.cluster = cluster
        self.router = router
        self.cost_model = cost_model
        self.twopc = two_phase_commit
        self.config = config or ExecutorConfig()
        self._rng = rng
        if self.config.rep_op_failure_probability > 0 and rng is None:
            raise ValueError("rep-op failure injection requires an rng")
        #: Called with each repartition operation the moment it commits.
        self.on_rep_op_applied: Optional[
            Callable[[RepartitionOperation, Transaction], None]
        ] = None

    # ------------------------------------------------------------------
    # Main entry point
    # ------------------------------------------------------------------
    def execute(self, txn: Transaction) -> Generator[Event, Any, bool]:
        """Process generator: run ``txn`` to commit or abort.

        Returns ``True`` on commit, ``False`` on abort (the abort reason
        is recorded on the transaction).
        """
        txn.started_at = self.env.now
        txn.status = TxnStatus.RUNNING
        touched_nodes: set[DataNode] = set()
        undo_log: list[tuple[str, DataNode, int, int, int]] = []
        journal = _Journal(txn)
        store = self.router.store
        # Pin the map epoch the transaction was admitted under: routing
        # decisions can be validated (and, under the "abort" policy,
        # enforced) against this snapshot for the whole attempt.
        pinned = store.pin()
        txn.pinned_epoch_id = pinned.epoch_id
        stage: Optional[EpochStage] = None
        #: (key, partition) pairs reads actually used, for the commit-time
        #: stale check under the "abort" policy.
        read_routes: list[tuple[int, PartitionId]] = []

        try:
            query_partitions = self.router.partitions_for(
                txn.queries, self._routing_epoch(pinned)
            )
            effective_ops = self._effective_ops(txn)
            if effective_ops:
                # All map changes of this transaction accumulate in one
                # stage, published atomically at commit.
                stage = store.begin_stage(owner=txn.txn_id)
            op_partitions: set[PartitionId] = set()
            for op in effective_ops:
                op_partitions.update(self._op_partitions(op))
            all_partitions = set(query_partitions) | op_partitions

            per_query_work = 0.0
            if txn.queries:
                total = self.cost_model.txn_cost(max(1, len(query_partitions)))
                per_query_work = total / len(txn.queries)

            if self.config.per_txn_overhead_units > 0 and all_partitions:
                overhead_node = self.cluster.node_for_partition(
                    min(all_partitions)
                )
                touched_nodes.add(overhead_node)
                yield from overhead_node.work(
                    self.config.per_txn_overhead_units
                )
                if txn.is_normal:
                    txn.normal_cost_units += self.config.per_txn_overhead_units
                else:
                    txn.rep_cost_units += self.config.per_txn_overhead_units

            for query in txn.queries:
                yield from self._execute_query(
                    txn, query, per_query_work, touched_nodes, undo_log,
                    journal, pinned, read_routes,
                )

            for op in effective_ops:
                assert stage is not None
                yield from self._execute_rep_op(
                    txn, op, stage, touched_nodes, undo_log, journal
                )

            # Commit across the partitions actually touched (re-routing
            # after concurrent migrations can differ from the initial
            # estimate in ``all_partitions``).
            commit_partitions = {node.partition_id for node in touched_nodes}
            commit_partitions |= all_partitions
            if len(commit_partitions) > 1:
                participants = [
                    self.cluster.node_for_partition(pid)
                    for pid in sorted(commit_partitions)
                ]
                outcome = yield self.env.process(
                    self.twopc.commit(COORDINATOR_NODE_ID, participants)
                )
                if not outcome.committed:
                    if outcome.down:
                        raise NodeDownError(outcome.down[0], txn.txn_id)
                    raise TwoPhaseAbort(
                        txn.txn_id,
                        outcome.no_votes,
                        down=outcome.down,
                        timed_out=outcome.timed_out,
                    )

            # Last down-check before effects become visible: a node may
            # have crashed while this transaction was busy elsewhere (or
            # right after voting YES).  No COMMIT record has been logged
            # yet, so aborting here is still safe on every node.
            self._check_touched_alive(txn, touched_nodes)

            # Commit-time stale check: under read_committed a read lock
            # is released early, so a migration may have invalidated the
            # partition the read used while this transaction ran.
            if self.config.stale_route_policy == "abort":
                current = store.current_epoch
                for key, pid in read_routes:
                    if pid not in current.replicas_of(key):
                        raise StaleRouteAbort(txn.txn_id, key, pid)

            self._apply_commit_effects(txn, effective_ops, stage, journal)
            journal.close(committed=True)
            txn.status = TxnStatus.COMMITTED
            txn.finished_at = self.env.now
            return True

        except TransactionAborted as abort:
            self._undo(undo_log)
            journal.close(committed=False)
            txn.status = TxnStatus.ABORTED
            txn.abort_reason = abort.reason
            txn.abort_cause = abort.cause
            txn.finished_at = self.env.now
            return False
        finally:
            # An unpublished stage (abort, crash, injected fault) is
            # dropped cleanly: its MOVING marks vanish and the published
            # map never sees it.
            if stage is not None and not stage.published:
                store.discard(stage)
            store.unpin(pinned)
            # Release in node-id order: iterating the set directly would
            # make lock-grant order (and thus the whole run) depend on
            # object identity, breaking determinism across runs.
            for node in sorted(touched_nodes, key=lambda n: n.node_id):
                node.locks.release_all(txn.txn_id)

    # ------------------------------------------------------------------
    # Query execution
    # ------------------------------------------------------------------
    def _routing_epoch(self, pinned: MapEpoch) -> Optional[MapEpoch]:
        """The epoch queries route against (None = always-current).

        The "abort" policy routes from the transaction's pinned snapshot
        so concurrent map churn surfaces as a stale-route abort; the
        "follow" policy routes from the live current epoch and forwards.
        """
        if self.config.stale_route_policy == "abort":
            return pinned
        return None

    def _execute_query(
        self,
        txn: Transaction,
        query: Query,
        work_units: float,
        touched_nodes: set[DataNode],
        undo_log: list[tuple[str, DataNode, int, int, int]],
        journal: _Journal,
        pinned: MapEpoch,
        read_routes: list[tuple[int, PartitionId]],
    ) -> Generator[Event, Any, None]:
        abort_on_stale = self.config.stale_route_policy == "abort"
        routing_epoch = self._routing_epoch(pinned)
        if query.mode is AccessMode.READ:
            # Route, lock, then re-validate: a concurrent migration may
            # commit between the routing decision and the lock grant, in
            # which case we follow the tuple to its new home (the stale
            # lock is harmless and released at the end) — or, under the
            # "abort" policy, surface the stale route as a retryable
            # abort instead of silently chasing the tuple.
            while True:
                pid = self.router.route_read(query.key, routing_epoch)
                node = self.cluster.node_for_partition(pid)
                touched_nodes.add(node)
                yield from self._lock(txn, node, query.key, LockMode.SHARED)
                current = self.router.store.current_epoch
                if pid in current.replicas_of(query.key):
                    break
                if abort_on_stale:
                    raise StaleRouteAbort(txn.txn_id, query.key, pid)
                self.router.note_forwarded_read(query.key)
            if abort_on_stale:
                read_routes.append((query.key, pid))
            yield from node.work(work_units)
            txn.normal_cost_units += work_units
            # A crash at the instant the work event fired cannot revoke
            # it; re-check before reading the (possibly wiped) store.
            if node.is_down:
                raise NodeDownError(node.node_id, txn.txn_id)
            node.store.read(query.key)
            if self.config.isolation == "read_committed":
                # Reads do not hold their lock to commit: the shared lock
                # acted only as a latch ordering the read after any
                # in-flight write of the same tuple.
                node.locks.release(txn.txn_id, query.key)
            return

        while True:
            replica_pids = self.router.route_write(query.key, routing_epoch)
            for pid in replica_pids:
                node = self.cluster.node_for_partition(pid)
                touched_nodes.add(node)
                yield from self._lock(
                    txn, node, query.key, LockMode.EXCLUSIVE
                )
            current = self.router.store.current_epoch.replicas_of(query.key)
            if set(current) <= set(replica_pids):
                replica_pids = current
                break
            if abort_on_stale:
                raise StaleRouteAbort(
                    txn.txn_id, query.key, replica_pids[0]
                )
        primary_node = self.cluster.node_for_partition(replica_pids[0])
        # Work is charged at the primary; replica maintenance is free in
        # the model (the paper evaluates single-replica placements).
        yield from primary_node.work(work_units)
        txn.normal_cost_units += work_units
        assert query.value is not None
        for pid in replica_pids:
            node = self.cluster.node_for_partition(pid)
            if node.is_down:
                raise NodeDownError(node.node_id, txn.txn_id)
            record = node.store.get(query.key)
            undo_log.append(
                ("write", node, query.key, record.value, record.version)
            )
            record.write(query.value)
            journal.write(node, query.key, query.value)

    # ------------------------------------------------------------------
    # Repartition-operation execution
    # ------------------------------------------------------------------
    def _op_work(self, txn: Transaction) -> float:
        """Work units for one repartition op in ``txn``'s context.

        Piggybacked operations (inside a normal carrier) are cheaper:
        the carrier already pays the locking and distributed-commit
        overhead a standalone repartition transaction would incur (§3.4).
        """
        if txn.is_normal:
            return self.cost_model.piggybacked_op_cost()
        return self.cost_model.rep_op_cost

    def _effective_ops(self, txn: Transaction) -> list[RepartitionOperation]:
        """Drop operations that the current epoch shows as already applied."""
        effective = []
        pmap = self.router.store.current_epoch
        for op in txn.rep_ops:
            if isinstance(op, Migrate):
                if pmap.primary_of(op.key) == op.destination:
                    self._report_applied(op, txn)
                    continue
            elif isinstance(op, CreateReplica):
                if op.destination in pmap.replicas_of(op.key):
                    self._report_applied(op, txn)
                    continue
            elif isinstance(op, DeleteReplica):
                if op.partition not in pmap.replicas_of(op.key):
                    self._report_applied(op, txn)
                    continue
            effective.append(op)
        return effective

    def _op_partitions(self, op: RepartitionOperation) -> frozenset[PartitionId]:
        """Partitions an operation touches *under the current epoch*."""
        pmap = self.router.store.current_epoch
        if isinstance(op, Migrate):
            return frozenset((pmap.primary_of(op.key), op.destination))
        return op.partitions_touched

    def _execute_rep_op(
        self,
        txn: Transaction,
        op: RepartitionOperation,
        stage: EpochStage,
        touched_nodes: set[DataNode],
        undo_log: list[tuple[str, DataNode, int, int, int]],
        journal: _Journal,
    ) -> Generator[Event, Any, None]:
        # The tuple enters MOVING for the stage's lifetime: its placement
        # is being changed by an uncommitted transaction, and the mark is
        # dropped with the stage if that transaction aborts.
        stage.mark_moving(op.key)
        if isinstance(op, Migrate):
            yield from self._execute_move(
                txn, op, op.key, op.destination, touched_nodes, undo_log,
                journal,
            )
        elif isinstance(op, CreateReplica):
            yield from self._execute_copy(
                txn, op, op.key, op.destination, touched_nodes, undo_log,
                journal,
            )
        elif isinstance(op, DeleteReplica):
            yield from self._execute_delete(
                txn, op, op.key, op.partition, touched_nodes
            )
        else:  # pragma: no cover - future op kinds
            raise TransactionAborted(
                txn.txn_id, f"unknown repartition operation {op!r}"
            )
        self._maybe_inject_failure(txn, op)

    def _execute_move(
        self,
        txn: Transaction,
        op: RepartitionOperation,
        key: int,
        destination: PartitionId,
        touched_nodes: set[DataNode],
        undo_log: list[tuple[str, DataNode, int, int, int]],
        journal: _Journal,
    ) -> Generator[Event, Any, None]:
        dest_node = self.cluster.node_for_partition(destination)
        while True:
            source = self.router.store.current_epoch.primary_of(key)
            source_node = self.cluster.node_for_partition(source)
            touched_nodes.update((source_node, dest_node))
            yield from self._lock(txn, source_node, key, LockMode.EXCLUSIVE)
            yield from self._lock(txn, dest_node, key, LockMode.EXCLUSIVE)
            if self.router.store.current_epoch.primary_of(key) == source:
                break

        half_work = self._op_work(txn) / 2
        yield from source_node.work(half_work)
        txn.rep_cost_units += half_work

        # A crash at the very instant the work event fired cannot revoke
        # it (the event already succeeded), so the resumed process would
        # read a wiped store: re-check before touching volatile state.
        if source_node.is_down:
            raise NodeDownError(source_node.node_id, txn.txn_id)
        record = source_node.store.get(key)
        yield from self.cluster.network.transfer(
            source_node.node_id, dest_node.node_id, record.size_bytes
        )

        yield from dest_node.work(half_work)
        txn.rep_cost_units += half_work
        if dest_node.is_down:
            raise NodeDownError(dest_node.node_id, txn.txn_id)
        if key not in dest_node.store:
            copy = record.copy()
            dest_node.store.insert(copy)
            undo_log.append(("insert", dest_node, key, 0, 0))
            journal.insert(dest_node, copy)

    def _execute_copy(
        self,
        txn: Transaction,
        op: RepartitionOperation,
        key: int,
        destination: PartitionId,
        touched_nodes: set[DataNode],
        undo_log: list[tuple[str, DataNode, int, int, int]],
        journal: _Journal,
    ) -> Generator[Event, Any, None]:
        source = self.router.store.current_epoch.primary_of(key)
        source_node = self.cluster.node_for_partition(source)
        dest_node = self.cluster.node_for_partition(destination)
        touched_nodes.update((source_node, dest_node))

        yield from self._lock(txn, source_node, key, LockMode.SHARED)
        yield from self._lock(txn, dest_node, key, LockMode.EXCLUSIVE)

        half_work = self._op_work(txn) / 2
        yield from source_node.work(half_work)
        txn.rep_cost_units += half_work
        # Same-instant crash cannot revoke an already-fired work event;
        # re-check before reading the (possibly wiped) store.
        if source_node.is_down:
            raise NodeDownError(source_node.node_id, txn.txn_id)
        record = source_node.store.get(key)
        yield from self.cluster.network.transfer(
            source_node.node_id, dest_node.node_id, record.size_bytes
        )
        yield from dest_node.work(half_work)
        txn.rep_cost_units += half_work
        if dest_node.is_down:
            raise NodeDownError(dest_node.node_id, txn.txn_id)
        if key not in dest_node.store:
            copy = record.copy()
            dest_node.store.insert(copy)
            undo_log.append(("insert", dest_node, key, 0, 0))
            journal.insert(dest_node, copy)

    def _execute_delete(
        self,
        txn: Transaction,
        op: RepartitionOperation,
        key: int,
        partition: PartitionId,
        touched_nodes: set[DataNode],
    ) -> Generator[Event, Any, None]:
        node = self.cluster.node_for_partition(partition)
        touched_nodes.add(node)
        yield from self._lock(txn, node, key, LockMode.EXCLUSIVE)
        work = self._op_work(txn)
        yield from node.work(work)
        txn.rep_cost_units += work
        # The actual removal is deferred to commit.

    def _maybe_inject_failure(
        self, txn: Transaction, op: RepartitionOperation
    ) -> None:
        if self.config.rep_op_failure_probability <= 0:
            return
        assert self._rng is not None
        if self._rng.random() < self.config.rep_op_failure_probability:
            raise InjectedFault(
                txn.txn_id,
                f"injected failure executing {op.kind} of tuple {op.key}",
            )

    def _check_touched_alive(
        self, txn: Transaction, touched_nodes: set[DataNode]
    ) -> None:
        """Abort if any node this transaction touched has crashed."""
        down = sorted(
            node.node_id for node in touched_nodes if node.is_down
        )
        if down:
            raise NodeDownError(down[0], txn.txn_id)

    # ------------------------------------------------------------------
    # Commit / undo
    # ------------------------------------------------------------------
    def _apply_commit_effects(
        self,
        txn: Transaction,
        effective_ops: list[RepartitionOperation],
        stage: Optional[EpochStage],
        journal: _Journal,
    ) -> None:
        """Stage each committed operation's map delta, then publish the
        stage as one new epoch (the map change becomes visible to other
        transactions atomically, not operation by operation)."""
        for op in effective_ops:
            assert stage is not None
            if isinstance(op, Migrate):
                # The stage overlay makes earlier ops of this same
                # transaction visible to later source lookups.
                source = stage.primary_of(op.key)
                if source == op.destination:
                    # A concurrent transaction already completed this
                    # exact move between the start-of-txn dedup check
                    # and now (e.g. a drain sweep racing the workload
                    # plan); nothing left to do.
                    self._report_applied(op, txn)
                    continue
                source_node = self.cluster.node_for_partition(source)
                if op.key in source_node.store:
                    source_node.store.delete(op.key)
                    journal.delete(source_node, op.key)
                if op.destination in stage.replicas_of(op.key):
                    # The destination gained a replica concurrently
                    # (workload-plan CreateReplica racing a drain): the
                    # move degenerates to retiring the source copy.
                    stage.remove_replica(op.key, source)
                else:
                    stage.move(op.key, source, op.destination)
            elif isinstance(op, CreateReplica):
                if op.destination in stage.replicas_of(op.key):
                    # Raced by a concurrent move/copy onto the same
                    # partition; the replica already exists.
                    self._report_applied(op, txn)
                    continue
                stage.add_replica(op.key, op.destination)
            elif isinstance(op, DeleteReplica):
                replicas = stage.replicas_of(op.key)
                if op.partition not in replicas:
                    # Concurrently moved or deleted already.
                    self._report_applied(op, txn)
                    continue
                if len(replicas) == 1:
                    # A concurrent delete made this the last copy:
                    # dropping it would strand the tuple, so the op is
                    # abandoned (the record stays resident).
                    self._report_applied(op, txn)
                    continue
                node = self.cluster.node_for_partition(op.partition)
                if op.key in node.store:
                    node.store.delete(op.key)
                    journal.delete(node, op.key)
                stage.remove_replica(op.key, op.partition)
            self._report_applied(op, txn)
        if stage is not None:
            self.router.store.publish(stage)

    def _report_applied(
        self, op: RepartitionOperation, txn: Transaction
    ) -> None:
        if self.on_rep_op_applied is not None:
            self.on_rep_op_applied(op, txn)

    def _undo(
        self, undo_log: list[tuple[str, DataNode, int, int, int]]
    ) -> None:
        for action, node, key, old_value, old_version in reversed(undo_log):
            if action == "write":
                record = node.store.peek(key)
                if record is not None:
                    record.value = old_value
                    record.version = old_version
            elif action == "insert":
                if key in node.store:
                    node.store.delete(key)

    # ------------------------------------------------------------------
    # Locking with timeout
    # ------------------------------------------------------------------
    def _lock(
        self,
        txn: Transaction,
        node: DataNode,
        key: int,
        mode: LockMode,
    ) -> Generator[Event, Any, None]:
        if node.retired:
            # Admission control for elastic scale-in: the only way a
            # transaction reaches a RETIRED node is a route pinned
            # before the drain's final epoch published.  Abort as a
            # stale route — the retry re-pins and routes to wherever
            # the drain moved the tuple.
            raise StaleRouteAbort(txn.txn_id, key, node.partition_id)
        if node.is_down:
            raise NodeDownError(node.node_id, txn.txn_id)
        event = node.locks.acquire(txn.txn_id, key, mode)
        if event.triggered:
            if event.failed:
                event.defused = True
                raise event.value
            return
        if self.config.lock_timeout_s is None or (
            not txn.is_normal and txn.priority is Priority.HIGH
        ):
            # The lock-wait timeout is a liveness heuristic for normal
            # transactions; a HIGH repartition transaction (ApplyAll, or
            # one escalated past its migration deadline) would otherwise
            # livelock on a hot tuple under overload — time out, rejoin
            # the back of the FIFO queue, repeat.  Waiting in place is
            # guaranteed progress; the deadlock detector still guards
            # against genuine cycles.
            yield event
            return
        timeout = self.env.timeout(self.config.lock_timeout_s)
        yield self.env.any_of([event, timeout])
        if event.triggered and event.ok:
            return
        node.locks.cancel(txn.txn_id, key)
        raise LockTimeout(txn.txn_id, key, self.config.lock_timeout_s)
