"""Algorithm 1: generating and ranking repartition transactions.

Given the repartition operations ``OPrep`` emitted by the optimizer and
the new partition plan P, the algorithm:

1. builds ``Top`` — for each normal transaction type t_i whose cost
   improves under P (``C_i(O) − C_i(P) > 0``), the group of operations
   that modify objects t_i accesses;
2. spreads each type's gain ``f_i (C_i(O) − C_i(P))`` evenly over its
   operation group, accumulating per-operation benefit;
3. totals benefits per group (``Tbenefit``) and walks groups in
   descending total benefit, turning each group into one repartition
   transaction while ensuring every operation belongs to exactly one
   transaction (operations already consumed by a hotter group are
   removed, and their benefit subtracted);
4. computes each transaction's benefit density ``B_j / C_j`` and returns
   the transactions sorted by descending density, together with ``TRep``
   mapping each benefiting normal-transaction type to its repartition
   transaction (the structure Algorithm 2's piggybacking consults).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..partitioning.cost_model import CostModel
from ..partitioning.operations import RepartitionOperation
from ..partitioning.plan import PartitionPlan
from ..routing.epoch import MapView
from ..workload.profile import WorkloadProfile


@dataclass
class RepartitionTransactionSpec:
    """A ranked repartition transaction, before it becomes a Transaction.

    ``type_id`` is the benefiting normal-transaction type recorded in
    TRep (the paper pairs each repartition transaction with one affected
    normal transaction).
    """

    ops: list[RepartitionOperation]
    type_id: int
    benefit: float
    cost: float
    benefit_density: float = field(init=False)

    def __post_init__(self) -> None:
        self.benefit_density = self.benefit / self.cost if self.cost > 0 else 0.0


def generate_and_rank(
    operations: Sequence[RepartitionOperation],
    plan: PartitionPlan,
    current: MapView,
    profile: WorkloadProfile,
    cost_model: CostModel,
) -> list[RepartitionTransactionSpec]:
    """Run Algorithm 1 and return specs in descending benefit density."""
    ops_by_key: dict[int, list[RepartitionOperation]] = {}
    for op in operations:
        ops_by_key.setdefault(op.key, []).append(op)
        op.benefit = 0.0  # reset accumulators from any previous run

    # Lines 1-5: build Top (type -> ops touching its keys), filtered to
    # types that actually improve under the plan.  Only types touching a
    # repartitioned key can join Top (a full-profile scan would skip the
    # rest before any arithmetic), so candidates come from the profile's
    # inverted index — restored to profile iteration order because the
    # benefit spread below accumulates floats in that order.
    key_index = profile.key_index()
    candidate_ids: set[int] = set()
    for key in ops_by_key:
        for candidate in key_index.get(key, ()):
            candidate_ids.add(candidate.type_id)
    top: dict[int, list[RepartitionOperation]] = {}
    improvements: dict[int, float] = {}
    for type_id in sorted(candidate_ids, key=profile.position):
        ttype = profile.type(type_id)
        group: list[RepartitionOperation] = []
        seen: set[int] = set()
        for key in ttype.keys:
            for op in ops_by_key.get(key, ()):  # pragma: no branch
                if op.op_id not in seen:
                    group.append(op)
                    seen.add(op.op_id)
        if not group:
            continue
        delta = cost_model.improvement(ttype, plan, current)
        if delta <= 0:
            continue
        top[ttype.type_id] = group
        improvements[ttype.type_id] = delta

    # Lines 6-9: spread each type's gain evenly over its op group.
    for type_id, group in top.items():
        ttype = profile.type(type_id)
        per_op = ttype.frequency * improvements[type_id] / len(group)
        for op in group:
            op.benefit += per_op

    # Lines 10-15: total benefit per group, sorted descending.
    group_benefit = {
        type_id: sum(op.benefit for op in group)
        for type_id, group in top.items()
    }
    ranked_types = sorted(
        group_benefit, key=lambda tid: (-group_benefit[tid], tid)
    )

    # Lines 16-26: carve groups into transactions; each op used once.
    remaining: set[int] = {op.op_id for op in operations}
    specs: list[RepartitionTransactionSpec] = []
    for type_id in ranked_types:
        group = []
        benefit = group_benefit[type_id]
        for op in top[type_id]:
            if op.op_id in remaining:
                group.append(op)
            else:
                benefit -= op.benefit
        if not group:
            continue
        for op in group:
            remaining.discard(op.op_id)
        cost = cost_model.rep_txn_cost(group)
        specs.append(
            RepartitionTransactionSpec(
                ops=group, type_id=type_id, benefit=benefit, cost=cost
            )
        )

    # Leftover operations benefit no profiled type directly (e.g. load
    # balancing moves); package them one transaction per key group so
    # they still get applied, ranked last.
    leftovers = [op for op in operations if op.op_id in remaining]
    if leftovers:
        specs.append(
            RepartitionTransactionSpec(
                ops=leftovers,
                type_id=-1,
                benefit=0.0,
                cost=cost_model.rep_txn_cost(leftovers),
            )
        )

    # Line 27: sort TRep by descending benefit density.
    specs.sort(key=lambda spec: (-spec.benefit_density, spec.type_id))
    return specs


def chunk_specs(
    specs: Sequence[RepartitionTransactionSpec], max_ops: int
) -> list[RepartitionTransactionSpec]:
    """Split oversized specs into transactions of at most ``max_ops`` ops.

    Draining a node emits one operation per resident tuple; packaged as
    a single repartition transaction that would lock thousands of keys
    at once and stall the cluster it is supposed to relieve.  Chunking
    keeps each transaction's lock footprint bounded while preserving the
    rank order Algorithm 1 produced: chunks inherit their parent's
    position, benefit and cost are split proportionally (so benefit
    density — the ranking key — is preserved), and only the first chunk
    keeps the parent's ``type_id`` (TRep maps each type to exactly one
    transaction).
    """
    if max_ops < 1:
        raise ValueError(f"max_ops must be positive: {max_ops}")
    out: list[RepartitionTransactionSpec] = []
    for spec in specs:
        if len(spec.ops) <= max_ops:
            out.append(spec)
            continue
        total = len(spec.ops)
        for start in range(0, total, max_ops):
            ops = spec.ops[start:start + max_ops]
            share = len(ops) / total
            out.append(
                RepartitionTransactionSpec(
                    ops=ops,
                    type_id=spec.type_id if start == 0 else -1,
                    benefit=spec.benefit * share,
                    cost=spec.cost * share,
                )
            )
    return out
