"""Workload-history monitoring and the automatic repartition trigger.

Paper §2.2: the repartitioner's optimizer "periodically extracts the
frequency of transactions and their visiting data partitions from the
workload history, and then estimates the system throughput and latency
in the near future based on the history.  If the estimated system
performance is under a predefined threshold, the optimizer will derive
a repartition plan."

:class:`WorkloadMonitor` implements the history side: it observes every
finished transaction (type id, key set, distributed or not), maintains
a sliding window of per-type frequencies, and can emit an *observed*
:class:`~repro.workload.profile.WorkloadProfile` — the input the
optimizer and Algorithm 1 need, derived from measurement instead of
ground truth.

:class:`AutoRepartitioner` closes the loop: every interval it estimates
utilisation from the observed history and, when the threshold is
breached and no session is active, derives and deploys a plan with the
configured scheduler.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterable, Optional

from ..metrics.collectors import IntervalRecord, MetricsCollector
from ..partitioning.cost_model import CostModel
from ..partitioning.optimizer import RepartitionOptimizer
from ..routing.epoch import PartitionMapStore
from ..txn.transaction import Transaction
from ..types import TupleKey
from ..workload.profile import TransactionType, WorkloadProfile
from .repartitioner import Repartitioner
from .schedulers.base import Scheduler

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.environment import Environment


@dataclass(slots=True)
class _TypeStats:
    keys: tuple[TupleKey, ...]
    arrivals: int = 0


class WorkloadMonitor:
    """Sliding-window transaction-history tracker.

    Call :meth:`observe` for every submitted normal transaction (wire it
    to the TM's scheduler hook or the arrival process).  The window
    holds the last ``window_intervals`` intervals of observations.

    Window-wide aggregates (:meth:`observed_profile`,
    :meth:`observed_rate_txn_per_s`) are maintained incrementally as
    intervals roll in and out of the window — O(types changed in the
    rolled interval) per roll instead of a full window rescan per query,
    which matters once the production presets push the window to tens of
    thousands of types.
    """

    def __init__(
        self,
        env: "Environment",
        interval_s: float = 20.0,
        window_intervals: int = 10,
        table: str = "accounts",
    ) -> None:
        if window_intervals < 1:
            raise ValueError("window must span at least one interval")
        self.env = env
        self.interval_s = interval_s
        self.window_intervals = window_intervals
        self.table = table
        self._current: dict[int, _TypeStats] = {}
        self._window: deque[dict[int, _TypeStats]] = deque(
            maxlen=window_intervals
        )
        #: Per-type aggregates over the *window* (not the open interval),
        #: kept in step with every roll.  A type's ``keys`` mirror the
        #: oldest window interval containing it, matching what a full
        #: oldest-to-newest merge would produce.
        self._merged: dict[int, _TypeStats] = {}
        self._window_arrivals = 0
        self._seen_txn_ids: set[int] = set()
        self._current_start = env.now
        self.total_observed = 0
        self._roller = env.process(self._roll_loop())

    # ------------------------------------------------------------------
    # Observation
    # ------------------------------------------------------------------
    def observe(self, txn: Transaction) -> None:
        """Record one normal transaction arrival.

        A transaction is counted once, however many times it is
        resubmitted after aborts — the history tracks client demand,
        not retry amplification.
        """
        if not txn.is_normal or txn.type_id is None:
            return
        if txn.txn_id in self._seen_txn_ids:
            return
        self._maybe_roll()
        self._seen_txn_ids.add(txn.txn_id)
        keys = tuple(sorted(q.key for q in txn.queries))
        stats = self._current.get(txn.type_id)
        if stats is None:
            self._current[txn.type_id] = _TypeStats(keys=keys, arrivals=1)
        else:
            stats.arrivals += 1
        self.total_observed += 1

    def _maybe_roll(self) -> None:
        """Close buckets by *timestamp*, so an observation landing exactly
        on a boundary counts toward the new interval regardless of event
        ordering at that instant."""
        while self.env.now >= self._current_start + self.interval_s:
            if len(self._window) == self.window_intervals:
                self._retire(self._window.popleft())
            self._window.append(self._current)
            for type_id, stats in self._current.items():
                acc = self._merged.get(type_id)
                if acc is None:
                    self._merged[type_id] = _TypeStats(
                        keys=stats.keys, arrivals=stats.arrivals
                    )
                else:
                    acc.arrivals += stats.arrivals
                self._window_arrivals += stats.arrivals
            self._current = {}
            self._current_start += self.interval_s

    def _retire(self, evicted: dict[int, _TypeStats]) -> None:
        """Subtract an interval leaving the window from the aggregates."""
        for type_id, stats in evicted.items():
            acc = self._merged[type_id]
            acc.arrivals -= stats.arrivals
            self._window_arrivals -= stats.arrivals
            if acc.arrivals <= 0:
                del self._merged[type_id]
            elif acc.keys == stats.keys:
                # The evicted interval defined this type's keys; adopt
                # them from the now-oldest interval still holding it
                # (scan is O(window), only for types the roll changed).
                for interval in self._window:
                    remaining = interval.get(type_id)
                    if remaining is not None:
                        acc.keys = remaining.keys
                        break

    def _roll_loop(self):
        while True:
            yield self.env.timeout(self.interval_s)
            self._maybe_roll()

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------
    def observed_rate_txn_per_s(self) -> float:
        """Mean arrival rate over the window (txn/s)."""
        if not self._window:
            return 0.0
        return self._window_arrivals / (len(self._window) * self.interval_s)

    def observed_profile(self, min_arrivals: int = 1) -> WorkloadProfile:
        """The workload profile as measured over the window.

        Types seen fewer than ``min_arrivals`` times are dropped — the
        optimizer should not chase noise.
        """
        types = [
            TransactionType(
                type_id=type_id,
                keys=stats.keys,
                frequency=float(stats.arrivals),
            )
            for type_id, stats in sorted(self._merged.items())
            if stats.arrivals >= min_arrivals
        ]
        return WorkloadProfile(table=self.table, types=types)


class TypeCostCache:
    """Per-type ``C_i(O)`` cache invalidated by the map store's delta log.

    ``C_i(O)`` is a pure function of a type's key set and the current
    placement of those keys, so a cached value stays exact until one of
    the keys appears in a published epoch delta.  The cache tracks the
    store's epoch id as a watermark and, on each query, invalidates only
    the types whose keys were touched by transitions newer than the
    watermark — O(changed keys) per interval instead of re-costing every
    type.  If the needed transitions were trimmed from the delta log the
    whole cache is dropped (correctness over cleverness).

    :meth:`mean_cost` reproduces
    :meth:`~repro.partitioning.cost_model.CostModel.expected_cost_per_txn`
    with the identical accumulation order, so the trigger's utilisation
    estimate is bit-identical to the uncached implementation.
    """

    __slots__ = ("cost_model", "store", "_costs", "_types_by_key",
                 "_watermark", "hits", "misses")

    def __init__(
        self, cost_model: "CostModel", store: "PartitionMapStore"
    ) -> None:
        self.cost_model = cost_model
        self.store = store
        self._costs: dict[int, tuple[tuple[TupleKey, ...], float]] = {}
        self._types_by_key: dict[TupleKey, set[int]] = {}
        self._watermark = store.epoch_id
        self.hits = 0
        self.misses = 0

    def _invalidate_stale(self) -> None:
        store = self.store
        if store.epoch_id == self._watermark:
            return
        log = store.delta_log()
        first_needed = self._watermark + 1
        if not log or first_needed < log[0].epoch_id:
            # The transitions we would need to diff against were trimmed;
            # drop everything rather than risk serving a stale cost.
            self._costs.clear()
            self._types_by_key.clear()
        else:
            for transition in log[first_needed - log[0].epoch_id:]:
                for delta in transition.deltas:
                    for type_id in self._types_by_key.pop(delta.key, ()):
                        self._costs.pop(type_id, None)
        self._watermark = store.epoch_id

    def mean_cost(self, types: Iterable[TransactionType]) -> float:
        """Frequency-weighted mean cost under the store's live map.

        Same float operations in the same order as
        ``CostModel.expected_cost_per_txn(types, store.current_epoch)``.
        """
        self._invalidate_stale()
        view = self.store.current_epoch
        cost_model = self.cost_model
        costs = self._costs
        total_freq = 0.0
        total_cost = 0.0
        for ttype in types:
            entry = costs.get(ttype.type_id)
            if entry is not None and entry[0] == ttype.keys:
                cost = entry[1]
                self.hits += 1
            else:
                cost = cost_model.cost_under_map(ttype.keys, view)
                costs[ttype.type_id] = (ttype.keys, cost)
                for key in ttype.keys:
                    self._types_by_key.setdefault(key, set()).add(
                        ttype.type_id
                    )
                self.misses += 1
            total_freq += ttype.frequency
            total_cost += ttype.frequency * cost
        if total_freq == 0:
            return 0.0
        return total_cost / total_freq


@dataclass(frozen=True)
class AutoRepartitionerConfig:
    """Trigger policy for the closed loop."""

    #: Re-plan when estimated utilisation exceeds this.
    utilisation_threshold: float = 0.9
    #: Minimum observed arrivals for a type to be planned around.
    min_arrivals: int = 2
    #: Cool-down: intervals to wait after a session completes before
    #: another plan may be derived.
    cooldown_intervals: int = 3


class AutoRepartitioner:
    """The fully closed loop: monitor → trigger → plan → deploy."""

    def __init__(
        self,
        repartitioner: Repartitioner,
        monitor: WorkloadMonitor,
        optimizer: RepartitionOptimizer,
        metrics: MetricsCollector,
        capacity_units_per_s: float,
        scheduler_factory: Callable[[], Scheduler],
        config: Optional[AutoRepartitionerConfig] = None,
    ) -> None:
        self.repartitioner = repartitioner
        self.monitor = monitor
        self.optimizer = optimizer
        self.capacity_units_per_s = capacity_units_per_s
        self.scheduler_factory = scheduler_factory
        self.config = config or AutoRepartitionerConfig()
        self.sessions_started = 0
        self._cooldown = 0
        self._cost_cache = TypeCostCache(
            repartitioner.cost_model, repartitioner.router.store
        )
        metrics.interval_observers.append(self._on_interval)

    def _on_interval(self, record: IntervalRecord) -> None:
        if self._cooldown > 0:
            self._cooldown -= 1
            return
        session = self.repartitioner.session
        if session is not None and not session.is_complete:
            return
        profile = self.monitor.observed_profile(
            min_arrivals=self.config.min_arrivals
        )
        if not profile.types:
            return
        rate = self.monitor.observed_rate_txn_per_s()
        pmap = self.repartitioner.router.store.current_epoch
        mean_cost = self._cost_cache.mean_cost(profile.types)
        if self.capacity_units_per_s <= 0:
            return
        utilisation = rate * mean_cost / self.capacity_units_per_s
        if utilisation <= self.config.utilisation_threshold:
            return
        plan = self.optimizer.derive_plan(profile, pmap)
        specs = self.repartitioner.rank_plan(plan, profile)
        if not specs:
            return
        self.repartitioner.deploy(specs, self.scheduler_factory())
        self.sessions_started += 1
        self._cooldown = self.config.cooldown_intervals
