"""Workload-history monitoring and the automatic repartition trigger.

Paper §2.2: the repartitioner's optimizer "periodically extracts the
frequency of transactions and their visiting data partitions from the
workload history, and then estimates the system throughput and latency
in the near future based on the history.  If the estimated system
performance is under a predefined threshold, the optimizer will derive
a repartition plan."

:class:`WorkloadMonitor` implements the history side: it observes every
finished transaction (type id, key set, distributed or not), maintains
a sliding window of per-type frequencies, and can emit an *observed*
:class:`~repro.workload.profile.WorkloadProfile` — the input the
optimizer and Algorithm 1 need, derived from measurement instead of
ground truth.

:class:`AutoRepartitioner` closes the loop: every interval it estimates
utilisation from the observed history and, when the threshold is
breached and no session is active, derives and deploys a plan with the
configured scheduler.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional

from ..metrics.collectors import IntervalRecord, MetricsCollector
from ..partitioning.optimizer import RepartitionOptimizer
from ..txn.transaction import Transaction
from ..types import TupleKey
from ..workload.profile import TransactionType, WorkloadProfile
from .repartitioner import Repartitioner
from .schedulers.base import Scheduler

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.environment import Environment


@dataclass
class _TypeStats:
    keys: tuple[TupleKey, ...]
    arrivals: int = 0


class WorkloadMonitor:
    """Sliding-window transaction-history tracker.

    Call :meth:`observe` for every submitted normal transaction (wire it
    to the TM's scheduler hook or the arrival process).  The window
    holds the last ``window_intervals`` intervals of observations.
    """

    def __init__(
        self,
        env: "Environment",
        interval_s: float = 20.0,
        window_intervals: int = 10,
        table: str = "accounts",
    ) -> None:
        if window_intervals < 1:
            raise ValueError("window must span at least one interval")
        self.env = env
        self.interval_s = interval_s
        self.window_intervals = window_intervals
        self.table = table
        self._current: dict[int, _TypeStats] = {}
        self._window: deque[dict[int, _TypeStats]] = deque(
            maxlen=window_intervals
        )
        self._seen_txn_ids: set[int] = set()
        self._current_start = env.now
        self.total_observed = 0
        self._roller = env.process(self._roll_loop())

    # ------------------------------------------------------------------
    # Observation
    # ------------------------------------------------------------------
    def observe(self, txn: Transaction) -> None:
        """Record one normal transaction arrival.

        A transaction is counted once, however many times it is
        resubmitted after aborts — the history tracks client demand,
        not retry amplification.
        """
        if not txn.is_normal or txn.type_id is None:
            return
        if txn.txn_id in self._seen_txn_ids:
            return
        self._maybe_roll()
        self._seen_txn_ids.add(txn.txn_id)
        keys = tuple(sorted(q.key for q in txn.queries))
        stats = self._current.get(txn.type_id)
        if stats is None:
            self._current[txn.type_id] = _TypeStats(keys=keys, arrivals=1)
        else:
            stats.arrivals += 1
        self.total_observed += 1

    def _maybe_roll(self) -> None:
        """Close buckets by *timestamp*, so an observation landing exactly
        on a boundary counts toward the new interval regardless of event
        ordering at that instant."""
        while self.env.now >= self._current_start + self.interval_s:
            self._window.append(self._current)
            self._current = {}
            self._current_start += self.interval_s

    def _roll_loop(self):
        while True:
            yield self.env.timeout(self.interval_s)
            self._maybe_roll()

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------
    def observed_rate_txn_per_s(self) -> float:
        """Mean arrival rate over the window (txn/s)."""
        if not self._window:
            return 0.0
        arrivals = sum(
            stats.arrivals
            for interval in self._window
            for stats in interval.values()
        )
        return arrivals / (len(self._window) * self.interval_s)

    def observed_profile(self, min_arrivals: int = 1) -> WorkloadProfile:
        """The workload profile as measured over the window.

        Types seen fewer than ``min_arrivals`` times are dropped — the
        optimizer should not chase noise.
        """
        merged: dict[int, _TypeStats] = {}
        for interval in self._window:
            for type_id, stats in interval.items():
                acc = merged.get(type_id)
                if acc is None:
                    merged[type_id] = _TypeStats(
                        keys=stats.keys, arrivals=stats.arrivals
                    )
                else:
                    acc.arrivals += stats.arrivals
        types = [
            TransactionType(
                type_id=type_id,
                keys=stats.keys,
                frequency=float(stats.arrivals),
            )
            for type_id, stats in sorted(merged.items())
            if stats.arrivals >= min_arrivals
        ]
        return WorkloadProfile(table=self.table, types=types)


@dataclass(frozen=True)
class AutoRepartitionerConfig:
    """Trigger policy for the closed loop."""

    #: Re-plan when estimated utilisation exceeds this.
    utilisation_threshold: float = 0.9
    #: Minimum observed arrivals for a type to be planned around.
    min_arrivals: int = 2
    #: Cool-down: intervals to wait after a session completes before
    #: another plan may be derived.
    cooldown_intervals: int = 3


class AutoRepartitioner:
    """The fully closed loop: monitor → trigger → plan → deploy."""

    def __init__(
        self,
        repartitioner: Repartitioner,
        monitor: WorkloadMonitor,
        optimizer: RepartitionOptimizer,
        metrics: MetricsCollector,
        capacity_units_per_s: float,
        scheduler_factory: Callable[[], Scheduler],
        config: Optional[AutoRepartitionerConfig] = None,
    ) -> None:
        self.repartitioner = repartitioner
        self.monitor = monitor
        self.optimizer = optimizer
        self.capacity_units_per_s = capacity_units_per_s
        self.scheduler_factory = scheduler_factory
        self.config = config or AutoRepartitionerConfig()
        self.sessions_started = 0
        self._cooldown = 0
        metrics.interval_observers.append(self._on_interval)

    def _on_interval(self, record: IntervalRecord) -> None:
        if self._cooldown > 0:
            self._cooldown -= 1
            return
        session = self.repartitioner.session
        if session is not None and not session.is_complete:
            return
        profile = self.monitor.observed_profile(
            min_arrivals=self.config.min_arrivals
        )
        if not profile.types:
            return
        rate = self.monitor.observed_rate_txn_per_s()
        pmap = self.repartitioner.router.store.current_epoch
        mean_cost = self.repartitioner.cost_model.expected_cost_per_txn(
            profile.types, pmap
        )
        if self.capacity_units_per_s <= 0:
            return
        utilisation = rate * mean_cost / self.capacity_units_per_s
        if utilisation <= self.config.utilisation_threshold:
            return
        plan = self.optimizer.derive_plan(profile, pmap)
        specs = self.repartitioner.rank_plan(plan, profile)
        if not specs:
            return
        self.repartitioner.deploy(specs, self.scheduler_factory())
        self.sessions_started += 1
        self._cooldown = self.config.cooldown_intervals
