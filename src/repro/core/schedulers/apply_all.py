"""ApplyAll: deploy the plan as fast as possible (paper §3.2).

Every repartition transaction is submitted immediately with a priority
*higher* than normal transactions.  Because the processing queue serves
priorities strictly, this pauses normal processing until the whole plan
is applied — the fastest deployment, at the cost of a throughput
collapse and a latency spike that (under high load) outlasts the
repartitioning itself while the backlog drains.
"""

from __future__ import annotations

from ...types import Priority
from .base import Scheduler


class ApplyAllScheduler(Scheduler):
    """Submit everything at HIGH priority, ahead of normal transactions."""

    name = "ApplyAll"

    def begin(self) -> None:
        assert self.session is not None
        for rep_txn in list(self.session.pending()):
            self.session.submit(rep_txn, Priority.HIGH)

    def on_extended(self, new_txns: list) -> None:
        """Late arrivals (elastic migrations) go straight in at HIGH."""
        assert self.session is not None
        for rep_txn in new_txns:
            self.session.submit(rep_txn, Priority.HIGH)
