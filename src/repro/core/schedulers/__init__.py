"""The five SOAP scheduling strategies."""

from .after_all import AfterAllScheduler
from .apply_all import ApplyAllScheduler
from .base import Scheduler
from .feedback import FeedbackConfig, FeedbackScheduler
from .hybrid import HybridScheduler
from .piggyback import PiggybackConfig, PiggybackScheduler

__all__ = [
    "AfterAllScheduler",
    "ApplyAllScheduler",
    "FeedbackConfig",
    "FeedbackScheduler",
    "HybridScheduler",
    "PiggybackConfig",
    "PiggybackScheduler",
    "Scheduler",
]
