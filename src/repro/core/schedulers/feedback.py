"""The Feedback scheduler (paper §3.3): PID-controlled promotion.

On top of the AfterAll baseline (everything queued at LOW priority),
each interval the scheduler promotes some repartition transactions to
NORMAL priority — *high-priority repartition transactions* in the
paper's terms — so they compete fairly with the normal workload and
deploy faster.

How many to promote is decided by a PID controller whose process
variable is the measured per-interval ratio of high-priority repartition
cost to normal-transaction cost.  Note on the setpoint scale: the
paper's Table 1 lists SP values slightly above 1 (1.015–1.25), which
matches measuring the ratio as ``(normal + repartition) / normal``; we
adopt that convention, so SP = 1.05 budgets repartition work at 5% of
the normal load.  The controller runs in velocity form (its output
adjusts the previously actuated ratio), so the paper's pure-P setting
(Kp = 1, Ki = Kd = 0) converges on PV = SP instead of oscillating.

A hard cap bounds promotions per interval — the paper's conservative
guard against instability while the controller settles.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...control.pid import PIDController
from ...errors import ConfigError
from ...metrics.collectors import IntervalRecord
from ...txn.transaction import Transaction
from ...types import Priority
from ..session import RepState
from .base import Scheduler


@dataclass(frozen=True)
class FeedbackConfig:
    """Controller and promotion-budget parameters."""

    #: Table-1-style setpoint: target (normal + rep) / normal cost ratio.
    setpoint: float = 1.05
    kp: float = 1.0
    ki: float = 0.0
    kd: float = 0.0
    #: Hard cap on promotions per interval (stability guard, §3.3).
    max_promotions_per_interval: int = 20
    #: Clamp on the actuated repartition-cost share (rep/normal).
    max_ratio: float = 2.0
    #: Fallback per-interval normal cost used when an interval commits
    #: nothing (saturation); typically arrival_rate × C × interval.
    normal_cost_hint: float = 1.0
    #: Measure PV including piggybacked repartition cost (Hybrid mode).
    count_piggybacked_in_pv: bool = False

    def __post_init__(self) -> None:
        if self.setpoint < 1.0:
            raise ConfigError(
                f"setpoint is on the (normal+rep)/normal scale, so it "
                f"must be >= 1: {self.setpoint}"
            )
        if self.max_promotions_per_interval < 0:
            raise ConfigError("promotion cap cannot be negative")
        if self.max_ratio <= 0:
            raise ConfigError("max_ratio must be positive")
        if self.normal_cost_hint <= 0:
            raise ConfigError("normal_cost_hint must be positive")


class FeedbackScheduler(Scheduler):
    """AfterAll baseline + PID-driven promotion to normal priority."""

    name = "Feedback"

    def __init__(self, config: FeedbackConfig | None = None) -> None:
        super().__init__()
        self.config = config or FeedbackConfig()
        self.pid = PIDController(
            kp=self.config.kp,
            ki=self.config.ki,
            kd=self.config.kd,
            setpoint=self.config.setpoint,
        )
        #: Currently actuated repartition share of normal cost.
        self.ratio = self.config.setpoint - 1.0
        self.promotions = 0
        self._last_normal_cost = 0.0

    def begin(self) -> None:
        assert self.session is not None
        for rep_txn in list(self.session.pending()):
            self.session.submit(rep_txn, Priority.LOW)

    def on_extended(self, new_txns: list[Transaction]) -> None:
        """Late arrivals join the LOW baseline; the PID promotes them."""
        assert self.session is not None
        for rep_txn in new_txns:
            self.session.submit(rep_txn, Priority.LOW)

    # ------------------------------------------------------------------
    # Control loop
    # ------------------------------------------------------------------
    def on_interval(self, record: IntervalRecord) -> None:
        session = self.session
        if session is None or session.is_complete:
            return

        if self.config.count_piggybacked_in_pv:
            rep_cost = record.rep_cost_high + record.rep_cost_piggyback
        else:
            rep_cost = record.rep_cost_high
        normal_cost = record.normal_cost
        if normal_cost > 0:
            self._last_normal_cost = normal_cost
        denominator = (
            normal_cost
            or self._last_normal_cost
            or self.config.normal_cost_hint
        )
        pv = 1.0 + rep_cost / denominator

        adjustment = self.pid.update(pv, dt=1.0)
        self.ratio = min(
            self.config.max_ratio, max(0.0, self.ratio + adjustment)
        )

        budget_units = self.ratio * denominator
        mean_cost = session.mean_rep_txn_cost()
        if mean_cost <= 0:
            return
        quota = int(budget_units / mean_cost)
        quota = min(quota, self.config.max_promotions_per_interval)
        if quota > 0:
            self._promote(quota)

    def _promote(self, quota: int) -> None:
        """Raise the next ``quota`` ranked LOW transactions to NORMAL."""
        session = self.session
        assert session is not None
        promoted = 0
        for rep_txn in session.rep_txns:
            if promoted >= quota:
                break
            if self._promotable(rep_txn):
                if session.promote(rep_txn, Priority.NORMAL):
                    promoted += 1
                    self.promotions += 1

    def _promotable(self, rep_txn: Transaction) -> bool:
        session = self.session
        assert session is not None
        return (
            session.state_of(rep_txn.txn_id) is RepState.QUEUED
            and rep_txn.priority is Priority.LOW
            and rep_txn.txn_id in session.tm.queue
        )
