"""The Hybrid scheduler (paper §3.5): piggyback + feedback combined.

The piggyback module claims repartition transactions for incoming
carriers exactly as in §3.4; the feedback module keeps the AfterAll
baseline queued at LOW priority and promotes transactions each interval.
Crucially, the feedback module's PV *counts the piggybacked operations
too*, so when the arrival stream offers many carriers the controller
promotes fewer standalone repartition transactions, and when carriers
are scarce (low load, uniform workload) it uses the idle capacity
piggybacking alone cannot exploit.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

from ...metrics.collectors import IntervalRecord
from ...txn.transaction import Transaction
from ..session import RepartitionSession
from .base import Scheduler
from .feedback import FeedbackConfig, FeedbackScheduler
from .piggyback import PiggybackConfig, PiggybackScheduler


class HybridScheduler(Scheduler):
    """Compose the Piggyback and Feedback modules."""

    name = "Hybrid"

    def __init__(
        self,
        feedback_config: Optional[FeedbackConfig] = None,
        piggyback_config: Optional[PiggybackConfig] = None,
    ) -> None:
        super().__init__()
        feedback_config = feedback_config or FeedbackConfig()
        # The defining feature of Hybrid: piggybacked work counts toward
        # the controller's measured repartition cost.
        feedback_config = replace(
            feedback_config, count_piggybacked_in_pv=True
        )
        self.feedback = FeedbackScheduler(feedback_config)
        self.piggyback = PiggybackScheduler(piggyback_config)

    def bind(self, session: RepartitionSession) -> None:
        super().bind(session)
        self.feedback.bind(session)
        self.piggyback.bind(session)

    def begin(self) -> None:
        # The feedback module owns queue residency (AfterAll baseline);
        # the piggyback module will claim transactions out of the queue
        # when carriers arrive.
        self.feedback.begin()

    def on_interval(self, record: IntervalRecord) -> None:
        self.feedback.on_interval(record)

    def on_extended(self, new_txns: list[Transaction]) -> None:
        # Queue residency is the feedback module's job; the piggyback
        # module claims newcomers out of the queue via TRep as usual.
        self.feedback.on_extended(new_txns)

    def on_submit(self, txn: Transaction) -> None:
        self.piggyback.on_submit(txn)

    def on_finished(self, txn: Transaction, success: bool) -> None:
        session = self.session
        if txn.is_normal and txn.carrying_rep_txn is not None:
            rep_id = txn.carrying_rep_txn
            # Carrier results belong to the piggyback module (it tracks
            # failures and the do-not-piggyback set).
            self.piggyback.on_finished(txn, success)
            if not success and session is not None:
                # A released repartition transaction must rejoin the LOW
                # baseline queue, or the feedback module can never
                # promote it again.
                released = next(
                    (t for t in session.rep_txns if t.txn_id == rep_id),
                    None,
                )
                if released is not None and released in session.pending():
                    session.submit(released, released.priority)
            return
        super().on_finished(txn, success)

    @property
    def piggybacks(self) -> int:
        """Operations deployed via carriers (exposed for reports)."""
        return self.piggyback.piggybacks

    @property
    def promotions(self) -> int:
        """Feedback promotions performed (exposed for reports)."""
        return self.feedback.promotions
