"""Scheduler interface and shared bookkeeping.

A scheduler decides *when* each repartition transaction runs.  It plugs
into the system at three points:

* :meth:`Scheduler.begin` — the repartition plan was just ranked; submit
  (or hold) the repartition transactions;
* :meth:`Scheduler.on_submit` — a normal transaction is entering the
  processing queue (the Piggyback strategies inject operations here);
* :meth:`Scheduler.on_interval` — an interval closed; adapt (Feedback);
* :meth:`Scheduler.on_finished` — any transaction committed/aborted.

The base class implements the bookkeeping every strategy shares:
marking repartition transactions done when they commit, whether they ran
standalone or piggybacked on a carrier.

Schedulers never touch the partition map themselves: they only decide
when repartition transactions run, and every placement change those
transactions make is staged and atomically published through the
:class:`~repro.routing.epoch.PartitionMapStore` at commit.
"""

from __future__ import annotations

from typing import Optional

from ...metrics.collectors import IntervalRecord
from ...txn.transaction import Transaction
from ..session import RepartitionSession


class Scheduler:
    """Base scheduler: shared completion bookkeeping, no-op scheduling."""

    name = "base"

    def __init__(self) -> None:
        self.session: Optional[RepartitionSession] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def bind(self, session: RepartitionSession) -> None:
        """Attach this scheduler to a repartition session."""
        self.session = session

    def begin(self) -> None:
        """Deployment starts; submit/hold repartition transactions."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Hooks
    # ------------------------------------------------------------------
    def on_interval(self, record: IntervalRecord) -> None:
        """An interval closed (only adaptive strategies react)."""

    def on_submit(self, txn: Transaction) -> None:
        """A normal transaction is entering the queue."""

    def on_extended(self, new_txns: list[Transaction]) -> None:
        """The session gained repartition transactions mid-deployment.

        Elastic membership events (node drains, scale-outs) extend the
        running session with freshly ranked migration transactions.
        Each strategy treats newcomers the way :meth:`begin` treated the
        original batch; the default (used by Piggyback, which holds
        everything PENDING for carriers) is to do nothing.
        """

    def on_finished(self, txn: Transaction, success: bool) -> None:
        """A transaction finished; update repartition-transaction state."""
        session = self.session
        if session is None:
            return
        if txn.is_repartition:
            if success:
                session.complete(txn.txn_id)
            # On failure the transaction manager resubmits it with its
            # current priority; the session keeps it QUEUED.
            return
        if txn.carrying_rep_txn is not None:
            self._handle_carrier_result(txn, success)

    def _handle_carrier_result(self, txn: Transaction, success: bool) -> None:
        """Default carrier handling (overridden by piggyback strategies)."""
        session = self.session
        assert session is not None
        rep_id = txn.carrying_rep_txn
        assert rep_id is not None
        if success:
            session.complete(rep_id)
            txn.carrying_rep_txn = None
        else:
            session.release_piggyback(rep_id)
            txn.strip_rep_ops()

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"
