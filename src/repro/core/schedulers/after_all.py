"""AfterAll: repartition only when the system is idle (paper §3.2).

Every repartition transaction is submitted with a priority *lower* than
normal transactions, so the dispatcher only picks one up when no normal
transaction is waiting.  Interference is minimal — but under high load
there is no idle time, so the plan barely deploys and the system stays
overloaded (the behaviour the paper attributes to Sword [15]).
"""

from __future__ import annotations

from ...types import Priority
from .base import Scheduler


class AfterAllScheduler(Scheduler):
    """Submit everything at LOW priority, behind normal transactions."""

    name = "AfterAll"

    def begin(self) -> None:
        assert self.session is not None
        for rep_txn in list(self.session.pending()):
            self.session.submit(rep_txn, Priority.LOW)

    def on_extended(self, new_txns: list) -> None:
        """Late arrivals (elastic migrations) queue at LOW like the rest."""
        assert self.session is not None
        for rep_txn in new_txns:
            self.session.submit(rep_txn, Priority.LOW)
