"""The Piggyback scheduler (paper §3.4, Algorithm 2).

Repartition transactions are *not* submitted to the processing queue.
Instead, when a normal transaction t_i arrives and ``TRep`` holds a
pending repartition transaction r_j that benefits t_i, the scheduler
injects r_j's operations into t_i.  The carrier already acquires locks
on the very tuples being moved, so the locking and distributed-commit
overhead of a standalone repartition transaction is saved — an on-demand
"repartition the data when it is accessed" strategy.

Two of the paper's caveats are implemented:

* a cap on how many operations may piggyback onto one carrier (too many
  lengthen the carrier enough to cause aborts);
* when a piggybacked carrier aborts, the operations are stripped, the
  repartition transaction returns to the pending pool, and the carrier
  is resubmitted *without* them (Algorithm 2, lines 13-15).
"""

from __future__ import annotations

from dataclasses import dataclass

from ...errors import ConfigError
from ...txn.transaction import Transaction
from ...types import TxnId
from .base import Scheduler


@dataclass(frozen=True)
class PiggybackConfig:
    """Piggybacking limits."""

    #: Maximum repartition operations injected into one carrier.
    max_ops_per_carrier: int = 10

    def __post_init__(self) -> None:
        if self.max_ops_per_carrier < 1:
            raise ConfigError("max_ops_per_carrier must be >= 1")


class PiggybackScheduler(Scheduler):
    """Inject repartition operations into benefiting normal transactions."""

    name = "Piggyback"

    def __init__(self, config: PiggybackConfig | None = None) -> None:
        super().__init__()
        self.config = config or PiggybackConfig()
        self.piggybacks = 0
        self.carrier_failures = 0
        #: Carriers that already failed once ride clean from then on.
        self._do_not_piggyback: set[TxnId] = set()

    def begin(self) -> None:
        """Nothing is queued; deployment rides entirely on arrivals."""

    # ------------------------------------------------------------------
    # Algorithm 2
    # ------------------------------------------------------------------
    def on_submit(self, txn: Transaction) -> None:
        session = self.session
        if session is None or not txn.is_normal:
            return
        if txn.type_id is None or txn.carrying_rep_txn is not None:
            return
        if txn.txn_id in self._do_not_piggyback:
            return
        candidate = session.trep.get(txn.type_id)
        if candidate is None:
            return
        if len(candidate.rep_ops) > self.config.max_ops_per_carrier:
            return
        claimed = session.claim_for_piggyback(txn.type_id)
        if claimed is None:
            return
        txn.attach_rep_ops(claimed.txn_id, claimed.rep_ops)
        self.piggybacks += 1

    def _handle_carrier_result(self, txn: Transaction, success: bool) -> None:
        session = self.session
        assert session is not None
        rep_id = txn.carrying_rep_txn
        assert rep_id is not None
        if success:
            session.complete(rep_id)
            txn.carrying_rep_txn = None
            return
        self.carrier_failures += 1
        session.release_piggyback(rep_id)
        txn.strip_rep_ops()
        # Algorithm 2 line 15: the carrier is resubmitted without the
        # repartition operations — never re-burden it.
        self._do_not_piggyback.add(txn.txn_id)
