"""The repartition session: shared state for one plan deployment.

A session owns the ranked repartition transactions produced by
Algorithm 1 and tracks each one's state while a scheduler deploys them:

* ``PENDING`` — known but not in the processing queue;
* ``QUEUED`` — submitted to the transaction manager;
* ``PIGGYBACKED`` — its operations are riding inside a normal carrier;
* ``DONE`` — committed (directly or via carrier).

It also exposes ``TRep`` — the type-id → repartition-transaction lookup
that Algorithm 2's piggybacking consults — and fires a completion event
when every repartition transaction is done.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Optional, Sequence

from ..metrics.collectors import MetricsCollector
from ..sim.events import Event
from ..txn.manager import TransactionManager
from ..txn.transaction import Transaction
from ..types import Priority, TxnId
from .ranking import RepartitionTransactionSpec

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.environment import Environment


class RepState(enum.Enum):
    """Deployment state of one repartition transaction."""

    PENDING = "pending"
    QUEUED = "queued"
    PIGGYBACKED = "piggybacked"
    DONE = "done"


class RepartitionSession:
    """Tracks one repartition plan's deployment."""

    def __init__(
        self,
        env: "Environment",
        tm: TransactionManager,
        metrics: MetricsCollector,
        specs: Sequence[RepartitionTransactionSpec],
    ) -> None:
        self.env = env
        self.tm = tm
        self.metrics = metrics
        self.started_at = env.now
        self.completed = Event(env)

        self.rep_txns: list[Transaction] = [
            tm.create_repartition(
                ops=spec.ops,
                type_id=spec.type_id,
                benefit=spec.benefit,
                cost=spec.cost,
                benefit_density=spec.benefit_density,
            )
            for spec in specs
        ]
        self._states: dict[TxnId, RepState] = {
            txn.txn_id: RepState.PENDING for txn in self.rep_txns
        }
        #: TRep — benefiting normal type -> repartition transaction.
        self.trep: dict[int, Transaction] = {
            txn.type_id: txn
            for txn in self.rep_txns
            if txn.type_id is not None and txn.type_id >= 0
        }
        self.ops_total = sum(len(txn.rep_ops) for txn in self.rep_txns)
        metrics.set_rep_ops_total(metrics.rep_ops_total + self.ops_total)
        # Route applied-op notifications into the metrics collector.
        tm.executor.on_rep_op_applied = lambda _op, _txn: (
            metrics.record_rep_op_applied()
        )
        if not self.rep_txns:
            self.completed.succeed()

    # ------------------------------------------------------------------
    # Extension (elastic membership: more migrations mid-session)
    # ------------------------------------------------------------------
    def extend(
        self, specs: Sequence[RepartitionTransactionSpec]
    ) -> list[Transaction]:
        """Add ranked specs to this session as PENDING transactions.

        Elastic membership events (drain, scale-out) arrive while a
        deployment may already be running — or already finished.  The
        session absorbs the new work: fresh transactions join
        ``rep_txns`` and TRep (types not already mapped), the metrics
        op total grows, and if the completion event already fired it is
        re-armed with a fresh event so the run's recorded completion
        time reflects the *last* migration, not the first batch's.
        """
        new_txns = [
            self.tm.create_repartition(
                ops=spec.ops,
                type_id=spec.type_id,
                benefit=spec.benefit,
                cost=spec.cost,
                benefit_density=spec.benefit_density,
            )
            for spec in specs
        ]
        for txn in new_txns:
            self.rep_txns.append(txn)
            self._states[txn.txn_id] = RepState.PENDING
            if (
                txn.type_id is not None
                and txn.type_id >= 0
                and txn.type_id not in self.trep
            ):
                self.trep[txn.type_id] = txn
        added_ops = sum(len(txn.rep_ops) for txn in new_txns)
        self.ops_total += added_ops
        self.metrics.set_rep_ops_total(
            self.metrics.rep_ops_total + added_ops
        )
        if new_txns and self.completed.triggered:
            # The old event already woke its waiters (that completion
            # was real at the time); future waiters see the new one.
            self.completed = Event(self.env)
        return new_txns

    # ------------------------------------------------------------------
    # State queries
    # ------------------------------------------------------------------
    def state_of(self, txn_id: TxnId) -> RepState:
        """Deployment state of one repartition transaction."""
        return self._states[txn_id]

    def pending(self) -> list[Transaction]:
        """PENDING repartition transactions, in rank order."""
        return [
            txn
            for txn in self.rep_txns
            if self._states[txn.txn_id] is RepState.PENDING
        ]

    def unfinished_count(self) -> int:
        """Repartition transactions not yet DONE."""
        return sum(
            1 for state in self._states.values() if state is not RepState.DONE
        )

    @property
    def is_complete(self) -> bool:
        """Whether every repartition transaction committed."""
        return self.unfinished_count() == 0

    def mean_rep_txn_cost(self) -> float:
        """Average repartition-transaction cost (feedback sizing input)."""
        if not self.rep_txns:
            return 0.0
        return sum(txn.cost for txn in self.rep_txns) / len(self.rep_txns)

    # ------------------------------------------------------------------
    # Scheduler actions
    # ------------------------------------------------------------------
    def submit(self, rep_txn: Transaction, priority: Priority) -> None:
        """Submit a PENDING repartition transaction to the queue."""
        state = self._states[rep_txn.txn_id]
        if state is not RepState.PENDING:
            raise ValueError(
                f"repartition txn {rep_txn.txn_id} is {state.value}, "
                "cannot submit"
            )
        self._states[rep_txn.txn_id] = RepState.QUEUED
        self.tm.submit(rep_txn, priority)

    def promote(self, rep_txn: Transaction, priority: Priority) -> bool:
        """Raise the priority of a QUEUED (still waiting) transaction."""
        if self._states[rep_txn.txn_id] is not RepState.QUEUED:
            return False
        return self.tm.queue.reprioritise(rep_txn.txn_id, priority)

    def claim_for_piggyback(self, type_id: int) -> Optional[Transaction]:
        """Take the pending repartition transaction benefiting ``type_id``.

        Returns ``None`` when there is nothing to piggyback: no such
        transaction, already done/piggybacked, or already dispatched to
        a worker (it left the queue and cannot be recalled).
        """
        rep_txn = self.trep.get(type_id)
        if rep_txn is None:
            return None
        state = self._states[rep_txn.txn_id]
        if state is RepState.PENDING:
            self._states[rep_txn.txn_id] = RepState.PIGGYBACKED
            return rep_txn
        if state is RepState.QUEUED:
            if self.tm.queue.remove(rep_txn.txn_id) is None:
                return None  # already dispatched; let it run as a txn
            self._states[rep_txn.txn_id] = RepState.PIGGYBACKED
            return rep_txn
        return None

    def release_piggyback(self, rep_txn_id: TxnId) -> Optional[Transaction]:
        """Return a PIGGYBACKED transaction to PENDING (carrier aborted)."""
        state = self._states.get(rep_txn_id)
        if state is not RepState.PIGGYBACKED:
            return None
        self._states[rep_txn_id] = RepState.PENDING
        return next(
            (t for t in self.rep_txns if t.txn_id == rep_txn_id), None
        )

    def requeue(self, rep_txn: Transaction) -> None:
        """A QUEUED repartition transaction aborted and will be retried."""
        # The TM resubmits it with the same priority; state stays QUEUED.

    def complete(self, rep_txn_id: TxnId) -> None:
        """Mark one repartition transaction DONE (removes it from TRep)."""
        if self._states.get(rep_txn_id) is RepState.DONE:
            return
        self._states[rep_txn_id] = RepState.DONE
        done_txn = next(
            (t for t in self.rep_txns if t.txn_id == rep_txn_id), None
        )
        if done_txn is not None and done_txn.type_id in self.trep:
            if self.trep[done_txn.type_id].txn_id == rep_txn_id:
                del self.trep[done_txn.type_id]
        if self.is_complete and not self.completed.triggered:
            self.completed.succeed(self.env.now)
