"""The repartitioner: SOAP's coordinating component (paper §2.2).

Ties the pipeline together: take a partition plan from an optimizer,
diff it against the live partition map, run Algorithm 1 to generate and
rank repartition transactions, open a :class:`RepartitionSession`, and
hand control to the chosen scheduler.  The repartitioner also wires the
scheduler into the transaction manager (arrival/completion hooks) and
the metrics collector (interval observations).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Sequence

from ..txn.transaction import Transaction

from ..metrics.collectors import MetricsCollector
from ..partitioning.cost_model import CostModel
from ..partitioning.operations import RepartitionOperation
from ..partitioning.plan import PartitionPlan, diff_plan
from ..routing.router import QueryRouter
from ..txn.manager import TransactionManager
from ..workload.profile import WorkloadProfile
from .ranking import RepartitionTransactionSpec, generate_and_rank
from .schedulers.base import Scheduler
from .session import RepartitionSession

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.environment import Environment


class Repartitioner:
    """Coordinates online deployment of a repartition plan."""

    def __init__(
        self,
        env: "Environment",
        tm: TransactionManager,
        router: QueryRouter,
        metrics: MetricsCollector,
        cost_model: CostModel,
    ) -> None:
        self.env = env
        self.tm = tm
        self.router = router
        self.metrics = metrics
        self.cost_model = cost_model
        self.session: Optional[RepartitionSession] = None
        self.scheduler: Optional[Scheduler] = None

    # ------------------------------------------------------------------
    # Planning + ranking
    # ------------------------------------------------------------------
    def rank_plan(
        self,
        plan: PartitionPlan,
        profile: WorkloadProfile,
        operations: Optional[Sequence[RepartitionOperation]] = None,
    ) -> list[RepartitionTransactionSpec]:
        """Diff the plan against the current epoch and run Algorithm 1.

        Diffing against the store's published :class:`MapEpoch` (rather
        than the mutable live map) pins planning to one consistent map
        version even if repartition transactions commit mid-ranking.
        """
        epoch = self.router.store.current_epoch
        if operations is None:
            operations = diff_plan(epoch, plan)
        return generate_and_rank(
            operations,
            plan,
            epoch,
            profile,
            self.cost_model,
        )

    # ------------------------------------------------------------------
    # Deployment
    # ------------------------------------------------------------------
    def deploy(
        self,
        specs: Sequence[RepartitionTransactionSpec],
        scheduler: Scheduler,
    ) -> RepartitionSession:
        """Open a session and let ``scheduler`` drive the deployment."""
        if self.session is not None and not self.session.is_complete:
            raise RuntimeError("a repartition session is already active")
        session = RepartitionSession(self.env, self.tm, self.metrics, specs)
        scheduler.bind(session)
        self.tm.scheduler = scheduler
        self.metrics.interval_observers.append(scheduler.on_interval)
        scheduler.begin()
        self.session = session
        self.scheduler = scheduler
        return session

    def deploy_plan(
        self,
        plan: PartitionPlan,
        profile: WorkloadProfile,
        scheduler: Scheduler,
    ) -> RepartitionSession:
        """Convenience: rank ``plan`` and deploy it in one call."""
        specs = self.rank_plan(plan, profile)
        return self.deploy(specs, scheduler)

    def extend(
        self, specs: Sequence[RepartitionTransactionSpec]
    ) -> list["Transaction"]:
        """Add ranked specs to the active session mid-deployment.

        The transaction manager holds exactly one scheduler slot, so
        concurrent plans (the workload-driven plan plus elastic drain or
        rebalance migrations) share the one session and scheduler; the
        scheduler is told about the newcomers through its
        :meth:`~repro.core.schedulers.base.Scheduler.on_extended` hook.
        """
        if self.session is None:
            raise RuntimeError("no repartition session to extend")
        new_txns = self.session.extend(specs)
        if self.scheduler is not None:
            self.scheduler.on_extended(new_txns)
        return new_txns
