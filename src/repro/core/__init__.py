"""SOAP core: Algorithm 1 ranking, sessions, schedulers, repartitioner."""

from .monitor import (
    AutoRepartitioner,
    AutoRepartitionerConfig,
    WorkloadMonitor,
)
from .ranking import RepartitionTransactionSpec, generate_and_rank
from .repartitioner import Repartitioner
from .schedulers import (
    AfterAllScheduler,
    ApplyAllScheduler,
    FeedbackConfig,
    FeedbackScheduler,
    HybridScheduler,
    PiggybackConfig,
    PiggybackScheduler,
    Scheduler,
)
from .session import RepartitionSession, RepState

__all__ = [
    "AfterAllScheduler",
    "ApplyAllScheduler",
    "AutoRepartitioner",
    "AutoRepartitionerConfig",
    "WorkloadMonitor",
    "FeedbackConfig",
    "FeedbackScheduler",
    "HybridScheduler",
    "PiggybackConfig",
    "PiggybackScheduler",
    "RepState",
    "RepartitionSession",
    "RepartitionTransactionSpec",
    "Repartitioner",
    "Scheduler",
    "generate_and_rank",
]
