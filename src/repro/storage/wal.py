"""Per-node write-ahead logging and crash recovery.

The paper's architecture gives the repartitioner access to "the system
logs" (§2.2), and its substrate (PostgreSQL) is a WAL-based engine.
This module supplies that durability substrate for the simulated nodes:

* :class:`WriteAheadLog` — an append-only, LSN-ordered record stream per
  node: BEGIN / WRITE / INSERT / DELETE / COMMIT / ABORT records plus
  periodic CHECKPOINT records carrying a full store snapshot;
* :func:`recover` — rebuilds a :class:`PartitionStore` from the log:
  start from the latest checkpoint, replay the effects of committed
  transactions, discard those of uncommitted/aborted ones (redo-only
  recovery, valid because effects are logged before they apply).

The live executor mutates stores directly (the simulation does not
crash mid-transaction by itself); tests and failure-injection tooling
use the WAL to verify that a node's state is always reconstructible.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from itertools import count
from typing import Any, Callable, Iterator, Optional, Union

from ..errors import StorageError
from ..types import TupleKey, TxnId
from .compact_store import CompactPartitionStore
from .partition_store import PartitionStore
from .record import Record, intern_payload

#: Any per-partition tuple store the WAL can snapshot and rebuild.
TupleStore = Union[PartitionStore, CompactPartitionStore]


class WalRecordType(enum.Enum):
    """Kinds of log records."""

    BEGIN = "begin"
    WRITE = "write"
    INSERT = "insert"
    DELETE = "delete"
    COMMIT = "commit"
    ABORT = "abort"
    CHECKPOINT = "checkpoint"


@dataclass(frozen=True, slots=True)
class WalRecord:
    """One log record; ``payload`` depends on the type.

    * WRITE: ``(key, new_value)``
    * INSERT: ``(key, value, size_bytes)``
    * DELETE: ``key``
    * CHECKPOINT: ``{key: (value, version, size_bytes)}`` snapshot
    """

    lsn: int
    type: WalRecordType
    txn_id: Optional[TxnId] = None
    payload: Any = None


class WriteAheadLog:
    """Append-only log for one partition's store."""

    __slots__ = ("partition_id", "_records", "_lsn", "_open_txns")

    def __init__(self, partition_id: int) -> None:
        self.partition_id = partition_id
        self._records: list[WalRecord] = []
        self._lsn = count(1)
        self._open_txns: set[TxnId] = set()

    def __len__(self) -> int:
        return len(self._records)

    def records(self) -> Iterator[WalRecord]:
        """Iterate all records in LSN order."""
        return iter(self._records)

    @property
    def last_lsn(self) -> int:
        """LSN of the newest record (0 when empty)."""
        return self._records[-1].lsn if self._records else 0

    @property
    def open_transactions(self) -> frozenset[TxnId]:
        """Transactions with a BEGIN but no COMMIT/ABORT record yet."""
        return frozenset(self._open_txns)

    # ------------------------------------------------------------------
    # Appending
    # ------------------------------------------------------------------
    def _append(
        self,
        record_type: WalRecordType,
        txn_id: Optional[TxnId] = None,
        payload: Any = None,
    ) -> WalRecord:
        record = WalRecord(
            lsn=next(self._lsn), type=record_type, txn_id=txn_id,
            payload=payload,
        )
        self._records.append(record)
        return record

    def log_begin(self, txn_id: TxnId) -> WalRecord:
        """A transaction started touching this node."""
        if txn_id in self._open_txns:
            raise StorageError(f"transaction {txn_id} already open in WAL")
        self._open_txns.add(txn_id)
        return self._append(WalRecordType.BEGIN, txn_id)

    def log_write(
        self, txn_id: TxnId, key: TupleKey, new_value: int
    ) -> WalRecord:
        """A tuple overwrite by an open transaction."""
        self._require_open(txn_id)
        return self._append(WalRecordType.WRITE, txn_id, (key, new_value))

    def log_insert(
        self, txn_id: TxnId, record: Record
    ) -> WalRecord:
        """A replica insertion by an open transaction."""
        self._require_open(txn_id)
        return self._append(
            WalRecordType.INSERT,
            txn_id,
            (record.key, record.value, record.size_bytes),
        )

    def log_delete(self, txn_id: TxnId, key: TupleKey) -> WalRecord:
        """A replica deletion by an open transaction."""
        self._require_open(txn_id)
        return self._append(WalRecordType.DELETE, txn_id, key)

    def log_commit(self, txn_id: TxnId) -> WalRecord:
        """The transaction committed; its effects are durable."""
        self._require_open(txn_id)
        self._open_txns.discard(txn_id)
        return self._append(WalRecordType.COMMIT, txn_id)

    def log_abort(self, txn_id: TxnId) -> WalRecord:
        """The transaction aborted; its effects must not survive."""
        self._require_open(txn_id)
        self._open_txns.discard(txn_id)
        return self._append(WalRecordType.ABORT, txn_id)

    def log_checkpoint(self, store: TupleStore) -> WalRecord:
        """Snapshot the store so recovery can skip older records.

        Only legal while no transaction is open (a *sharp* checkpoint):
        the executor applies writes to the store in place before commit,
        so a snapshot taken mid-transaction would embed uncommitted
        effects that recovery could then never roll back.

        Payload triples are interned: repeated checkpoints across
        crash/restart cycles (and tuples sharing a payload) reference
        one canonical ``(value, version, size_bytes)`` object instead of
        re-allocating identical tuples per snapshot.
        """
        if self._open_txns:
            raise StorageError(
                f"cannot checkpoint with open transaction(s) "
                f"{sorted(self._open_txns)}: the store snapshot would "
                f"capture their uncommitted writes"
            )
        snapshot = {}
        for key in store.keys():
            record = store.get(key)
            snapshot[key] = intern_payload(
                record.value, record.version, record.size_bytes
            )
        return self._append(WalRecordType.CHECKPOINT, payload=snapshot)

    def truncate_before_checkpoint(self) -> int:
        """Drop records older than the latest checkpoint; returns dropped count."""
        for index in range(len(self._records) - 1, -1, -1):
            if self._records[index].type is WalRecordType.CHECKPOINT:
                dropped = index
                self._records = self._records[index:]
                return dropped
        return 0

    def _require_open(self, txn_id: TxnId) -> None:
        if txn_id not in self._open_txns:
            raise StorageError(
                f"transaction {txn_id} has no BEGIN record in this WAL"
            )


def recover(
    log: WriteAheadLog,
    store_factory: Callable[[int], TupleStore] = PartitionStore,
) -> TupleStore:
    """Rebuild the partition store from the log (redo-only recovery).

    1. Scan for the latest CHECKPOINT and start from its snapshot.
    2. First pass over the tail: collect the set of committed txn ids.
    3. Second pass: apply WRITE/INSERT/DELETE records of committed
       transactions in LSN order; everything else is discarded (an
       uncommitted transaction's effects never become visible).

    ``store_factory`` selects the store implementation the node runs
    (standard ``PartitionStore`` or the memory-lean compact store), so a
    recovering node rejoins with the same storage tier it crashed with.
    """
    records = list(log.records())
    start = 0
    store = store_factory(log.partition_id)
    for index in range(len(records) - 1, -1, -1):
        if records[index].type is WalRecordType.CHECKPOINT:
            start = index + 1
            for key, (value, version, size) in records[index].payload.items():
                store.upsert(
                    Record(key=key, value=value, size_bytes=size,
                           version=version)
                )
            break

    tail = records[start:]
    committed = {
        r.txn_id for r in tail if r.type is WalRecordType.COMMIT
    }
    for record in tail:
        if record.txn_id not in committed:
            continue
        if record.type is WalRecordType.WRITE:
            key, value = record.payload
            existing = store.peek(key)
            if existing is not None:
                existing.write(value)
            else:
                # Value logging carries the whole new value, so a write
                # to a tuple that predates the log (no checkpoint taken
                # yet) can still be materialised.
                store.upsert(Record(key=key, value=value))
        elif record.type is WalRecordType.INSERT:
            key, value, size = record.payload
            store.upsert(Record(key=key, value=value, size_bytes=size))
        elif record.type is WalRecordType.DELETE:
            if record.payload in store:
                store.delete(record.payload)
    return store
