"""Tuple records stored by the data nodes.

The paper's table holds 500,000 tuples, each with a globally unique key
field and an integer content field, 8 bytes per tuple.  :class:`Record`
mirrors that, with a version counter so replica divergence can be
detected by tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..types import TupleKey

#: The paper's tuple size, used to charge network transfer during migration.
DEFAULT_TUPLE_SIZE_BYTES = 8


@dataclass(slots=True)
class Record:
    """One tuple: a unique key, an integer payload, and bookkeeping.

    Allocated once per stored tuple (500k at paper scale, per replica),
    so it is slotted: no per-instance ``__dict__``.
    """

    key: TupleKey
    value: int = 0
    size_bytes: int = DEFAULT_TUPLE_SIZE_BYTES
    version: int = field(default=0)

    def write(self, value: int) -> None:
        """Overwrite the payload, bumping the version."""
        self.value = value
        self.version += 1

    def copy(self) -> "Record":
        """Deep copy used when creating a replica on another partition."""
        return Record(
            key=self.key,
            value=self.value,
            size_bytes=self.size_bytes,
            version=self.version,
        )
