"""Tuple records stored by the data nodes.

The paper's table holds 500,000 tuples, each with a globally unique key
field and an integer content field, 8 bytes per tuple.  :class:`Record`
mirrors that, with a version counter so replica divergence can be
detected by tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..types import TupleKey

#: The paper's tuple size, used to charge network transfer during migration.
DEFAULT_TUPLE_SIZE_BYTES = 8

#: A record's payload as a plain immutable triple (value, version,
#: size_bytes) — the per-tuple content WAL checkpoints snapshot and
#: recovery replays.
Payload = tuple[int, int, int]

#: Canonical-payload table for :func:`intern_payload`, bounded so a
#: pathological value stream cannot grow it without limit.
_PAYLOAD_INTERN: dict[Payload, Payload] = {}
_PAYLOAD_INTERN_LIMIT = 1 << 16


def intern_payload(value: int, version: int, size_bytes: int) -> Payload:
    """Return a canonical ``(value, version, size_bytes)`` triple.

    WAL checkpoints snapshot one payload triple per resident tuple and
    crash/restart cycles re-create the same triples again on every
    checkpoint and replay; interning makes repeats share one object
    instead of allocating a fresh tuple each time.  The table is
    bounded: once it holds ``_PAYLOAD_INTERN_LIMIT`` distinct payloads
    it is cleared and rebuilt, so the cache can never outgrow the data
    it deduplicates.
    """
    payload = (value, version, size_bytes)
    cached = _PAYLOAD_INTERN.get(payload)
    if cached is not None:
        return cached
    if len(_PAYLOAD_INTERN) >= _PAYLOAD_INTERN_LIMIT:
        _PAYLOAD_INTERN.clear()
    _PAYLOAD_INTERN[payload] = payload
    return payload


@dataclass(slots=True)
class Record:
    """One tuple: a unique key, an integer payload, and bookkeeping.

    Allocated once per stored tuple (500k at paper scale, per replica),
    so it is slotted: no per-instance ``__dict__``.
    """

    key: TupleKey
    value: int = 0
    size_bytes: int = DEFAULT_TUPLE_SIZE_BYTES
    version: int = field(default=0)

    def write(self, value: int) -> None:
        """Overwrite the payload, bumping the version."""
        self.value = value
        self.version += 1

    def copy(self) -> "Record":
        """Deep copy used when creating a replica on another partition."""
        return Record(
            key=self.key,
            value=self.value,
            size_bytes=self.size_bytes,
            version=self.version,
        )
