"""Memory-lean per-partition tuple store for cluster-scale presets.

:class:`~repro.storage.partition_store.PartitionStore` allocates one
:class:`~repro.storage.record.Record` object per resident tuple.  At the
paper's 5-node/500k-tuple scale that is fine; at the production tier
(100–500 nodes × 1M–10M tuples) the per-record object graph dominates
the coordinator's memory.  :class:`CompactPartitionStore` keeps the same
behaviour behind the same interface while storing tuple state in flat
parallel ``array`` columns (8-byte machine ints — the paper's tuples
*are* 8-byte integers) indexed by a single key → slot dict:

* no ``Record`` object per tuple — :meth:`get`/:meth:`peek` hand out a
  tiny :class:`RecordView` *flyweight* that resolves by key on every
  attribute access, so views stay correct across slot compaction and
  writes through a view land in the columns;
* deletes compact by swap-with-last, keeping the columns dense;
* ``keys()`` iterates in insertion order (the index dict's order),
  matching ``PartitionStore``'s dict semantics exactly.

Behavioural equivalence with ``PartitionStore`` under random
insert/delete/get/write/keys interleavings is asserted by the shared
property suite in ``tests/storage/test_compact_store.py``.  The one
deliberate restriction: payloads must fit a signed 64-bit int (the
paper's 8-byte tuple), enforced by the ``array`` columns themselves.
"""

from __future__ import annotations

from array import array
from typing import Iterator, Optional

from ..errors import StorageError
from ..types import PartitionId, TupleKey
from .record import DEFAULT_TUPLE_SIZE_BYTES, Record


class RecordView:
    """Flyweight view of one resident tuple in a compact store.

    Resolves ``key`` → slot through the store's index on every access,
    so a held view survives slot compaction (swap-with-last deletes of
    *other* keys) and always reflects — and writes through to — the
    store's current columns.  Accessing a view whose tuple was deleted
    raises :class:`StorageError`, which would indicate a routing or
    undo-ordering bug.
    """

    __slots__ = ("_store", "key")

    def __init__(self, store: "CompactPartitionStore", key: TupleKey) -> None:
        self._store = store
        self.key = key

    def _slot(self) -> int:
        slot = self._store._index.get(self.key)
        if slot is None:
            raise StorageError(
                f"tuple {self.key} no longer resident on partition "
                f"{self._store.partition_id} (stale record view)"
            )
        return slot

    @property
    def value(self) -> int:
        return self._store._values[self._slot()]

    @value.setter
    def value(self, value: int) -> None:
        self._store._values[self._slot()] = value

    @property
    def version(self) -> int:
        return self._store._versions[self._slot()]

    @version.setter
    def version(self, version: int) -> None:
        self._store._versions[self._slot()] = version

    @property
    def size_bytes(self) -> int:
        return self._store._sizes[self._slot()]

    @size_bytes.setter
    def size_bytes(self, size_bytes: int) -> None:
        self._store._sizes[self._slot()] = size_bytes

    def write(self, value: int) -> None:
        """Overwrite the payload, bumping the version (Record.write)."""
        slot = self._slot()
        store = self._store
        store._values[slot] = value
        store._versions[slot] += 1

    def copy(self) -> Record:
        """Detached :class:`Record` snapshot (migration/replica copies)."""
        slot = self._slot()
        store = self._store
        return Record(
            key=self.key,
            value=store._values[slot],
            size_bytes=store._sizes[slot],
            version=store._versions[slot],
        )

    def __repr__(self) -> str:
        return (
            f"RecordView(key={self.key}, value={self.value}, "
            f"size_bytes={self.size_bytes}, version={self.version})"
        )


class CompactPartitionStore:
    """Flat-column drop-in replacement for ``PartitionStore``.

    Same interface, counters, and error behaviour; tuple state lives in
    three parallel ``array('q')`` columns plus one key → slot dict
    instead of a dict of per-tuple ``Record`` objects.
    """

    __slots__ = (
        "partition_id",
        "_index",
        "_keys",
        "_values",
        "_versions",
        "_sizes",
        "inserts",
        "deletes",
    )

    def __init__(self, partition_id: PartitionId) -> None:
        self.partition_id = partition_id
        self._index: dict[TupleKey, int] = {}
        self._keys = array("q")
        self._values = array("q")
        self._versions = array("q")
        self._sizes = array("q")
        self.inserts = 0
        self.deletes = 0

    def __len__(self) -> int:
        return len(self._index)

    def __contains__(self, key: TupleKey) -> bool:
        return key in self._index

    def keys(self) -> Iterator[TupleKey]:
        """Iterate over resident keys (insertion order)."""
        return iter(self._index)

    def get(self, key: TupleKey) -> RecordView:
        """Fetch a live view of the resident record for ``key``.

        Raises :class:`StorageError` if the tuple is not resident here —
        that indicates a routing bug, never a user error.
        """
        if key not in self._index:
            raise StorageError(
                f"tuple {key} not resident on partition {self.partition_id}"
            )
        return RecordView(self, key)

    def peek(self, key: TupleKey) -> Optional[RecordView]:
        """Fetch a live view if resident, else ``None``."""
        if key not in self._index:
            return None
        return RecordView(self, key)

    def _append(self, record: "Record | RecordView") -> None:
        self._index[record.key] = len(self._keys)
        self._keys.append(record.key)
        self._values.append(record.value)
        self._versions.append(record.version)
        self._sizes.append(record.size_bytes)

    def insert(self, record: "Record | RecordView") -> None:
        """Insert a replica; duplicates are a consistency violation."""
        if record.key in self._index:
            raise StorageError(
                f"tuple {record.key} already resident on partition "
                f"{self.partition_id}"
            )
        self._append(record)
        self.inserts += 1

    def upsert(self, record: "Record | RecordView") -> None:
        """Insert or overwrite a replica (used when replaying migrations)."""
        slot = self._index.get(record.key)
        if slot is None:
            self._append(record)
            self.inserts += 1
            return
        self._values[slot] = record.value
        self._versions[slot] = record.version
        self._sizes[slot] = record.size_bytes

    def delete(self, key: TupleKey) -> Record:
        """Remove and return (a detached copy of) the replica of ``key``."""
        slot = self._index.pop(key, None)
        if slot is None:
            raise StorageError(
                f"cannot delete tuple {key}: not resident on partition "
                f"{self.partition_id}"
            )
        record = Record(
            key=key,
            value=self._values[slot],
            size_bytes=self._sizes[slot],
            version=self._versions[slot],
        )
        last = len(self._keys) - 1
        if slot != last:
            # Swap-with-last keeps the columns dense; held RecordViews
            # are unaffected because they resolve by key, not slot.
            moved_key = self._keys[last]
            self._keys[slot] = moved_key
            self._values[slot] = self._values[last]
            self._versions[slot] = self._versions[last]
            self._sizes[slot] = self._sizes[last]
            self._index[moved_key] = slot
        del self._keys[last]
        del self._values[last]
        del self._versions[last]
        del self._sizes[last]
        self.deletes += 1
        return record

    def read(self, key: TupleKey) -> int:
        """Read the payload of ``key``."""
        slot = self._index.get(key)
        if slot is None:
            raise StorageError(
                f"tuple {key} not resident on partition {self.partition_id}"
            )
        return self._values[slot]

    def write(self, key: TupleKey, value: int) -> None:
        """Write the payload of ``key`` (bumps the version)."""
        slot = self._index.get(key)
        if slot is None:
            raise StorageError(
                f"tuple {key} not resident on partition {self.partition_id}"
            )
        self._values[slot] = value
        self._versions[slot] += 1


#: Default tuple size, re-exported for symmetry with the record module.
__all__ = [
    "CompactPartitionStore",
    "RecordView",
    "DEFAULT_TUPLE_SIZE_BYTES",
]
