"""Per-partition in-memory tuple store.

Each data node hosts exactly one partition (as in the paper's 5-node /
5-partition EC2 setup), and the store is a hash index from key to
:class:`~repro.storage.record.Record`.  The store tracks insert/delete
counters so tests and benchmarks can assert on repartitioning activity.
"""

from __future__ import annotations

from typing import Iterator, Optional

from ..errors import StorageError
from ..types import PartitionId, TupleKey
from .record import Record


class PartitionStore:
    """Holds the replicas of tuples resident on one partition."""

    def __init__(self, partition_id: PartitionId) -> None:
        self.partition_id = partition_id
        self._records: dict[TupleKey, Record] = {}
        self.inserts = 0
        self.deletes = 0

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, key: TupleKey) -> bool:
        return key in self._records

    def keys(self) -> Iterator[TupleKey]:
        """Iterate over resident keys."""
        return iter(self._records)

    def get(self, key: TupleKey) -> Record:
        """Fetch the resident record for ``key``.

        Raises :class:`StorageError` if the tuple is not resident here —
        that indicates a routing bug, never a user error.
        """
        record = self._records.get(key)
        if record is None:
            raise StorageError(
                f"tuple {key} not resident on partition {self.partition_id}"
            )
        return record

    def peek(self, key: TupleKey) -> Optional[Record]:
        """Fetch the record if resident, else ``None``."""
        return self._records.get(key)

    def insert(self, record: Record) -> None:
        """Insert a replica; duplicates are a consistency violation."""
        if record.key in self._records:
            raise StorageError(
                f"tuple {record.key} already resident on partition "
                f"{self.partition_id}"
            )
        self._records[record.key] = record
        self.inserts += 1

    def upsert(self, record: Record) -> None:
        """Insert or overwrite a replica (used when replaying migrations)."""
        if record.key not in self._records:
            self.inserts += 1
        self._records[record.key] = record

    def delete(self, key: TupleKey) -> Record:
        """Remove and return the replica of ``key``."""
        record = self._records.pop(key, None)
        if record is None:
            raise StorageError(
                f"cannot delete tuple {key}: not resident on partition "
                f"{self.partition_id}"
            )
        self.deletes += 1
        return record

    def read(self, key: TupleKey) -> int:
        """Read the payload of ``key``."""
        return self.get(key).value

    def write(self, key: TupleKey, value: int) -> None:
        """Write the payload of ``key``."""
        self.get(key).write(value)
