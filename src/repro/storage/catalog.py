"""Schema catalog: table definitions shared by router and workload.

The paper uses a single table of 500,000 8-byte tuples; the catalog
nevertheless supports several tables so the library generalises beyond
the paper's exact setup.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import StorageError
from ..types import TupleKey
from .record import DEFAULT_TUPLE_SIZE_BYTES


@dataclass(frozen=True)
class TableSchema:
    """Static description of one table."""

    name: str
    tuple_count: int
    tuple_size_bytes: int = DEFAULT_TUPLE_SIZE_BYTES

    def __post_init__(self) -> None:
        if self.tuple_count < 0:
            raise StorageError(f"negative tuple count for table {self.name}")
        if self.tuple_size_bytes <= 0:
            raise StorageError(f"non-positive tuple size for table {self.name}")

    def contains_key(self, key: TupleKey) -> bool:
        """Whether ``key`` falls in this table's key space ``[0, n)``."""
        return 0 <= key < self.tuple_count


class Catalog:
    """Registry of table schemas."""

    def __init__(self) -> None:
        self._tables: dict[str, TableSchema] = {}

    def add_table(self, schema: TableSchema) -> None:
        """Register a table; re-registering a name is an error."""
        if schema.name in self._tables:
            raise StorageError(f"table {schema.name!r} already registered")
        self._tables[schema.name] = schema

    def table(self, name: str) -> TableSchema:
        """Look up a table schema by name."""
        schema = self._tables.get(name)
        if schema is None:
            raise StorageError(f"unknown table {name!r}")
        return schema

    def tables(self) -> list[TableSchema]:
        """All registered schemas, in registration order."""
        return list(self._tables.values())

    def __contains__(self, name: str) -> bool:
        return name in self._tables
