"""In-memory storage substrate: records, partition stores, and the catalog."""

from .catalog import Catalog, TableSchema
from .partition_store import PartitionStore
from .record import DEFAULT_TUPLE_SIZE_BYTES, Record
from .wal import WalRecord, WalRecordType, WriteAheadLog, recover

__all__ = [
    "Catalog",
    "DEFAULT_TUPLE_SIZE_BYTES",
    "PartitionStore",
    "Record",
    "TableSchema",
    "WalRecord",
    "WalRecordType",
    "WriteAheadLog",
    "recover",
]
