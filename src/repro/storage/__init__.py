"""In-memory storage substrate: records, partition stores, and the catalog."""

from .catalog import Catalog, TableSchema
from .compact_store import CompactPartitionStore, RecordView
from .partition_store import PartitionStore
from .record import DEFAULT_TUPLE_SIZE_BYTES, Record, intern_payload
from .wal import TupleStore, WalRecord, WalRecordType, WriteAheadLog, recover

__all__ = [
    "Catalog",
    "CompactPartitionStore",
    "DEFAULT_TUPLE_SIZE_BYTES",
    "PartitionStore",
    "Record",
    "RecordView",
    "TableSchema",
    "TupleStore",
    "WalRecord",
    "WalRecordType",
    "WriteAheadLog",
    "intern_payload",
    "recover",
]
