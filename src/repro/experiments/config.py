"""Experiment configuration (paper §4.1 "Experimental Configuration").

An :class:`ExperimentConfig` captures one cell of the paper's evaluation
matrix: workload distribution (Zipf/Uniform) × load level (High/Low) ×
α (fraction of transactions to fix) × scheduling algorithm.

Four scale presets are provided:

* ``paper_scale()`` — the paper's literal sizes (500k tuples, 23k-30k
  transaction types, 45-minute runs).  Faithful but slow in a pure-
  Python simulator.
* ``medium_scale()`` — thousands of types, the paper's full 120-interval
  window; minutes per run.
* ``bench_scale()`` (default) — a proportionally scaled-down system that
  preserves every ratio that drives the results (offered load relative
  to capacity, repartition work relative to capacity, distributed-vs-
  local cost factor, interval structure), so the figures keep their
  shape while a full run takes seconds.
* ``production_scale()`` — the cluster-scale tier (100-500 nodes,
  1M-10M tuples) exercising the memory-lean storage/routing fast paths;
  the ``BENCH_scale.json`` perf tier is built on it.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, replace
from typing import Any, Optional

from ..cluster.cluster import ClusterConfig
from ..elasticity import ElasticityEvent, ElasticityScheduleConfig
from ..errors import ConfigError
from ..faults import FaultEvent, FaultScheduleConfig
from ..workload.generator import (
    PAPER_TUPLE_COUNT,
    PAPER_UNIFORM_TYPES,
    PAPER_ZIPF_S,
    PAPER_ZIPF_TYPES,
    WorkloadConfig,
)

#: Load levels (paper §4.1): offered load as a fraction of capacity
#: under the original (pre-repartitioning) plan.
HIGH_LOAD_UTILISATION = 1.3
LOW_LOAD_UTILISATION = 0.65

SCHEDULER_NAMES = ("ApplyAll", "AfterAll", "Feedback", "Piggyback", "Hybrid")


@dataclass(frozen=True)
class CostConfig:
    """Cost-model parameters."""

    base_cost: float = 1.0
    #: Moving one tuple (insert + delete + index maintenance + transfer)
    #: costs a multiple of a simple 5-query transaction's work; this
    #: ratio makes ApplyAll's full-plan deployment span several
    #: intervals, as in the paper (20/12/4 intervals for α=100/60/20%).
    rep_op_cost: float = 2.0
    #: Fraction of an op's cost saved when piggybacked (§3.4's saved
    #: locking + distributed-commit overhead).
    piggyback_discount: float = 0.75


@dataclass(frozen=True)
class RuntimeConfig:
    """Execution-environment parameters."""

    interval_s: float = 20.0
    warmup_intervals: int = 10
    measure_intervals: int = 120
    lock_timeout_s: float = 5.0
    #: Transactions older than this when dispatched are aborted (client /
    #: JTA transaction timeout).  ``None`` disables the deadline.
    queue_timeout_s: Optional[float] = 80.0
    rep_op_failure_probability: float = 0.0
    max_concurrent: int = 50
    max_attempts: int = 2
    retry_delay_s: float = 0.1
    #: PostgreSQL isolation level of the paper's prototype (§4.1);
    #: "serializable" is available as an ablation.
    isolation: str = "read_committed"
    #: Fixed per-transaction begin/commit work (granularity ablation).
    per_txn_overhead_units: float = 0.0
    #: Retry backoff policy (used heavily under fault injection; the
    #: defaults reproduce the fixed-delay behaviour for fault-free runs
    #: with the standard two-attempt budget).
    retry_backoff_factor: float = 2.0
    max_retry_delay_s: float = 10.0
    retry_jitter: float = 0.0
    #: What a transaction does when a tuple it routed moved under it:
    #: ``"follow"`` re-routes to the tuple's new home (the paper's
    #: forwarding behaviour); ``"abort"`` raises a retryable
    #: ``stale_route`` abort judged against the epoch pinned at
    #: admission (optimistic routing validation, an ablation).
    stale_route_policy: str = "follow"
    #: Bound on the partition-map store's epoch delta log; epochs older
    #: than the window (and unpinned) become unreadable.
    epoch_log_limit: int = 1024
    #: Which per-partition tuple-store implementation the nodes run:
    #: ``"standard"`` (one Record object per tuple), ``"compact"`` (flat
    #: array columns, memory-lean), or ``"auto"`` — compact once the
    #: dataset reaches the cluster-scale threshold, standard below it.
    storage_tier: str = "auto"

    def __post_init__(self) -> None:
        if self.storage_tier not in ("auto", "standard", "compact"):
            raise ConfigError(
                f"unknown storage_tier {self.storage_tier!r}; "
                "expected 'auto', 'standard', or 'compact'"
            )
        if self.interval_s <= 0:
            raise ConfigError("interval must be positive")
        if self.warmup_intervals < 0 or self.measure_intervals < 1:
            raise ConfigError("bad interval counts")
        if self.queue_timeout_s is not None and self.queue_timeout_s <= 0:
            raise ConfigError("queue timeout must be positive or None")
        if self.stale_route_policy not in ("follow", "abort"):
            raise ConfigError(
                f"unknown stale_route_policy {self.stale_route_policy!r}; "
                "expected 'follow' or 'abort'"
            )
        if self.epoch_log_limit < 1:
            raise ConfigError("epoch log limit must be >= 1")


@dataclass(frozen=True)
class SchedulerConfig:
    """Strategy-specific knobs (paper §3.3-§3.5 and Table 1)."""

    #: Feedback/Hybrid setpoint on the (normal+rep)/normal scale; when
    #: ``None`` the Table 1 value for the experiment cell is used.
    setpoint: Optional[float] = None
    kp: float = 1.0
    ki: float = 0.0
    kd: float = 0.0
    max_promotions_per_interval: int = 20
    max_ops_per_carrier: int = 10


@dataclass(frozen=True)
class ExperimentConfig:
    """One experiment cell."""

    name: str = "experiment"
    seed: int = 0
    scheduler: str = "Hybrid"
    distribution: str = "zipf"
    load: str = "high"
    alpha: float = 1.0
    cluster: ClusterConfig = field(
        default_factory=lambda: ClusterConfig(
            node_count=5, capacity_units_per_s=4.0
        )
    )
    workload: WorkloadConfig = field(
        default_factory=lambda: WorkloadConfig(
            tuple_count=3_000, distinct_types=600
        )
    )
    cost: CostConfig = field(default_factory=CostConfig)
    runtime: RuntimeConfig = field(default_factory=RuntimeConfig)
    scheduling: SchedulerConfig = field(default_factory=SchedulerConfig)
    #: Optional crash/restart schedule; ``None`` (or a schedule with
    #: nothing in it) runs fault-free with zero overhead.
    faults: Optional[FaultScheduleConfig] = None
    #: Optional scale-out/in schedule; ``None`` (or a schedule with
    #: nothing in it) runs with a static node set and zero overhead.
    elasticity: Optional[ElasticityScheduleConfig] = None

    def __post_init__(self) -> None:
        if self.scheduler not in SCHEDULER_NAMES:
            raise ConfigError(
                f"unknown scheduler {self.scheduler!r}; "
                f"expected one of {SCHEDULER_NAMES}"
            )
        if self.distribution not in ("zipf", "uniform"):
            raise ConfigError(f"unknown distribution {self.distribution!r}")
        if self.load not in ("high", "low"):
            raise ConfigError(f"unknown load level {self.load!r}")
        if not 0.0 < self.alpha <= 1.0:
            raise ConfigError(f"alpha must be in (0, 1]: {self.alpha}")

    @property
    def utilisation_target(self) -> float:
        """Offered load relative to capacity under the original plan."""
        return (
            HIGH_LOAD_UTILISATION if self.load == "high" else LOW_LOAD_UTILISATION
        )

    def with_overrides(self, **kwargs) -> "ExperimentConfig":
        """Copy with replaced top-level fields."""
        return replace(self, **kwargs)


# ---------------------------------------------------------------------------
# Plain-dict (JSON-safe) round-tripping
# ---------------------------------------------------------------------------
# The parallel engine ships configs to worker processes as one shared base
# document plus a tiny per-cell delta, so a config must survive
# dataclass -> dict -> JSON -> dict -> dataclass exactly (field equality,
# and therefore an identical cache key).

#: Top-level ExperimentConfig fields that hold nested config dataclasses
#: rebuilt with plain keyword arguments.
_NESTED_CONFIG_TYPES = {
    "cluster": ClusterConfig,
    "workload": WorkloadConfig,
    "cost": CostConfig,
    "runtime": RuntimeConfig,
    "scheduling": SchedulerConfig,
}


def config_to_dict(config: ExperimentConfig) -> dict[str, Any]:
    """``config`` as a JSON-safe nested dict of primitives."""
    return asdict(config)


def _field_from_dict(name: str, value: Any) -> Any:
    if name == "faults":
        if value is None:
            return None
        rest = {key: val for key, val in value.items() if key != "events"}
        return FaultScheduleConfig(
            events=tuple(FaultEvent(**event) for event in value["events"]),
            **rest,
        )
    if name == "elasticity":
        if value is None:
            return None
        rest = {key: val for key, val in value.items() if key != "events"}
        return ElasticityScheduleConfig(
            events=tuple(
                ElasticityEvent(**event) for event in value["events"]
            ),
            **rest,
        )
    nested = _NESTED_CONFIG_TYPES.get(name)
    if nested is not None:
        return nested(**value)
    return value


def config_from_dict(data: dict[str, Any]) -> ExperimentConfig:
    """Rebuild an :class:`ExperimentConfig` from :func:`config_to_dict` output.

    Tolerates the JSON round trip (tuples come back as lists) and raises
    the usual :class:`~repro.errors.ConfigError` validation on bad values.
    """
    return ExperimentConfig(
        **{name: _field_from_dict(name, value) for name, value in data.items()}
    )


def config_delta(
    base: ExperimentConfig, config: ExperimentConfig
) -> dict[str, Any]:
    """Top-level fields of ``config`` that differ from ``base``.

    Applying the delta over ``base``'s dict form reconstructs ``config``
    exactly: ``config_from_dict({**config_to_dict(base), **delta})``.
    Cells of one figure grid share everything but scheduler/α/name, so
    the delta is a handful of scalars instead of the full document.
    """
    base_fields = asdict(base)
    return {
        name: value
        for name, value in asdict(config).items()
        if value != base_fields[name]
    }


def bench_scale(
    scheduler: str = "Hybrid",
    distribution: str = "zipf",
    load: str = "high",
    alpha: float = 1.0,
    seed: int = 0,
    measure_intervals: int = 40,
    warmup_intervals: int = 5,
    faults: Optional[FaultScheduleConfig] = None,
    elasticity: Optional[ElasticityScheduleConfig] = None,
) -> ExperimentConfig:
    """The scaled-down preset the benchmark harness uses."""
    # Type counts mirror the paper's 30,000 (uniform) vs 23,457 (Zipf)
    # proportion; keeping arrivals-per-interval well below the type count
    # preserves the paper's "few carriers under uniform/low load" effect
    # that separates Piggyback from Hybrid.
    distinct = 600 if distribution == "uniform" else 470
    workload = WorkloadConfig(
        tuple_count=3_000,
        distinct_types=distinct,
        distribution=distribution,
        zipf_s=PAPER_ZIPF_S,
    )
    runtime = RuntimeConfig(
        measure_intervals=measure_intervals,
        warmup_intervals=warmup_intervals,
    )
    return ExperimentConfig(
        name=f"{scheduler}-{distribution}-{load}-a{int(alpha * 100)}",
        seed=seed,
        scheduler=scheduler,
        distribution=distribution,
        load=load,
        alpha=alpha,
        workload=workload,
        runtime=runtime,
        faults=faults,
        elasticity=elasticity,
    )


def medium_scale(
    scheduler: str = "Hybrid",
    distribution: str = "zipf",
    load: str = "high",
    alpha: float = 1.0,
    seed: int = 0,
) -> ExperimentConfig:
    """A higher-fidelity preset between bench and paper scale.

    ~4,000 transaction types over 25,000 tuples with the paper's full
    120-interval measurement window; a run takes a few minutes rather
    than the bench preset's seconds.
    """
    distinct = 4_000 if distribution == "uniform" else 3_200
    workload = WorkloadConfig(
        tuple_count=25_000,
        distinct_types=distinct,
        distribution=distribution,
        zipf_s=PAPER_ZIPF_S,
    )
    cluster = ClusterConfig(node_count=5, capacity_units_per_s=28.0)
    runtime = RuntimeConfig(
        measure_intervals=120,
        warmup_intervals=10,
        max_concurrent=150,
    )
    return ExperimentConfig(
        name=f"medium-{scheduler}-{distribution}-{load}-a{int(alpha * 100)}",
        seed=seed,
        scheduler=scheduler,
        distribution=distribution,
        load=load,
        alpha=alpha,
        cluster=cluster,
        workload=workload,
        runtime=runtime,
    )


def production_scale(
    scheduler: str = "Hybrid",
    distribution: str = "zipf",
    load: str = "high",
    alpha: float = 1.0,
    seed: int = 0,
    node_count: int = 100,
    tuple_count: int = 1_000_000,
    measure_intervals: int = 40,
    warmup_intervals: int = 5,
) -> ExperimentConfig:
    """The cluster-scale tier: 100-500 nodes, 1M-10M tuples.

    Everything the paper fixes at 5-node/500k scale is scaled
    proportionally: transaction-type counts keep the paper's
    types-per-tuple ratios (30,000/500,000 uniform, 23,457/500,000
    Zipf), per-node capacity stays at the medium preset's ~40 units/s so
    offered-load calibration is unchanged, and the admission window
    grows with the cluster.  ``storage_tier="auto"`` resolves to the
    memory-lean compact store and dense partition map at these sizes.
    """
    if node_count < 1:
        raise ConfigError(f"need at least one node, got {node_count}")
    if tuple_count < 500_000:
        raise ConfigError(
            f"production scale starts at 500k tuples, got {tuple_count}"
        )
    if distribution == "uniform":
        distinct = tuple_count * PAPER_UNIFORM_TYPES // PAPER_TUPLE_COUNT
    else:
        distinct = tuple_count * PAPER_ZIPF_TYPES // PAPER_TUPLE_COUNT
    workload = WorkloadConfig(
        tuple_count=tuple_count,
        distinct_types=distinct,
        distribution=distribution,
        zipf_s=PAPER_ZIPF_S,
    )
    cluster = ClusterConfig(node_count=node_count, capacity_units_per_s=40.0)
    runtime = RuntimeConfig(
        measure_intervals=measure_intervals,
        warmup_intervals=warmup_intervals,
        max_concurrent=max(2_000, 20 * node_count),
        storage_tier="auto",
    )
    return ExperimentConfig(
        name=(
            f"production-{scheduler}-{distribution}-{load}"
            f"-n{node_count}-a{int(alpha * 100)}"
        ),
        seed=seed,
        scheduler=scheduler,
        distribution=distribution,
        load=load,
        alpha=alpha,
        cluster=cluster,
        workload=workload,
        runtime=runtime,
    )


def paper_scale(
    scheduler: str = "Hybrid",
    distribution: str = "zipf",
    load: str = "high",
    alpha: float = 1.0,
    seed: int = 0,
) -> ExperimentConfig:
    """The paper's literal configuration (slow; provided for fidelity).

    5 nodes, 500,000 tuples, 30,000 (uniform) / 23,457 (Zipf s=1.16)
    transaction types, 20 s intervals, 10 warm-up intervals, 45-minute
    runs (125 measured intervals following the 10 warm-up ones).
    """
    distinct = (
        PAPER_ZIPF_TYPES if distribution == "zipf" else PAPER_UNIFORM_TYPES
    )
    workload = WorkloadConfig(
        tuple_count=PAPER_TUPLE_COUNT,
        distinct_types=distinct,
        distribution=distribution,
        zipf_s=PAPER_ZIPF_S,
    )
    cluster = ClusterConfig(node_count=5, capacity_units_per_s=400.0)
    runtime = RuntimeConfig(
        measure_intervals=125,
        warmup_intervals=10,
        max_concurrent=500,
    )
    return ExperimentConfig(
        name=f"paper-{scheduler}-{distribution}-{load}-a{int(alpha * 100)}",
        seed=seed,
        scheduler=scheduler,
        distribution=distribution,
        load=load,
        alpha=alpha,
        cluster=cluster,
        workload=workload,
        runtime=runtime,
    )
