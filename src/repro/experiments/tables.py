"""Table 1: the SP (setpoint) values used in the paper's experiments.

The setpoints are on the ``(normal + repartition) / normal`` cost-ratio
scale (see :mod:`repro.core.schedulers.feedback` for the rationale).
All experiments use the same controller gains: Kp = 1, Ki = 0, Kd = 0.
"""

from __future__ import annotations

from ..errors import ConfigError

#: Controller gains used across all paper experiments (§4.1).
PAPER_GAINS = {"kp": 1.0, "ki": 0.0, "kd": 0.0}

#: Table 1 — (algorithm, distribution, load, alpha) -> SP.
SP_TABLE: dict[tuple[str, str, str, float], float] = {
    # Feedback / Zipf
    ("Feedback", "zipf", "high", 1.0): 1.05,
    ("Feedback", "zipf", "high", 0.6): 1.05,
    ("Feedback", "zipf", "high", 0.2): 1.10,
    ("Feedback", "zipf", "low", 1.0): 1.05,
    ("Feedback", "zipf", "low", 0.6): 1.03,
    ("Feedback", "zipf", "low", 0.2): 1.015,
    # Feedback / Uniform
    ("Feedback", "uniform", "high", 1.0): 1.25,
    ("Feedback", "uniform", "high", 0.6): 1.25,
    ("Feedback", "uniform", "high", 0.2): 1.25,
    ("Feedback", "uniform", "low", 1.0): 1.02,
    ("Feedback", "uniform", "low", 0.6): 1.03,
    ("Feedback", "uniform", "low", 0.2): 1.02,
    # Hybrid / Zipf
    ("Hybrid", "zipf", "high", 1.0): 1.05,
    ("Hybrid", "zipf", "high", 0.6): 1.05,
    ("Hybrid", "zipf", "high", 0.2): 1.05,
    ("Hybrid", "zipf", "low", 1.0): 1.05,
    ("Hybrid", "zipf", "low", 0.6): 1.03,
    ("Hybrid", "zipf", "low", 0.2): 1.05,
    # Hybrid / Uniform
    ("Hybrid", "uniform", "high", 1.0): 1.05,
    ("Hybrid", "uniform", "high", 0.6): 1.05,
    ("Hybrid", "uniform", "high", 0.2): 1.05,
    ("Hybrid", "uniform", "low", 1.0): 1.03,
    ("Hybrid", "uniform", "low", 0.6): 1.05,
    ("Hybrid", "uniform", "low", 0.2): 1.05,
}


def setpoint_for(
    algorithm: str, distribution: str, load: str, alpha: float
) -> float:
    """Look up the Table 1 SP for an experiment cell.

    ``alpha`` is matched to the nearest of the paper's {1.0, 0.6, 0.2}.
    Algorithms without a feedback module (ApplyAll, AfterAll, Piggyback)
    have no setpoint; asking for one is an error.
    """
    if algorithm not in ("Feedback", "Hybrid"):
        raise ConfigError(f"{algorithm} has no feedback setpoint")
    paper_alphas = (1.0, 0.6, 0.2)
    nearest = min(paper_alphas, key=lambda a: abs(a - alpha))
    key = (algorithm, distribution, load, nearest)
    if key not in SP_TABLE:
        raise ConfigError(f"no Table 1 entry for {key}")
    return SP_TABLE[key]


def format_table1() -> str:
    """Render Table 1 in the paper's layout."""
    lines = [
        "Table 1: SP value for Experiments",
        f"{'Algorithm':<10} {'Workload':<9} "
        f"{'H a=100%':>9} {'H a=60%':>8} {'H a=20%':>8} "
        f"{'L a=100%':>9} {'L a=60%':>8} {'L a=20%':>8}",
    ]
    for algorithm in ("Feedback", "Hybrid"):
        for distribution in ("zipf", "uniform"):
            cells = []
            for load in ("high", "low"):
                for alpha in (1.0, 0.6, 0.2):
                    cells.append(
                        SP_TABLE[(algorithm, distribution, load, alpha)]
                    )
            lines.append(
                f"{algorithm:<10} {distribution.capitalize():<9} "
                f"{cells[0]:>9} {cells[1]:>8} {cells[2]:>8} "
                f"{cells[3]:>9} {cells[4]:>8} {cells[5]:>8}"
            )
    return "\n".join(lines)
