"""Experiment runner: assemble the system, run one evaluation cell.

Mirrors the paper's procedure (§4.1): build the cluster and dataset,
warm the system up for 10 intervals of pure normal traffic, then start
the repartitioning with the chosen scheduler and measure per-interval
RepRate / throughput / latency / failure rate until the run ends.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Generator, Optional

from ..cluster.cluster import Cluster
from ..cluster.node import StoreFactory
from ..core.repartitioner import Repartitioner
from ..core.schedulers import (
    AfterAllScheduler,
    ApplyAllScheduler,
    FeedbackConfig,
    FeedbackScheduler,
    HybridScheduler,
    PiggybackConfig,
    PiggybackScheduler,
    Scheduler,
)
from ..core.session import RepartitionSession
from ..elasticity import ElasticityController
from ..errors import ConfigError
from ..faults import FaultInjector
from ..metrics.collectors import IntervalRecord, MetricsCollector
from ..metrics.report import summarise
from ..partitioning.cost_model import CostModel
from ..partitioning.optimizer import RepartitionOptimizer
from ..routing.dense_map import DensePartitionMap
from ..routing.epoch import PartitionMapStore
from ..routing.partition_map import PartitionMap
from ..routing.router import QueryRouter
from ..sim.environment import Environment
from ..sim.events import Event
from ..sim.random import RandomStreams
from ..storage.compact_store import CompactPartitionStore
from ..storage.partition_store import PartitionStore
from ..txn.executor import ExecutorConfig, TransactionExecutor
from ..txn.manager import TransactionManager, TransactionManagerConfig
from ..txn.two_phase_commit import TwoPhaseCommitCoordinator
from ..workload.arrivals import (
    ArrivalConfig,
    PoissonArrivalProcess,
    calibrate_rate,
)
from ..workload.dataset import (
    PlacementConfig,
    choose_distributed_types,
    initial_placement,
    load_stores,
    place_unprofiled_keys,
)
from ..workload.generator import WorkloadSampler, build_profile
from ..workload.profile import WorkloadProfile
from .config import ExperimentConfig
from .tables import setpoint_for


#: ``storage_tier="auto"`` switches to the memory-lean storage stack
#: (compact tuple stores + dense partition map) at this dataset size.
#: Well above every figure preset (3k-500k tuples use the standard
#: stack unchanged) and below the production tier's 1M-tuple floor.
COMPACT_STORE_THRESHOLD = 200_000


def uses_compact_storage(config: ExperimentConfig) -> bool:
    """Whether this experiment runs the memory-lean storage stack."""
    tier = config.runtime.storage_tier
    if tier == "compact":
        return True
    if tier == "standard":
        return False
    return config.workload.tuple_count >= COMPACT_STORE_THRESHOLD


def resolve_store_factory(config: ExperimentConfig) -> StoreFactory:
    """Per-node tuple-store implementation for this experiment."""
    return (
        CompactPartitionStore
        if uses_compact_storage(config)
        else PartitionStore
    )


def make_partition_map(config: ExperimentConfig) -> PartitionMap:
    """Empty partition map of the tier-appropriate implementation.

    The generated key space is exactly ``range(tuple_count)``, so the
    dense array-backed map covers every key at the compact tier.
    """
    if uses_compact_storage(config):
        return DensePartitionMap(config.workload.tuple_count)
    return PartitionMap()


@dataclass
class System:
    """All assembled components of one experiment (exposed for examples)."""

    config: ExperimentConfig
    env: Environment
    streams: RandomStreams
    cluster: Cluster
    profile: WorkloadProfile
    distributed_type_ids: set[int]
    store: PartitionMapStore
    router: QueryRouter
    cost_model: CostModel
    executor: TransactionExecutor
    tm: TransactionManager
    metrics: MetricsCollector
    arrivals: PoissonArrivalProcess
    repartitioner: Repartitioner
    arrival_rate_txn_per_s: float
    scheduler: Optional[Scheduler] = None
    session: Optional[RepartitionSession] = None
    fault_injector: Optional[FaultInjector] = None
    elasticity_controller: Optional[ElasticityController] = None


@dataclass
class ExperimentResult:
    """Outcome of one experiment run."""

    config: ExperimentConfig
    intervals: list[IntervalRecord]
    repartition_start_interval: int
    rep_ops_total: int
    repartition_completed_at: Optional[float]
    arrival_rate_txn_per_s: float
    summary: dict[str, float] = field(default_factory=dict)

    @property
    def measured(self) -> list[IntervalRecord]:
        """Intervals from repartition start onward (the paper's x-axis)."""
        return self.intervals[self.repartition_start_interval:]

    @property
    def completion_interval(self) -> Optional[int]:
        """Interval index (relative to start) when RepRate hit 1.0."""
        for i, record in enumerate(self.measured):
            if record.rep_ops_total and record.rep_rate >= 1.0:
                return i
        return None


def make_scheduler(
    config: ExperimentConfig, normal_cost_hint: float
) -> Scheduler:
    """Instantiate the configured scheduling strategy."""
    name = config.scheduler
    sched_cfg = config.scheduling
    if name == "ApplyAll":
        return ApplyAllScheduler()
    if name == "AfterAll":
        return AfterAllScheduler()
    if name == "Piggyback":
        return PiggybackScheduler(
            PiggybackConfig(max_ops_per_carrier=sched_cfg.max_ops_per_carrier)
        )
    setpoint = sched_cfg.setpoint
    if setpoint is None:
        setpoint = setpoint_for(
            name, config.distribution, config.load, config.alpha
        )
    feedback_config = FeedbackConfig(
        setpoint=setpoint,
        kp=sched_cfg.kp,
        ki=sched_cfg.ki,
        kd=sched_cfg.kd,
        max_promotions_per_interval=sched_cfg.max_promotions_per_interval,
        normal_cost_hint=normal_cost_hint,
    )
    if name == "Feedback":
        return FeedbackScheduler(feedback_config)
    if name == "Hybrid":
        return HybridScheduler(
            feedback_config,
            PiggybackConfig(max_ops_per_carrier=sched_cfg.max_ops_per_carrier),
        )
    raise ConfigError(f"unknown scheduler {name!r}")  # pragma: no cover


def build_system(config: ExperimentConfig) -> System:
    """Assemble every component of one experiment (does not run it)."""
    env = Environment()
    streams = RandomStreams(config.seed)
    cluster = Cluster(
        env, config.cluster, streams,
        store_factory=resolve_store_factory(config),
    )

    profile = build_profile(config.workload)
    distributed_ids = choose_distributed_types(
        profile, config.alpha, streams.stream("placement")
    )
    pmap = initial_placement(
        profile, cluster.partition_ids, distributed_ids,
        pmap=make_partition_map(config),
    )
    place_unprofiled_keys(
        pmap, config.workload.tuple_count, cluster.partition_ids
    )
    load_stores(cluster, pmap, PlacementConfig(alpha=config.alpha),
                streams.stream("values"))

    store = PartitionMapStore(
        pmap, max_delta_log=config.runtime.epoch_log_limit
    )
    router = QueryRouter(store)
    cost_model = CostModel(
        base_cost=config.cost.base_cost,
        rep_op_cost=config.cost.rep_op_cost,
        piggyback_discount=config.cost.piggyback_discount,
    )
    twopc = TwoPhaseCommitCoordinator(env, cluster.network)
    executor = TransactionExecutor(
        env,
        cluster,
        router,
        cost_model,
        twopc,
        ExecutorConfig(
            lock_timeout_s=config.runtime.lock_timeout_s,
            rep_op_failure_probability=(
                config.runtime.rep_op_failure_probability
            ),
            isolation=config.runtime.isolation,
            per_txn_overhead_units=config.runtime.per_txn_overhead_units,
            stale_route_policy=config.runtime.stale_route_policy,
        ),
        rng=streams.stream("failures"),
    )
    metrics = MetricsCollector(env, interval_s=config.runtime.interval_s)
    store.on_publish = lambda _epoch: metrics.record_epoch_publish()
    router.on_forwarded_read = lambda _key: metrics.record_forwarded_read()
    tm = TransactionManager(
        env,
        executor,
        metrics,
        TransactionManagerConfig(
            max_concurrent=config.runtime.max_concurrent,
            max_attempts=config.runtime.max_attempts,
            retry_delay_s=config.runtime.retry_delay_s,
            retry_backoff_factor=config.runtime.retry_backoff_factor,
            max_retry_delay_s=config.runtime.max_retry_delay_s,
            retry_jitter=config.runtime.retry_jitter,
            queue_timeout_s=config.runtime.queue_timeout_s,
        ),
        rng=streams.stream("retry-jitter"),
    )
    # The TM needs the collector at construction and the collector probes
    # the TM's queue, so the probe is wired second.
    metrics.set_queue_length_probe(lambda: len(tm.queue))
    metrics.set_node_state_probe(cluster.state_counts)

    fault_injector = None
    if config.faults is not None and config.faults.enabled:
        # Fault injection makes the WAL the mandatory write path (the
        # initial dataset is checkpointed so it survives a crash) and
        # in-service jobs killable.
        for node in cluster.nodes:
            node.enable_fault_injection()
        fault_injector = FaultInjector(
            env,
            cluster,
            config.faults,
            rng=streams.stream("faults"),
            metrics=metrics,
        )
        fault_injector.start()
        injector = fault_injector

        def _watch_new_node(node: "Any") -> None:
            # Nodes added by elasticity are just as killable as the
            # originals: WAL write path on, lifecycle process spawned.
            node.enable_fault_injection()
            injector.watch_node(node)

        cluster.on_node_added.append(_watch_new_node)

    expected_cost = cost_model.expected_cost_per_txn(profile.types, pmap)
    rate = calibrate_rate(
        config.utilisation_target,
        cluster.total_capacity_units_per_s,
        expected_cost,
    )
    sampler = WorkloadSampler(
        profile, config.workload, streams.stream("workload")
    )
    horizon = config.runtime.interval_s * (
        config.runtime.warmup_intervals + config.runtime.measure_intervals
    )
    arrivals = PoissonArrivalProcess(
        env,
        tm,
        sampler,
        ArrivalConfig(
            rate_txn_per_s=rate, interval_s=config.runtime.interval_s
        ),
        streams.stream("arrivals"),
        horizon_s=horizon,
    )
    repartitioner = Repartitioner(env, tm, router, metrics, cost_model)

    elasticity_controller = None
    if config.elasticity is not None and config.elasticity.enabled:
        normal_cost_hint = max(
            rate * config.runtime.interval_s * config.cost.base_cost,
            config.cost.base_cost,
        )
        elasticity_controller = ElasticityController(
            cluster,
            repartitioner,
            profile,
            config.elasticity,
            scheduler_factory=(
                lambda: make_scheduler(config, normal_cost_hint)
            ),
            fault_injector=fault_injector,
        )
        elasticity_controller.start()
    return System(
        config=config,
        env=env,
        streams=streams,
        cluster=cluster,
        profile=profile,
        distributed_type_ids=distributed_ids,
        store=store,
        router=router,
        cost_model=cost_model,
        executor=executor,
        tm=tm,
        metrics=metrics,
        arrivals=arrivals,
        repartitioner=repartitioner,
        arrival_rate_txn_per_s=rate,
        fault_injector=fault_injector,
        elasticity_controller=elasticity_controller,
    )


#: Optional hook rewriting the ranked spec list before deployment; used
#: by the ablation benchmarks (granularity, ranking order).
SpecTransform = Any


def start_repartitioning(
    system: System, spec_transform: Optional[SpecTransform] = None
) -> RepartitionSession:
    """Derive, rank, and begin deploying the repartition plan (now)."""
    config = system.config
    # Plan against the post-transition node set: ACTIVE plus JOINING
    # partitions are placement targets, DRAINING/RETIRED are not.
    optimizer = RepartitionOptimizer(
        system.cost_model, system.cluster.placement_partition_ids
    )
    types_to_fix = [
        t for t in system.profile.types
        if t.type_id in system.distributed_type_ids
    ]
    plan = optimizer.derive_plan(
        system.profile, system.router.store.current_epoch, types_to_fix
    )
    normal_cost_hint = max(
        system.arrival_rate_txn_per_s
        * config.runtime.interval_s
        * config.cost.base_cost,
        config.cost.base_cost,
    )
    specs = system.repartitioner.rank_plan(plan, system.profile)
    if spec_transform is not None:
        specs = spec_transform(specs)
    if system.repartitioner.session is not None:
        # An elasticity transition during warmup already opened the
        # session (there is one scheduler slot); the workload plan joins
        # it instead of deploying a second one.
        system.repartitioner.extend(specs)
        session = system.repartitioner.session
        system.scheduler = system.repartitioner.scheduler
    else:
        scheduler = make_scheduler(config, normal_cost_hint)
        session = system.repartitioner.deploy(specs, scheduler)
        system.scheduler = scheduler
    system.session = session
    return session


def run_experiment(
    config: ExperimentConfig,
    spec_transform: Optional[SpecTransform] = None,
) -> ExperimentResult:
    """Run one evaluation cell start to finish."""
    system = build_system(config)
    env = system.env
    interval_s = config.runtime.interval_s
    warmup_s = interval_s * config.runtime.warmup_intervals

    def kickoff() -> Generator[Event, Any, None]:
        if warmup_s > 0:
            yield env.timeout(warmup_s)
        start_repartitioning(system, spec_transform)

    env.process(kickoff())
    horizon = warmup_s + interval_s * config.runtime.measure_intervals
    env.run(until=horizon + 1e-9)

    session = system.session
    completed_at = None
    if session is not None and session.completed.triggered:
        completed_at = session.completed.value
    intervals = system.metrics.intervals
    result = ExperimentResult(
        config=config,
        intervals=intervals,
        repartition_start_interval=config.runtime.warmup_intervals,
        rep_ops_total=system.metrics.rep_ops_total,
        repartition_completed_at=completed_at,
        arrival_rate_txn_per_s=system.arrival_rate_txn_per_s,
    )
    result.summary = summarise(result.measured)
    return result
