"""Multi-seed sweeps and aggregate statistics.

A single run of an experiment cell is one sample of a stochastic
system.  :func:`sweep_seeds` repeats a cell across seeds and aggregates
the summary metrics (mean, standard deviation, min, max), which is what
a rigorous comparison of the schedulers should quote.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from .cache import ResultCache
from .config import ExperimentConfig
from .parallel import CellReport, run_cells
from .runner import ExperimentResult


@dataclass(frozen=True)
class MetricStats:
    """Aggregate statistics of one metric across runs.

    ``std`` is the population standard deviation (divide by *n*);
    ``sample_std`` is the Bessel-corrected estimate (divide by *n − 1*),
    which is what a comparison across a handful of seeds should quote.
    """

    mean: float
    std: float
    minimum: float
    maximum: float
    samples: int
    sample_std: float = 0.0

    @classmethod
    def from_values(cls, values: Sequence[float]) -> "MetricStats":
        """Compute stats (population and sample std) over a non-empty sample."""
        if not values:
            raise ValueError("cannot aggregate an empty sample")
        n = len(values)
        mean = math.fsum(values) / n
        sum_sq = math.fsum((v - mean) ** 2 for v in values)
        return cls(
            mean=mean,
            std=math.sqrt(sum_sq / n),
            minimum=min(values),
            maximum=max(values),
            samples=n,
            sample_std=math.sqrt(sum_sq / (n - 1)) if n > 1 else 0.0,
        )


@dataclass
class SweepResult:
    """All runs of one cell across seeds, plus aggregates."""

    config: ExperimentConfig
    results: list[ExperimentResult] = field(default_factory=list)

    def stats(self, metric: str) -> MetricStats:
        """Aggregate one summary metric (e.g. ``mean_failure_rate``)."""
        values = [result.summary[metric] for result in self.results]
        return MetricStats.from_values(values)

    def completion_intervals(self) -> list[Optional[int]]:
        """Per-seed completion interval (None = did not finish)."""
        return [result.completion_interval for result in self.results]

    def completion_fraction(self) -> float:
        """Fraction of seeds where the plan fully deployed."""
        done = sum(
            1 for c in self.completion_intervals() if c is not None
        )
        return done / len(self.results) if self.results else 0.0


def sweep_seeds(
    config: ExperimentConfig,
    seeds: Sequence[int],
    progress: Optional[Callable[[int], None]] = None,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    report: Optional[CellReport] = None,
) -> SweepResult:
    """Run ``config`` once per seed and collect the results.

    Routed through :func:`~repro.experiments.parallel.run_cells`, so seeds
    fan out across ``jobs`` workers and completed seeds are served from
    ``cache`` when one is given.
    """
    if not seeds:
        raise ValueError("need at least one seed")
    configs = [config.with_overrides(seed=seed) for seed in seeds]
    results = run_cells(
        configs,
        jobs=jobs,
        cache=cache,
        progress=(
            None if progress is None
            else lambda cell_config: progress(cell_config.seed)
        ),
        report=report,
    )
    sweep = SweepResult(config=config)
    sweep.results.extend(results)
    return sweep


def format_sweep_comparison(
    sweeps: dict[str, SweepResult],
    metrics: Sequence[str] = (
        "mean_throughput_txn_per_min",
        "mean_failure_rate",
        "final_rep_rate",
    ),
) -> str:
    """Mean ± sample std (Bessel-corrected) across schedulers, per metric."""
    names = list(sweeps)
    width = max(18, max((len(n) for n in names), default=18) + 2)
    lines = [
        f"{'metric':<30} "
        + " ".join(f"{name:>{width}}" for name in names)
    ]
    for metric in metrics:
        cells = []
        for name in names:
            stats = sweeps[name].stats(metric)
            cells.append(f"{stats.mean:.2f} ± {stats.sample_std:.2f}")
        lines.append(
            f"{metric:<30} "
            + " ".join(f"{cell:>{width}}" for cell in cells)
        )
    lines.append(
        f"{'completion fraction':<30} "
        + " ".join(
            f"{sweeps[name].completion_fraction():>{width}.2f}"
            for name in names
        )
    )
    return "\n".join(lines)
