"""Multi-seed sweeps and aggregate statistics.

A single run of an experiment cell is one sample of a stochastic
system.  :func:`sweep_seeds` repeats a cell across seeds and aggregates
the summary metrics (mean, standard deviation, min, max), which is what
a rigorous comparison of the schedulers should quote.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from .config import ExperimentConfig
from .runner import ExperimentResult, run_experiment


@dataclass(frozen=True)
class MetricStats:
    """Aggregate statistics of one metric across runs."""

    mean: float
    std: float
    minimum: float
    maximum: float
    samples: int

    @classmethod
    def from_values(cls, values: Sequence[float]) -> "MetricStats":
        """Compute stats (population std) over a non-empty sample."""
        if not values:
            raise ValueError("cannot aggregate an empty sample")
        n = len(values)
        mean = math.fsum(values) / n
        variance = math.fsum((v - mean) ** 2 for v in values) / n
        return cls(
            mean=mean,
            std=math.sqrt(variance),
            minimum=min(values),
            maximum=max(values),
            samples=n,
        )


@dataclass
class SweepResult:
    """All runs of one cell across seeds, plus aggregates."""

    config: ExperimentConfig
    results: list[ExperimentResult] = field(default_factory=list)

    def stats(self, metric: str) -> MetricStats:
        """Aggregate one summary metric (e.g. ``mean_failure_rate``)."""
        values = [result.summary[metric] for result in self.results]
        return MetricStats.from_values(values)

    def completion_intervals(self) -> list[Optional[int]]:
        """Per-seed completion interval (None = did not finish)."""
        return [result.completion_interval for result in self.results]

    def completion_fraction(self) -> float:
        """Fraction of seeds where the plan fully deployed."""
        done = sum(
            1 for c in self.completion_intervals() if c is not None
        )
        return done / len(self.results) if self.results else 0.0


def sweep_seeds(
    config: ExperimentConfig,
    seeds: Sequence[int],
    progress: Optional[Callable[[int], None]] = None,
) -> SweepResult:
    """Run ``config`` once per seed and collect the results."""
    if not seeds:
        raise ValueError("need at least one seed")
    sweep = SweepResult(config=config)
    for seed in seeds:
        if progress is not None:
            progress(seed)
        sweep.results.append(
            run_experiment(config.with_overrides(seed=seed))
        )
    return sweep


def format_sweep_comparison(
    sweeps: dict[str, SweepResult],
    metrics: Sequence[str] = (
        "mean_throughput_txn_per_min",
        "mean_failure_rate",
        "final_rep_rate",
    ),
) -> str:
    """Mean ± std table across schedulers, one row per metric."""
    names = list(sweeps)
    width = max(18, max((len(n) for n in names), default=18) + 2)
    lines = [
        f"{'metric':<30} "
        + " ".join(f"{name:>{width}}" for name in names)
    ]
    for metric in metrics:
        cells = []
        for name in names:
            stats = sweeps[name].stats(metric)
            cells.append(f"{stats.mean:.2f} ± {stats.std:.2f}")
        lines.append(
            f"{metric:<30} "
            + " ".join(f"{cell:>{width}}" for cell in cells)
        )
    lines.append(
        f"{'completion fraction':<30} "
        + " ".join(
            f"{sweeps[name].completion_fraction():>{width}.2f}"
            for name in names
        )
    )
    return "\n".join(lines)
