"""Experiments: configs, the runner, and the paper's tables/figures."""

from .config import (
    HIGH_LOAD_UTILISATION,
    LOW_LOAD_UTILISATION,
    SCHEDULER_NAMES,
    CostConfig,
    ExperimentConfig,
    RuntimeConfig,
    SchedulerConfig,
    bench_scale,
    medium_scale,
    paper_scale,
)
from .figures import (
    Figure3Result,
    FigureResult,
    figure3_failure_rate,
    figure4_zipf_high,
    figure5_uniform_high,
    figure6_zipf_low,
    figure7_uniform_low,
)
from .runner import (
    ExperimentResult,
    System,
    build_system,
    make_scheduler,
    run_experiment,
    start_repartitioning,
)
from .sweeps import (
    MetricStats,
    SweepResult,
    format_sweep_comparison,
    sweep_seeds,
)
from .tables import PAPER_GAINS, SP_TABLE, format_table1, setpoint_for

__all__ = [
    "CostConfig",
    "ExperimentConfig",
    "ExperimentResult",
    "Figure3Result",
    "FigureResult",
    "HIGH_LOAD_UTILISATION",
    "LOW_LOAD_UTILISATION",
    "MetricStats",
    "PAPER_GAINS",
    "RuntimeConfig",
    "SCHEDULER_NAMES",
    "SP_TABLE",
    "SchedulerConfig",
    "SweepResult",
    "System",
    "bench_scale",
    "build_system",
    "figure3_failure_rate",
    "figure4_zipf_high",
    "figure5_uniform_high",
    "figure6_zipf_low",
    "figure7_uniform_low",
    "format_sweep_comparison",
    "format_table1",
    "make_scheduler",
    "medium_scale",
    "paper_scale",
    "run_experiment",
    "setpoint_for",
    "start_repartitioning",
    "sweep_seeds",
]
