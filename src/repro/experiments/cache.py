"""On-disk cache of completed experiment results.

Every experiment cell is a pure function of its :class:`ExperimentConfig`
(the simulator is fully deterministic given the config's seed), so a
finished :class:`~repro.experiments.runner.ExperimentResult` can be reused
whenever the same config shows up again — regenerating a figure with one
changed cell re-runs one simulation instead of fifteen.

**Key scheme.**  A config is hashed by converting the (frozen, nested)
dataclass to a canonical JSON document — ``dataclasses.asdict`` then
``json.dumps(sort_keys=True)`` — and taking the SHA-256 of that text.  A
schema-version tag is mixed into the hashed payload *and* prefixed to the
file name, so bumping :data:`CACHE_SCHEMA_VERSION` (required whenever the
stored layout changes, or whenever a simulator change makes old results
non-reproducible) invalidates every existing entry at once.

The cache directory resolves, in order, to: the explicit constructor
argument, the ``REPRO_CACHE_DIR`` environment variable, then
``.repro-cache/`` under the current working directory.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from collections import OrderedDict
from pathlib import Path
from typing import TYPE_CHECKING, Optional, Union

from ..metrics.export import result_from_state_dict, result_to_state_dict
from .config import ExperimentConfig

if TYPE_CHECKING:  # pragma: no cover
    from .runner import ExperimentResult

#: Bump whenever the cached layout or the simulation semantics change;
#: old entries then miss instead of resurrecting stale results.
#: v2: fault injection (IntervalRecord gained aborted_by_cause/retries/
#: degradation fields; retry timing switched to exponential backoff).
#: v3: epoch-versioned partition maps (IntervalRecord gained
#: epoch_publishes/forwarded_reads/stale_route_retries; RuntimeConfig
#: gained stale_route_policy/epoch_log_limit, which change the hash).
#: v4: elastic membership (IntervalRecord gained the per-state node
#: census fields; ExperimentConfig gained the ``elasticity`` schedule,
#: which participates in the hash).
CACHE_SCHEMA_VERSION = 4

#: Environment variable overriding the default cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Directory used when neither an argument nor the env var names one.
DEFAULT_CACHE_DIR = ".repro-cache"


def config_key(config: ExperimentConfig) -> str:
    """Stable SHA-256 over the canonical JSON form of ``config``."""
    payload = json.dumps(
        {
            "schema": CACHE_SCHEMA_VERSION,
            "config": dataclasses.asdict(config),
        },
        sort_keys=True,
        separators=(",", ":"),
        default=repr,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def default_cache_dir() -> Path:
    """The directory used when no explicit one is given."""
    return Path(os.environ.get(CACHE_DIR_ENV) or DEFAULT_CACHE_DIR)


class ResultCache:
    """Maps :class:`ExperimentConfig` to a completed result on disk.

    Entries are one JSON file each, written atomically (tmp file +
    ``os.replace``) so a crashed or concurrent run can never leave a
    half-written entry behind; unreadable or structurally stale files are
    treated as misses.

    An in-process LRU (``memory_entries`` results, keyed by the same
    entry file name as the disk layer, so the key schema is unchanged)
    sits in front of the disk: a CLI run that renders several figures
    over overlapping cells re-reads each entry's JSON once, not once per
    figure.  The LRU is populated only by a *successful disk read* —
    never by :meth:`put` — so a corrupted or externally deleted entry
    still misses exactly as before.  Results served from memory are the
    same objects handed out earlier; they are immutable by convention
    (frozen config, never-mutated records) and must be treated as
    read-only.

    ``hits``/``misses`` count lookups as before (a memory hit is a hit);
    ``memory_hits`` additionally counts the hits that skipped the disk.
    """

    def __init__(
        self,
        directory: Optional[Union[str, Path]] = None,
        memory_entries: int = 256,
    ) -> None:
        self.directory = (
            Path(directory) if directory is not None else default_cache_dir()
        )
        self.hits = 0
        self.misses = 0
        self.memory_hits = 0
        self._memory_entries = memory_entries
        self._memory: "OrderedDict[str, ExperimentResult]" = OrderedDict()

    def path_for(self, config: ExperimentConfig) -> Path:
        """The entry file backing ``config``."""
        return self.directory / (
            f"v{CACHE_SCHEMA_VERSION}-{config_key(config)}.json"
        )

    def get(self, config: ExperimentConfig) -> Optional["ExperimentResult"]:
        """The cached result for ``config``, or ``None`` on a miss."""
        path = self.path_for(config)
        key = path.name
        memory = self._memory
        cached = memory.get(key)
        if cached is not None:
            memory.move_to_end(key)
            self.hits += 1
            self.memory_hits += 1
            return cached
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
            result = result_from_state_dict(payload, config)
        except (OSError, ValueError, KeyError, TypeError):
            self.misses += 1
            return None
        self.hits += 1
        if self._memory_entries > 0:
            memory[key] = result
            while len(memory) > self._memory_entries:
                memory.popitem(last=False)
        return result

    def put(self, config: ExperimentConfig, result: "ExperimentResult") -> None:
        """Store ``result`` under ``config``'s key.

        Best-effort: an unwritable cache directory must not discard a
        simulation that already completed, so write failures leave the
        cell uncached instead of raising (the per-invocation report still
        shows it as a miss, which is how a mistyped ``--cache-dir``
        surfaces).
        """
        path = self.path_for(config)
        tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            with open(tmp, "w", encoding="utf-8") as handle:
                json.dump(result_to_state_dict(result), handle)
            os.replace(tmp, path)
        except OSError:
            try:
                tmp.unlink()
            except OSError:
                pass
