"""Figure regeneration: the paper's Figures 3-7 as data series.

Each figure function runs the relevant experiment cells and returns the
per-interval series for every scheduler line, plus a text rendering that
the benchmark harness prints.  Figures 4-7 are the 3x3 grids (RepRate /
Throughput / Latency × α ∈ {100%, 60%, 20%}); Figure 3 is the failure-
rate panel at α = 100% for all four workload/load combinations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from ..elasticity import parse_elasticity_schedule
from ..metrics.collectors import IntervalRecord
from ..metrics.report import format_comparison_table, format_sparkline_panel
from .cache import ResultCache
from .config import SCHEDULER_NAMES, ExperimentConfig, bench_scale
from .parallel import CellReport, run_cells
from .runner import ExperimentResult

#: The metrics plotted in each figure-grid row.
GRID_METRICS = (
    ("rep_rate", "RepRate"),
    ("throughput_txn_per_min", "Throughput (txn/min)"),
    ("mean_latency_ms", "Latency (ms)"),
)

#: The α columns of Figures 4-7.
GRID_ALPHAS = (1.0, 0.6, 0.2)


@dataclass
class FigureResult:
    """All runs backing one paper figure."""

    figure: str
    #: (scheduler, alpha) -> result.
    runs: dict[tuple[str, float], ExperimentResult] = field(
        default_factory=dict
    )

    def records(
        self, scheduler: str, alpha: float
    ) -> list[IntervalRecord]:
        """Measured interval records for one line of the figure."""
        return self.runs[(scheduler, alpha)].measured

    def panel(
        self, metric: str, alpha: float
    ) -> dict[str, list[IntervalRecord]]:
        """One sub-figure: every scheduler's records at a given α."""
        return {
            scheduler: self.records(scheduler, alpha)
            for scheduler, a in self.runs
            if a == alpha
        }

    def render(self, every: int = 10) -> str:
        """Text rendering of the whole figure grid."""
        blocks = []
        alphas = sorted({a for _s, a in self.runs}, reverse=True)
        for metric, label in GRID_METRICS:
            for alpha in alphas:
                title = (
                    f"{self.figure} — {label}, alpha={int(alpha * 100)}%"
                )
                panel = self.panel(metric, alpha)
                blocks.append(
                    format_comparison_table(panel, metric, title, every)
                    + "\n"
                    + format_sparkline_panel(panel, metric)
                )
        return "\n\n".join(blocks)


@dataclass
class _CellPlan:
    """The cells of one figure, laid out before execution.

    Splitting planning from execution lets Figure 3 concatenate four
    panels' worth of configs into a *single* :func:`run_cells` batch, so
    ``--jobs`` parallelism spans the whole figure rather than one panel.
    """

    figure: str
    cells: list[tuple[str, float]]
    configs: list[ExperimentConfig]
    labels: dict[int, str]

    def assemble(self, results: Sequence[ExperimentResult]) -> FigureResult:
        out = FigureResult(figure=self.figure)
        for cell, result in zip(self.cells, results):
            out.runs[cell] = result
        return out


def _cell_plan(
    figure: str,
    distribution: str,
    load: str,
    alphas: Sequence[float],
    schedulers: Sequence[str] = SCHEDULER_NAMES,
    seed: int = 0,
    config_factory: Optional[
        Callable[[str, str, str, float, int], ExperimentConfig]
    ] = None,
) -> _CellPlan:
    factory = config_factory or (
        lambda sched, dist, lo, alpha, sd: bench_scale(
            scheduler=sched,
            distribution=dist,
            load=lo,
            alpha=alpha,
            seed=sd,
        )
    )
    cells = [
        (scheduler, alpha) for alpha in alphas for scheduler in schedulers
    ]
    configs = []
    labels = {}
    for scheduler, alpha in cells:
        config = factory(scheduler, distribution, load, alpha, seed)
        labels[id(config)] = f"{figure}: {scheduler} alpha={alpha}"
        configs.append(config)
    return _CellPlan(
        figure=figure, cells=cells, configs=configs, labels=labels
    )


def _progress_adapter(
    labels: dict[int, str], progress: Optional[Callable[[str], None]]
) -> Optional[Callable[[ExperimentConfig], None]]:
    if progress is None:
        return None
    return lambda config: progress(labels[id(config)])


def _run_cells(
    figure: str,
    distribution: str,
    load: str,
    alphas: Sequence[float],
    schedulers: Sequence[str] = SCHEDULER_NAMES,
    seed: int = 0,
    config_factory: Optional[
        Callable[[str, str, str, float, int], ExperimentConfig]
    ] = None,
    progress: Optional[Callable[[str], None]] = None,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    report: Optional[CellReport] = None,
) -> FigureResult:
    plan = _cell_plan(
        figure, distribution, load, alphas, schedulers, seed, config_factory
    )
    results = run_cells(
        plan.configs,
        jobs=jobs,
        cache=cache,
        progress=_progress_adapter(plan.labels, progress),
        report=report,
    )
    return plan.assemble(results)


def figure4_zipf_high(**kwargs) -> FigureResult:
    """Figure 4: Zipf workload under high load, α ∈ {100, 60, 20}%."""
    return _run_cells("Figure 4 (Zipf/High)", "zipf", "high",
                      GRID_ALPHAS, **kwargs)


def figure5_uniform_high(**kwargs) -> FigureResult:
    """Figure 5: Uniform workload under high load."""
    return _run_cells("Figure 5 (Uniform/High)", "uniform", "high",
                      GRID_ALPHAS, **kwargs)


def figure6_zipf_low(**kwargs) -> FigureResult:
    """Figure 6: Zipf workload under low load."""
    return _run_cells("Figure 6 (Zipf/Low)", "zipf", "low",
                      GRID_ALPHAS, **kwargs)


def figure7_uniform_low(**kwargs) -> FigureResult:
    """Figure 7: Uniform workload under low load."""
    return _run_cells("Figure 7 (Uniform/Low)", "uniform", "low",
                      GRID_ALPHAS, **kwargs)


#: Default elasticity schedule for the elastic-membership figure: the
#: bench preset starts at 5 nodes, doubles to 10 mid-run, then drains
#: the five joiners back out (N → 2N → N).  Node ids 5-9 are the nodes
#: ``add`` creates (ids are assigned in join order after the initial 5).
ELASTIC_SCHEDULE = (
    "200:add:5,"
    "760:drain:5,760:drain:6,760:drain:7,760:drain:8,760:drain:9"
)

#: Metrics plotted for the elastic figure: the throughput dip/recovery
#: across both transitions, plus the membership/backlog series that
#: explain it.
ELASTIC_METRICS = (
    ("throughput_txn_per_min", "Throughput (txn/min)"),
    ("rep_rate", "RepRate"),
    ("migration_backlog", "Migration backlog (ops)"),
    ("nodes_active", "ACTIVE nodes"),
    ("nodes_draining", "DRAINING nodes"),
)


@dataclass
class ElasticFigureResult:
    """The elastic-membership figure: N → 2N → N under each scheduler."""

    base: FigureResult
    schedule: str

    @property
    def runs(self) -> dict[tuple[str, float], ExperimentResult]:
        return self.base.runs

    def render(self, every: int = 10) -> str:
        blocks = []
        for metric, label in ELASTIC_METRICS:
            title = f"{self.base.figure} — {label} [{self.schedule}]"
            panel = self.base.panel(metric, 1.0)
            blocks.append(
                format_comparison_table(panel, metric, title, every)
                + "\n"
                + format_sparkline_panel(panel, metric)
            )
        return "\n\n".join(blocks)


def figure_elastic(
    schedule: str = ELASTIC_SCHEDULE,
    schedulers: Sequence[str] = SCHEDULER_NAMES,
    seed: int = 0,
    measure_intervals: int = 60,
    progress: Optional[Callable[[str], None]] = None,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    report: Optional[CellReport] = None,
) -> ElasticFigureResult:
    """The elastic-membership figure: scale-out then scale-in mid-run.

    Runs every scheduler at α = 100% (Zipf/high) on the bench preset
    with ``schedule`` driving membership — by default 5 nodes join at
    t = 200 s and the same five drain back out at t = 760 s — and
    plots the throughput dip/recovery plus the membership and
    migration-backlog series behind it.
    """
    parsed = parse_elasticity_schedule(schedule)
    factory = (
        lambda sched, dist, lo, alpha, sd: bench_scale(
            scheduler=sched,
            distribution=dist,
            load=lo,
            alpha=alpha,
            seed=sd,
            measure_intervals=measure_intervals,
            elasticity=parsed,
        )
    )
    base = _run_cells(
        "Elastic (N-2N-N)",
        "zipf",
        "high",
        (1.0,),
        schedulers,
        seed,
        config_factory=factory,
        progress=progress,
        jobs=jobs,
        cache=cache,
        report=report,
    )
    return ElasticFigureResult(base=base, schedule=schedule)


@dataclass
class Figure3Result:
    """Figure 3: failure rate over time, α = 100%, four panels."""

    panels: dict[str, FigureResult] = field(default_factory=dict)

    def render(self, every: int = 10) -> str:
        blocks = []
        for panel_name, fig in self.panels.items():
            blocks.append(
                format_comparison_table(
                    fig.panel("failure_rate", 1.0),
                    "failure_rate",
                    f"Figure 3 — Failure rate, {panel_name} (alpha=100%)",
                    every,
                )
            )
        return "\n\n".join(blocks)


def figure3_failure_rate(
    progress: Optional[Callable[[str], None]] = None,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    report: Optional[CellReport] = None,
    **kwargs,
) -> Figure3Result:
    """Figure 3: transaction failure rate for all four workload panels.

    All four panels (20 cells) are planned up front and executed as one
    batch, so ``jobs`` parallelism spans the whole figure.
    """
    plans = [
        (label, _cell_plan(f"Figure 3 ({label})", dist, load, (1.0,), **kwargs))
        for dist, load, label in (
            ("zipf", "high", "Zipf/High"),
            ("uniform", "high", "Uniform/High"),
            ("zipf", "low", "Zipf/Low"),
            ("uniform", "low", "Uniform/Low"),
        )
    ]
    configs = []
    labels: dict[int, str] = {}
    for _label, plan in plans:
        configs.extend(plan.configs)
        labels.update(plan.labels)
    results = run_cells(
        configs,
        jobs=jobs,
        cache=cache,
        progress=_progress_adapter(labels, progress),
        report=report,
    )
    figure = Figure3Result()
    offset = 0
    for label, plan in plans:
        figure.panels[label] = plan.assemble(
            results[offset:offset + len(plan.configs)]
        )
        offset += len(plan.configs)
    return figure
