"""Parallel execution of experiment cells.

Every paper artifact is embarrassingly parallel: a figure grid is 15
independent cells (5 schedulers × 3 α values), Figure 3 is 20, and a seed
sweep multiplies a cell by its seed count.  :func:`run_cells` is the one
engine all of them route through — figures, sweeps, and the CLI — so the
``--jobs`` knob and the result cache apply uniformly.

Guarantees:

* **Deterministic order** — results come back in the order of ``configs``
  regardless of which worker finishes first.
* **Serial fallback** — ``jobs=1`` runs in-process through the exact code
  path the serial runner always used, so serial and parallel output can
  be compared bit-for-bit.
* **Cache transparency** — with a :class:`~repro.experiments.cache.ResultCache`,
  cells whose config already has a stored result are served from disk and
  never dispatched; freshly executed cells are stored on the way out.

The engine keeps dispatch overhead off the per-cell bill three ways:

* **Warm pool** — one module-level :class:`ProcessPoolExecutor` (``fork``
  start method where the platform offers it) is created on first use and
  reused by every later ``run_cells`` call in the process, so a CLI run
  that renders several figures pays worker start-up once, not per figure.
  The pool is resized only when a call asks for a different worker count,
  and torn down at interpreter exit.
* **Delta dispatch** — cells of one batch share almost their entire
  config, so the base config crosses to the workers once per chunk as a
  canonical JSON document bound into the task function; each cell then
  ships only the JSON of its top-level-field delta
  (:func:`~repro.experiments.config.config_delta`).  Results return as
  the compact metric state dicts from
  :mod:`repro.metrics.export` — never pickled collector objects — and the
  parent grafts its local config object back on.
* **Cost-aware chunking** — ``pool.map``'s chunksize is derived from an
  estimated per-cell cost (simulated seconds × tuple count): heavy cells
  get chunksize 1 so a slow cell never holds a batch of finished
  neighbours hostage, light cells are batched to amortise IPC.
"""

from __future__ import annotations

import atexit
import json
import multiprocessing
import os
import sys
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from functools import partial
from typing import Any, Callable, List, Optional, Sequence

from ..metrics.export import result_from_state_dict, result_to_state_dict
from .cache import ResultCache
from .config import ExperimentConfig, config_delta, config_from_dict, config_to_dict
from .runner import ExperimentResult, run_experiment


@dataclass
class CellReport:
    """Bookkeeping for one batch of cells (surfaced in the CLI).

    ``total`` counts requested cells, ``cache_hits`` the ones served from
    disk, ``executed`` the ones actually simulated; ``wall_clock_s`` is
    the end-to-end time of the batch including cache I/O.
    """

    total: int = 0
    cache_hits: int = 0
    executed: int = 0
    wall_clock_s: float = 0.0

    @property
    def cache_misses(self) -> int:
        """Cells that were not served from the cache."""
        return self.total - self.cache_hits

    def describe(self) -> str:
        """One-line summary for progress output."""
        return (
            f"{self.total} cell(s): {self.cache_hits} cached, "
            f"{self.executed} executed in {self.wall_clock_s:.1f}s"
        )


def resolve_jobs(jobs: int) -> int:
    """Normalise a ``--jobs`` value; ``0`` (or less) means one per CPU."""
    if jobs <= 0:
        return os.cpu_count() or 1
    return jobs


# ---------------------------------------------------------------------------
# Warm worker pool
# ---------------------------------------------------------------------------

_pool: Optional[ProcessPoolExecutor] = None
_pool_workers = 0


def _worker_init(extra_paths: Sequence[str]) -> None:
    """Make ``repro`` importable in spawned workers (uninstalled checkouts).

    A no-op under the ``fork`` start method (children inherit ``sys.path``),
    but required by the ``spawn`` fallback on platforms without ``fork``.
    """
    for path in reversed(list(extra_paths)):
        if path not in sys.path:
            sys.path.insert(0, path)


def _start_method() -> str:
    """``fork`` where available (cheap, inherits loaded modules)."""
    if "fork" in multiprocessing.get_all_start_methods():
        return "fork"
    return multiprocessing.get_start_method()


def warm_pool(workers: int) -> ProcessPoolExecutor:
    """The shared worker pool, created on first use and reused after.

    The pool persists across :func:`run_cells` calls; it is rebuilt only
    when ``workers`` differs from the live pool's size (the ``--jobs``
    knob must mean what it says — benchmarking the speedup curve depends
    on it) and shut down automatically at interpreter exit.
    """
    global _pool, _pool_workers
    if _pool is not None and _pool_workers == workers:
        return _pool
    shutdown_pool()
    import repro

    package_root = os.path.dirname(os.path.dirname(repro.__file__))
    _pool = ProcessPoolExecutor(
        max_workers=workers,
        mp_context=multiprocessing.get_context(_start_method()),
        initializer=_worker_init,
        initargs=([package_root],),
    )
    _pool_workers = workers
    return _pool


def shutdown_pool() -> None:
    """Tear down the warm pool (no-op when none is live)."""
    global _pool, _pool_workers
    if _pool is not None:
        _pool.shutdown(wait=True, cancel_futures=True)
        _pool = None
        _pool_workers = 0


atexit.register(shutdown_pool)


# ---------------------------------------------------------------------------
# Worker-side execution
# ---------------------------------------------------------------------------

def _execute_cell(config: ExperimentConfig) -> ExperimentResult:
    """In-process execution of one cell (serial path; kept importable)."""
    return run_experiment(config)


def _execute_from_delta(base_json: str, delta_json: str) -> dict:
    """Worker entry point: rebuild the cell config, run it, return state.

    ``base_json`` is bound once per chunk via :func:`functools.partial`
    (the pickled task function carries it a single time per chunk, not
    per cell); ``delta_json`` is the cell's tiny top-level-field delta.
    The return value is the compact JSON-safe state dict — the parent
    reattaches its own config object, so configs never ride back.
    """
    base = json.loads(base_json)
    base.update(json.loads(delta_json))
    config = config_from_dict(base)
    return result_to_state_dict(run_experiment(config))


def _estimate_cost(config: ExperimentConfig) -> float:
    """Relative cost proxy for one cell (simulated span × system size)."""
    runtime = config.runtime
    simulated_s = (
        (runtime.warmup_intervals + runtime.measure_intervals)
        * runtime.interval_s
    )
    return simulated_s * max(config.workload.tuple_count, 1)


def _chunk_size(costs: Sequence[float], workers: int) -> int:
    """``pool.map`` chunksize for a batch with the given cell costs.

    Heavy cells (several times the bench preset) run one per task so the
    slowest cell in a chunk cannot starve idle workers; light batches are
    chunked to roughly four waves per worker to amortise per-task IPC.
    """
    if not costs:
        return 1
    # bench_scale's default cell: 45 intervals x 20 s x 3000 tuples.
    bench_cell = 45 * 20.0 * 3_000
    if max(costs) > 4 * bench_cell:
        return 1
    return max(1, len(costs) // (workers * 4))


def run_cells(
    configs: Sequence[ExperimentConfig],
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    progress: Optional[Callable[[ExperimentConfig], None]] = None,
    report: Optional[CellReport] = None,
) -> List[ExperimentResult]:
    """Run every config, returning results in config order.

    ``progress`` is invoked with each config that is about to be executed
    (cache hits are silent); under a worker pool it fires at submission
    time, still in config order.
    """
    configs = list(configs)
    if report is None:
        report = CellReport()
    started = time.perf_counter()
    report.total += len(configs)

    results: List[Optional[ExperimentResult]] = [None] * len(configs)
    pending: List[int] = []
    for index, config in enumerate(configs):
        cached = cache.get(config) if cache is not None else None
        if cached is not None:
            results[index] = cached
            report.cache_hits += 1
        else:
            pending.append(index)

    jobs = resolve_jobs(jobs)
    if pending:
        if jobs == 1 or len(pending) == 1:
            for index in pending:
                if progress is not None:
                    progress(configs[index])
                results[index] = run_experiment(configs[index])
        else:
            if progress is not None:
                for index in pending:
                    progress(configs[index])
            _run_pool(configs, pending, results, jobs)
        if cache is not None:
            for index in pending:
                cache.put(configs[index], results[index])
        report.executed += len(pending)

    report.wall_clock_s += time.perf_counter() - started
    return results  # type: ignore[return-value]


def _run_pool(
    configs: Sequence[ExperimentConfig],
    pending: Sequence[int],
    results: List[Optional[ExperimentResult]],
    jobs: int,
) -> None:
    """Dispatch ``pending`` cells over the warm pool, filling ``results``."""
    base = configs[pending[0]]
    base_json = json.dumps(config_to_dict(base), sort_keys=True)
    deltas = [
        json.dumps(config_delta(base, configs[index]), sort_keys=True)
        for index in pending
    ]
    costs = [_estimate_cost(configs[index]) for index in pending]
    workers = min(jobs, len(pending))
    pool = warm_pool(workers)
    task = partial(_execute_from_delta, base_json)
    try:
        ordered: Any = pool.map(
            task, deltas, chunksize=_chunk_size(costs, workers)
        )
        for index, payload in zip(pending, ordered):
            results[index] = result_from_state_dict(payload, configs[index])
    except BrokenProcessPool:
        # A dead worker poisons the whole executor; drop it so the next
        # call starts clean, then surface the failure.
        shutdown_pool()
        raise
