"""Parallel execution of experiment cells.

Every paper artifact is embarrassingly parallel: a figure grid is 15
independent cells (5 schedulers × 3 α values), Figure 3 is 20, and a seed
sweep multiplies a cell by its seed count.  :func:`run_cells` is the one
engine all of them route through — figures, sweeps, and the CLI — so the
``--jobs`` knob and the result cache apply uniformly.

Guarantees:

* **Deterministic order** — results come back in the order of ``configs``
  regardless of which worker finishes first.
* **Serial fallback** — ``jobs=1`` runs in-process through the exact code
  path the serial runner always used, so serial and parallel output can
  be compared bit-for-bit.
* **Cache transparency** — with a :class:`~repro.experiments.cache.ResultCache`,
  cells whose config already has a stored result are served from disk and
  never dispatched; freshly executed cells are stored on the way out.
"""

from __future__ import annotations

import os
import sys
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from .cache import ResultCache
from .config import ExperimentConfig
from .runner import ExperimentResult, run_experiment


@dataclass
class CellReport:
    """Bookkeeping for one batch of cells (surfaced in the CLI).

    ``total`` counts requested cells, ``cache_hits`` the ones served from
    disk, ``executed`` the ones actually simulated; ``wall_clock_s`` is
    the end-to-end time of the batch including cache I/O.
    """

    total: int = 0
    cache_hits: int = 0
    executed: int = 0
    wall_clock_s: float = 0.0

    @property
    def cache_misses(self) -> int:
        """Cells that were not served from the cache."""
        return self.total - self.cache_hits

    def describe(self) -> str:
        """One-line summary for progress output."""
        return (
            f"{self.total} cell(s): {self.cache_hits} cached, "
            f"{self.executed} executed in {self.wall_clock_s:.1f}s"
        )


def resolve_jobs(jobs: int) -> int:
    """Normalise a ``--jobs`` value; ``0`` (or less) means one per CPU."""
    if jobs <= 0:
        return os.cpu_count() or 1
    return jobs


def _worker_init(extra_paths: Sequence[str]) -> None:
    """Make ``repro`` importable in spawned workers (uninstalled checkouts)."""
    for path in reversed(list(extra_paths)):
        if path not in sys.path:
            sys.path.insert(0, path)


def _execute_cell(config: ExperimentConfig) -> ExperimentResult:
    """Top-level worker entry point (must be picklable by name)."""
    return run_experiment(config)


def run_cells(
    configs: Sequence[ExperimentConfig],
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    progress: Optional[Callable[[ExperimentConfig], None]] = None,
    report: Optional[CellReport] = None,
) -> List[ExperimentResult]:
    """Run every config, returning results in config order.

    ``progress`` is invoked with each config that is about to be executed
    (cache hits are silent); under a worker pool it fires at submission
    time, still in config order.
    """
    configs = list(configs)
    if report is None:
        report = CellReport()
    started = time.perf_counter()
    report.total += len(configs)

    results: List[Optional[ExperimentResult]] = [None] * len(configs)
    pending: List[int] = []
    for index, config in enumerate(configs):
        cached = cache.get(config) if cache is not None else None
        if cached is not None:
            results[index] = cached
            report.cache_hits += 1
        else:
            pending.append(index)

    jobs = resolve_jobs(jobs)
    if pending:
        if jobs == 1 or len(pending) == 1:
            for index in pending:
                if progress is not None:
                    progress(configs[index])
                results[index] = run_experiment(configs[index])
        else:
            # The package root rather than sys.path verbatim: workers only
            # need repro importable, not the parent's whole path state.
            import repro

            package_root = os.path.dirname(os.path.dirname(repro.__file__))
            if progress is not None:
                for index in pending:
                    progress(configs[index])
            with ProcessPoolExecutor(
                max_workers=min(jobs, len(pending)),
                initializer=_worker_init,
                initargs=([package_root],),
            ) as pool:
                ordered = pool.map(
                    _execute_cell, [configs[i] for i in pending]
                )
                for index, result in zip(pending, ordered):
                    results[index] = result
        if cache is not None:
            for index in pending:
                cache.put(configs[index], results[index])
        report.executed += len(pending)

    report.wall_clock_s += time.perf_counter() - started
    return results  # type: ignore[return-value]
