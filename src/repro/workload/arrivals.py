"""Poisson arrival generation (paper §4.1).

"We use a Poisson distribution to determine how many normal transactions
are submitted to the system during each interval, which is set to be 20
seconds ... the normal transactions are submitted to the system at the
beginning of each time interval."

Both that bursty submission mode and a smoother within-interval spread
are provided; the paper presets use the bursty mode.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Generator, Optional

from ..errors import ConfigError
from ..sim.events import Event
from ..sim.random import poisson
from ..txn.manager import TransactionManager
from .generator import WorkloadSampler

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.environment import Environment


def calibrate_rate(
    utilisation_target: float,
    total_capacity_units_per_s: float,
    expected_cost_per_txn: float,
) -> float:
    """Arrival rate (txn/s) hitting a utilisation target.

    The paper's LowLoad is 65% of capacity under the *original* plan;
    HighLoad offers 130% (30% above capacity).  Since the expected cost
    per transaction depends on how many types are distributed (α), the
    paper "submits more normal transactions in the case with a lower α
    value" — this falls out naturally from dividing by the expected cost.
    """
    if utilisation_target <= 0:
        raise ConfigError("utilisation target must be positive")
    if total_capacity_units_per_s <= 0:
        raise ConfigError("capacity must be positive")
    if expected_cost_per_txn <= 0:
        raise ConfigError("expected transaction cost must be positive")
    return (
        utilisation_target * total_capacity_units_per_s / expected_cost_per_txn
    )


@dataclass(frozen=True)
class ArrivalConfig:
    """Arrival process parameters."""

    rate_txn_per_s: float
    interval_s: float = 20.0
    #: "burst": all of an interval's transactions at its start (paper);
    #: "spread": evenly spaced within the interval.
    mode: str = "burst"

    def __post_init__(self) -> None:
        if self.rate_txn_per_s < 0:
            raise ConfigError("arrival rate cannot be negative")
        if self.interval_s <= 0:
            raise ConfigError("interval must be positive")
        if self.mode not in ("burst", "spread"):
            raise ConfigError(f"unknown arrival mode {self.mode!r}")


class PoissonArrivalProcess:
    """Submits sampled normal transactions interval by interval."""

    def __init__(
        self,
        env: "Environment",
        tm: TransactionManager,
        sampler: WorkloadSampler,
        config: ArrivalConfig,
        rng: random.Random,
        horizon_s: Optional[float] = None,
        on_submit: Optional[Callable[[Any], None]] = None,
    ) -> None:
        self.env = env
        self.tm = tm
        self.sampler = sampler
        self.config = config
        self._rng = rng
        self.horizon_s = horizon_s
        self.on_submit = on_submit
        self.total_generated = 0
        self.process = env.process(self._run())

    def _run(self) -> Generator[Event, Any, None]:
        mean_per_interval = self.config.rate_txn_per_s * self.config.interval_s
        while self.horizon_s is None or self.env.now < self.horizon_s:
            n = poisson(self._rng, mean_per_interval)
            if self.config.mode == "burst":
                self._submit_batch(n)
                yield self.env.timeout(self.config.interval_s)
            else:
                gap = self.config.interval_s / max(1, n)
                for _ in range(n):
                    self._submit_batch(1)
                    yield self.env.timeout(gap)
                if n == 0:
                    yield self.env.timeout(self.config.interval_s)

    def _submit_batch(self, n: int) -> None:
        for _ in range(n):
            ttype, queries = self.sampler.sample_transaction()
            txn = self.tm.create_normal(queries, type_id=ttype.type_id)
            self.tm.submit(txn)
            self.total_generated += 1
            if self.on_submit is not None:
                self.on_submit(txn)
