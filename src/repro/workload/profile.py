"""Workload profiles: the distinct transaction types and their frequencies.

The paper characterises a workload by its *distinct transactions* (30,000
under the uniform distribution, 23,457 under Zipf with s = 1.16), each a
fixed set of 5 tuples accessed together, weighted by how often instances
of that type arrive.  Partitioning algorithms, Algorithm 1's benefit
computation, and the workload generator all consume this profile.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterator, Optional

from ..errors import ConfigError
from ..types import TupleKey


@dataclass(frozen=True)
class TransactionType:
    """One distinct transaction: a key set and a relative frequency."""

    type_id: int
    keys: tuple[TupleKey, ...]
    frequency: float

    def __post_init__(self) -> None:
        if not self.keys:
            raise ConfigError(f"transaction type {self.type_id} has no keys")
        if len(set(self.keys)) != len(self.keys):
            raise ConfigError(
                f"transaction type {self.type_id} repeats a key: {self.keys}"
            )
        if self.frequency < 0:
            raise ConfigError(
                f"transaction type {self.type_id} has negative frequency"
            )


@dataclass
class WorkloadProfile:
    """The collection of transaction types making up a workload."""

    table: str
    types: list[TransactionType] = field(default_factory=list)

    def __post_init__(self) -> None:
        seen: set[int] = set()
        for ttype in self.types:
            if ttype.type_id in seen:
                raise ConfigError(f"duplicate type id {ttype.type_id}")
            seen.add(ttype.type_id)
        self._by_id: dict[int, TransactionType] = {
            t.type_id: t for t in self.types
        }
        # Lazily-built derived views.  The profile is immutable after
        # construction (``_by_id`` is already built once here), so both
        # caches stay valid for the object's lifetime.
        self._key_index: Optional[dict[TupleKey, list[TransactionType]]] = None
        self._positions: Optional[dict[int, int]] = None

    def __len__(self) -> int:
        return len(self.types)

    def __iter__(self) -> Iterator[TransactionType]:
        return iter(self.types)

    def type(self, type_id: int) -> TransactionType:
        """Look up a type by id."""
        ttype = self._by_id.get(type_id)
        if ttype is None:
            raise ConfigError(f"unknown transaction type {type_id}")
        return ttype

    @property
    def total_frequency(self) -> float:
        """Sum of all type frequencies (normalising constant)."""
        return math.fsum(t.frequency for t in self.types)

    def probability_of(self, type_id: int) -> float:
        """Arrival probability of one type."""
        total = self.total_frequency
        if total == 0:
            return 0.0
        return self.type(type_id).frequency / total

    def all_keys(self) -> set[TupleKey]:
        """Every key referenced by any type."""
        keys: set[TupleKey] = set()
        for ttype in self.types:
            keys.update(ttype.keys)
        return keys

    def types_accessing(self, key: TupleKey) -> list[TransactionType]:
        """All types whose key set contains ``key`` (profile order)."""
        return list(self.key_index().get(key, ()))

    def key_index(self) -> dict[TupleKey, list[TransactionType]]:
        """Inverted index key → types (profile order), built lazily once.

        The returned dict is shared across calls — treat it as
        read-only.
        """
        index = self._key_index
        if index is None:
            index = {}
            for ttype in self.types:
                for key in ttype.keys:
                    index.setdefault(key, []).append(ttype)
            self._key_index = index
        return index

    def position(self, type_id: int) -> int:
        """A type's position in profile iteration order.

        Lets callers that discover candidate types out of order (e.g.
        through :meth:`key_index`) restore profile order — required
        wherever float accumulation must match a full profile scan
        bit for bit.
        """
        positions = self._positions
        if positions is None:
            positions = self._positions = {
                t.type_id: i for i, t in enumerate(self.types)
            }
        try:
            return positions[type_id]
        except KeyError:
            raise ConfigError(f"unknown transaction type {type_id}") from None

    def hottest(self, n: Optional[int] = None) -> list[TransactionType]:
        """Types sorted by descending frequency (ties by id for determinism)."""
        ordered = sorted(
            self.types, key=lambda t: (-t.frequency, t.type_id)
        )
        return ordered if n is None else ordered[:n]
