"""Workload population generation (paper §4.1).

The paper's table holds 500,000 8-byte tuples.  Two transaction
populations are evaluated:

* **Uniform** — 30,000 distinct transactions, equal frequency;
* **Zipf** — 23,457 distinct transactions with skew s = 1.16 (the 80-20
  rule: ~20% of the types receive ~80% of the arrivals).

Every distinct transaction accesses 5 unique tuples; each access is a
read or a write with equal probability, decided per arriving instance.
Types receive disjoint key blocks so a repartition decision for one type
never disturbs another — matching the paper's setup where repartitioning
α% of tuples converts exactly α% of transactions to single-partition.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator

from ..errors import ConfigError
from ..sim.random import weighted_choice
from ..types import AccessMode
from ..routing.query import Query
from .profile import TransactionType, WorkloadProfile

#: Paper values.
PAPER_TUPLE_COUNT = 500_000
PAPER_UNIFORM_TYPES = 30_000
PAPER_ZIPF_TYPES = 23_457
PAPER_ZIPF_S = 1.16
PAPER_QUERIES_PER_TXN = 5


@dataclass(frozen=True)
class WorkloadConfig:
    """Shape of the transaction population."""

    table: str = "accounts"
    tuple_count: int = PAPER_TUPLE_COUNT
    distinct_types: int = PAPER_UNIFORM_TYPES
    queries_per_txn: int = PAPER_QUERIES_PER_TXN
    distribution: str = "uniform"
    zipf_s: float = PAPER_ZIPF_S
    write_probability: float = 0.5

    def __post_init__(self) -> None:
        if self.distribution not in ("uniform", "zipf"):
            raise ConfigError(
                f"unknown distribution {self.distribution!r} "
                "(expected 'uniform' or 'zipf')"
            )
        if self.distinct_types < 1:
            raise ConfigError("need at least one transaction type")
        if self.queries_per_txn < 1:
            raise ConfigError("transactions need at least one query")
        if self.distinct_types * self.queries_per_txn > self.tuple_count:
            raise ConfigError(
                f"{self.distinct_types} types x {self.queries_per_txn} keys "
                f"do not fit in {self.tuple_count} tuples"
            )
        if not 0.0 <= self.write_probability <= 1.0:
            raise ConfigError("write probability must be in [0, 1]")
        if self.zipf_s < 0:
            raise ConfigError("zipf skew cannot be negative")


def iter_profile_types(config: WorkloadConfig) -> Iterator[TransactionType]:
    """Yield the transaction population one type at a time.

    Streaming counterpart of :func:`build_profile` — same types in the
    same order, without materialising the whole population.  The
    cluster-scale presets place hundreds of thousands of types into the
    partition map through this generator so peak memory tracks the map,
    not a transient type list.
    """
    q = config.queries_per_txn
    uniform = config.distribution == "uniform"
    for i in range(config.distinct_types):
        keys = tuple(range(i * q, (i + 1) * q))
        frequency = 1.0 if uniform else 1.0 / ((i + 1) ** config.zipf_s)
        yield TransactionType(type_id=i, keys=keys, frequency=frequency)


def build_profile(config: WorkloadConfig) -> WorkloadProfile:
    """Construct the transaction population for ``config``.

    Type ``i`` owns the key block ``[i*q, (i+1)*q)`` and, under Zipf,
    has rank ``i`` (type 0 is the hottest).  The construction is fully
    deterministic.
    """
    return WorkloadProfile(
        table=config.table, types=list(iter_profile_types(config))
    )


class WorkloadSampler:
    """Draws transaction instances from a profile."""

    def __init__(
        self,
        profile: WorkloadProfile,
        config: WorkloadConfig,
        rng: random.Random,
    ) -> None:
        self.profile = profile
        self.config = config
        self._rng = rng
        total = profile.total_frequency
        if total <= 0:
            raise ConfigError("profile has zero total frequency")
        self._cumulative: list[float] = []
        acc = 0.0
        for ttype in profile.types:
            acc += ttype.frequency / total
            self._cumulative.append(acc)
        if self._cumulative:
            self._cumulative[-1] = 1.0

    def sample_type(self) -> TransactionType:
        """Draw a transaction type according to its frequency."""
        index = weighted_choice(self._rng, self._cumulative)
        return self.profile.types[index]

    def make_queries(self, ttype: TransactionType) -> list[Query]:
        """Materialise one instance: per-key read/write coin flips."""
        queries = []
        for key in ttype.keys:
            if self._rng.random() < self.config.write_probability:
                queries.append(
                    Query(
                        table=self.profile.table,
                        key=key,
                        mode=AccessMode.WRITE,
                        value=self._rng.randrange(1_000_000),
                    )
                )
            else:
                queries.append(
                    Query(
                        table=self.profile.table,
                        key=key,
                        mode=AccessMode.READ,
                    )
                )
        return queries

    def sample_transaction(self) -> tuple[TransactionType, list[Query]]:
        """Draw a type and materialise an instance of it."""
        ttype = self.sample_type()
        return ttype, self.make_queries(ttype)
