"""Workload traces: record an arrival stream, replay it later.

Trace-driven evaluation is how systems papers compare variants on
*identical* inputs.  Two pieces:

* :class:`TraceRecorder` — captures every submitted normal transaction
  (arrival time, type id, per-query key/mode/value) into an in-memory
  trace serialisable to JSON-lines;
* :class:`TraceReplayProcess` — re-submits a trace into any system at
  the recorded virtual times, so two schedulers can be compared on the
  exact same transaction sequence (not merely the same distribution).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Generator, Optional

from ..errors import ConfigError
from ..routing.query import Query
from ..sim.events import Event
from ..txn.manager import TransactionManager
from ..txn.transaction import Transaction
from ..types import AccessMode

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.environment import Environment


@dataclass(frozen=True)
class TraceEntry:
    """One recorded transaction arrival."""

    time: float
    type_id: Optional[int]
    queries: tuple[tuple[int, str, Optional[int]], ...]

    @classmethod
    def from_transaction(
        cls, time: float, txn: Transaction
    ) -> "TraceEntry":
        """Capture a normal transaction's shape."""
        return cls(
            time=time,
            type_id=txn.type_id,
            queries=tuple(
                (q.key, q.mode.value, q.value) for q in txn.queries
            ),
        )

    def to_queries(self, table: str) -> list[Query]:
        """Materialise the recorded queries."""
        return [
            Query(
                table=table,
                key=key,
                mode=AccessMode(mode),
                value=value,
            )
            for key, mode, value in self.queries
        ]

    def to_json(self) -> str:
        """One JSON line."""
        return json.dumps(
            {
                "time": self.time,
                "type_id": self.type_id,
                "queries": [list(q) for q in self.queries],
            }
        )

    @classmethod
    def from_json(cls, line: str) -> "TraceEntry":
        """Parse one JSON line."""
        data = json.loads(line)
        return cls(
            time=float(data["time"]),
            type_id=data["type_id"],
            queries=tuple(
                (int(k), str(m), None if v is None else int(v))
                for k, m, v in data["queries"]
            ),
        )


@dataclass
class Trace:
    """An ordered sequence of arrivals."""

    entries: list[TraceEntry] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self):
        return iter(self.entries)

    def validate(self) -> None:
        """Entries must be time-ordered (replay depends on it)."""
        for earlier, later in zip(self.entries, self.entries[1:]):
            if later.time < earlier.time:
                raise ConfigError(
                    f"trace not time-ordered at t={later.time}"
                )

    # ------------------------------------------------------------------
    # Serialisation (JSON lines)
    # ------------------------------------------------------------------
    def dumps(self) -> str:
        """Serialise to JSON-lines text."""
        return "\n".join(entry.to_json() for entry in self.entries)

    @classmethod
    def loads(cls, text: str) -> "Trace":
        """Parse JSON-lines text."""
        entries = [
            TraceEntry.from_json(line)
            for line in text.splitlines()
            if line.strip()
        ]
        trace = cls(entries=entries)
        trace.validate()
        return trace

    def save(self, path: str) -> None:
        """Write to a .jsonl file."""
        with open(path, "w") as handle:
            handle.write(self.dumps())

    @classmethod
    def load(cls, path: str) -> "Trace":
        """Read from a .jsonl file."""
        with open(path) as handle:
            return cls.loads(handle.read())


class TraceRecorder:
    """Records transaction arrivals; attach via ``record`` calls.

    Typical wiring: pass ``recorder.record`` as the arrival process's
    ``on_submit`` callback, or wrap ``tm.submit``.
    """

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.trace = Trace()
        self._seen: set[int] = set()

    def record(self, txn: Transaction) -> None:
        """Capture one normal transaction (once, ignoring resubmits)."""
        if not txn.is_normal or txn.txn_id in self._seen:
            return
        self._seen.add(txn.txn_id)
        self.trace.entries.append(
            TraceEntry.from_transaction(self.env.now, txn)
        )


class TraceReplayProcess:
    """Re-submits a trace's transactions at their recorded times."""

    def __init__(
        self,
        env: "Environment",
        tm: TransactionManager,
        trace: Trace,
        table: str = "accounts",
        time_offset: float = 0.0,
    ) -> None:
        trace.validate()
        self.env = env
        self.tm = tm
        self.trace = trace
        self.table = table
        self.time_offset = time_offset
        self.replayed = 0
        self.process = env.process(self._run())

    def _run(self) -> Generator[Event, Any, None]:
        for entry in self.trace:
            target = entry.time + self.time_offset
            if target > self.env.now:
                yield self.env.timeout(target - self.env.now)
            txn = self.tm.create_normal(
                entry.to_queries(self.table), type_id=entry.type_id
            )
            self.tm.submit(txn)
            self.replayed += 1
