"""Initial data placement and store loading (paper §4.1).

The experiments vary α — the fraction of tuples that must be
repartitioned.  Before repartitioning, an α-fraction of transaction
types are *distributed*: their 5 tuples are spread round-robin over the
partitions, so running them costs 2·C.  The remaining types are already
collocated.  After deploying the plan, every type is collocated — i.e.
α percent of the normal transactions turn from distributed into
non-distributed, exactly the paper's setup.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from ..cluster.cluster import Cluster
from ..errors import ConfigError
from ..routing.partition_map import PartitionMap
from ..storage.record import Record
from ..types import PartitionId
from .profile import TransactionType, WorkloadProfile


@dataclass(frozen=True)
class PlacementConfig:
    """Initial placement parameters."""

    #: Fraction of transaction types initially distributed (the paper's α).
    alpha: float = 1.0
    #: Tuple payload size (paper: 8 bytes).
    tuple_size_bytes: int = 8

    def __post_init__(self) -> None:
        if not 0.0 <= self.alpha <= 1.0:
            raise ConfigError(f"alpha must be in [0, 1]: {self.alpha}")
        if self.tuple_size_bytes <= 0:
            raise ConfigError("tuple size must be positive")


def choose_distributed_types(
    profile: WorkloadProfile, alpha: float, rng: random.Random
) -> set[int]:
    """Select exactly ⌊α·n⌉ types (uniformly at random) to be distributed.

    Selection is independent of frequency, so the *instance mass* that is
    distributed is also ≈ α for both Uniform and Zipf populations.
    """
    n = len(profile.types)
    count = round(alpha * n)
    type_ids = [t.type_id for t in profile.types]
    if count >= n:
        return set(type_ids)
    return set(rng.sample(type_ids, count))


def choose_distributed_type_ids(
    type_count: int, alpha: float, rng: random.Random
) -> set[int]:
    """:func:`choose_distributed_types` for the canonical id space.

    Generated populations number their types ``0..n-1``
    (:func:`~repro.workload.generator.iter_profile_types`), so the
    streaming assembly path can sample the distributed set from the
    count alone — ``random.sample`` draws identically from ``range(n)``
    and from an equal list of ids, so this matches the profile-based
    selection bit for bit.
    """
    count = round(alpha * type_count)
    if count >= type_count:
        return set(range(type_count))
    return set(rng.sample(range(type_count), count))


def initial_placement(
    profile: Iterable[TransactionType],
    partitions: Sequence[PartitionId],
    distributed_type_ids: set[int],
    pmap: Optional[PartitionMap] = None,
) -> PartitionMap:
    """Place every profiled key: distributed types spread, others collocated.

    * A distributed type's keys go round-robin over all partitions,
      starting at ``type_id mod P`` (so load stays balanced).
    * A collocated type's keys all land on partition ``type_id mod P``.

    ``profile`` may be a :class:`WorkloadProfile` or any iterable of
    types (e.g. the streaming generator the cluster-scale presets use).
    ``pmap`` selects the map implementation to fill — default standard
    :class:`PartitionMap`; the scale tier passes an empty
    :class:`~repro.routing.dense_map.DensePartitionMap`.
    """
    if not partitions:
        raise ConfigError("need at least one partition")
    if pmap is None:
        pmap = PartitionMap()
    elif len(pmap):
        raise ConfigError("initial placement requires an empty partition map")
    p = len(partitions)
    for ttype in profile:
        if ttype.type_id in distributed_type_ids and p > 1:
            for offset, key in enumerate(ttype.keys):
                pmap.assign(key, partitions[(ttype.type_id + offset) % p])
        else:
            home = partitions[ttype.type_id % p]
            for key in ttype.keys:
                pmap.assign(key, home)
    return pmap


def place_unprofiled_keys(
    pmap: PartitionMap,
    tuple_count: int,
    partitions: Sequence[PartitionId],
) -> None:
    """Round-robin any keys no transaction type touches (cold data)."""
    p = len(partitions)
    for key in range(tuple_count):
        if key not in pmap:
            pmap.assign(key, partitions[key % p])


def load_stores(
    cluster: Cluster,
    pmap: PartitionMap,
    config: PlacementConfig,
    rng: random.Random,
) -> int:
    """Materialise records on the nodes according to the map.

    Returns the number of records loaded.
    """
    loaded = 0
    for key in pmap.keys():
        for pid in pmap.replicas_of(key):
            node = cluster.node_for_partition(pid)
            node.store.insert(
                Record(
                    key=key,
                    value=rng.randrange(1_000_000),
                    size_bytes=config.tuple_size_bytes,
                )
            )
            loaded += 1
    return loaded


def verify_placement(cluster: Cluster, pmap: PartitionMap) -> bool:
    """Check stores and map agree (used by tests and failure injection)."""
    for key in pmap.keys():
        for pid in pmap.replicas_of(key):
            if key not in cluster.node_for_partition(pid).store:
                return False
    return True
