"""Workload substrate: profiles, generation, placement, arrivals."""

from .arrivals import ArrivalConfig, PoissonArrivalProcess, calibrate_rate
from .dataset import (
    PlacementConfig,
    choose_distributed_types,
    initial_placement,
    load_stores,
    place_unprofiled_keys,
    verify_placement,
)
from .generator import (
    PAPER_QUERIES_PER_TXN,
    PAPER_TUPLE_COUNT,
    PAPER_UNIFORM_TYPES,
    PAPER_ZIPF_S,
    PAPER_ZIPF_TYPES,
    WorkloadConfig,
    WorkloadSampler,
    build_profile,
)
from .profile import TransactionType, WorkloadProfile
from .trace import Trace, TraceEntry, TraceRecorder, TraceReplayProcess

__all__ = [
    "ArrivalConfig",
    "PAPER_QUERIES_PER_TXN",
    "PAPER_TUPLE_COUNT",
    "PAPER_UNIFORM_TYPES",
    "PAPER_ZIPF_S",
    "PAPER_ZIPF_TYPES",
    "PlacementConfig",
    "PoissonArrivalProcess",
    "Trace",
    "TraceEntry",
    "TraceRecorder",
    "TraceReplayProcess",
    "TransactionType",
    "WorkloadConfig",
    "WorkloadProfile",
    "WorkloadSampler",
    "build_profile",
    "calibrate_rate",
    "choose_distributed_types",
    "initial_placement",
    "load_stores",
    "place_unprofiled_keys",
    "verify_placement",
]
