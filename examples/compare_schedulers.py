#!/usr/bin/env python3
"""Compare all five SOAP scheduling strategies on one workload.

Reproduces one column of the paper's Figure 4 (Zipf, high load,
α = 100%): runs ApplyAll, AfterAll, Feedback, Piggyback, and Hybrid on
identical workloads (same seeds, same arrival sequence) and prints the
RepRate / throughput / latency / failure-rate series side by side.

Run:  python examples/compare_schedulers.py [zipf|uniform] [high|low]
"""

import sys

from repro.experiments import SCHEDULER_NAMES, bench_scale, run_experiment
from repro.metrics import format_comparison_table, mean, series


def main() -> None:
    distribution = sys.argv[1] if len(sys.argv) > 1 else "zipf"
    load = sys.argv[2] if len(sys.argv) > 2 else "high"

    results = {}
    for scheduler in SCHEDULER_NAMES:
        print(f"running {scheduler} on {distribution}/{load} ...")
        results[scheduler] = run_experiment(
            bench_scale(
                scheduler=scheduler,
                distribution=distribution,
                load=load,
                alpha=1.0,
                measure_intervals=40,
                warmup_intervals=5,
            )
        )

    records = {name: r.measured for name, r in results.items()}
    for metric, label in (
        ("rep_rate", "RepRate"),
        ("throughput_txn_per_min", "Throughput (txn/min)"),
        ("mean_latency_ms", "Latency (ms)"),
        ("failure_rate", "Failure rate"),
    ):
        print()
        print(
            format_comparison_table(
                records,
                metric,
                title=f"--- {label} ({distribution}/{load}, alpha=100%) ---",
                every=5,
            )
        )

    print("\n--- completion + interference summary ---")
    for name, result in results.items():
        done = result.completion_interval
        done_text = f"interval {done}" if done is not None else (
            f"{result.measured[-1].rep_rate:.0%} by run end"
        )
        fail = mean(series(result.measured, "failure_rate"))
        print(
            f"{name:>10}: repartitioned by {done_text:<20} "
            f"mean failure rate {fail:.3f}"
        )


if __name__ == "__main__":
    main()
