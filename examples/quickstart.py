#!/usr/bin/env python3
"""Quickstart: deploy a repartition plan online with SOAP's Hybrid scheduler.

Builds the paper's setup at a laptop-friendly scale — a 5-node
shared-nothing cluster, a Zipf transaction population overloading it by
30% — then lets the Hybrid scheduler (piggyback + PID feedback) deploy a
collocation plan online, and prints the per-interval metrics the paper
plots: RepRate, throughput, latency, failure rate.

Run:  python examples/quickstart.py
"""

from repro.experiments import bench_scale, run_experiment
from repro.metrics import format_interval_table


def main() -> None:
    config = bench_scale(
        scheduler="Hybrid",
        distribution="zipf",
        load="high",
        alpha=1.0,
        measure_intervals=30,
        warmup_intervals=5,
    )
    print(f"Running experiment {config.name!r} ...")
    print(
        f"  cluster: {config.cluster.node_count} nodes x "
        f"{config.cluster.capacity_units_per_s} units/s"
    )
    print(
        f"  workload: {config.workload.distinct_types} distinct "
        f"{config.distribution} transactions over "
        f"{config.workload.tuple_count} tuples, "
        f"{int(config.utilisation_target * 100)}% offered load"
    )

    result = run_experiment(config)

    print(
        f"\narrival rate: {result.arrival_rate_txn_per_s:.1f} txn/s, "
        f"repartition plan: {result.rep_ops_total} tuple migrations"
    )
    done = result.completion_interval
    if done is not None:
        print(f"repartitioning completed {done} intervals after start\n")
    else:
        final = result.measured[-1].rep_rate
        print(f"repartitioning reached {final:.0%} within the run\n")

    print(format_interval_table(result.measured, every=2))
    print("\nwhole-run summary:")
    for key, value in result.summary.items():
        print(f"  {key}: {value:.2f}")


if __name__ == "__main__":
    main()
