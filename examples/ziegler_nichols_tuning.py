#!/usr/bin/env python3
"""Tuning the feedback controller with Ziegler–Nichols (paper §3.3).

The paper tunes its PID controller "with an online heuristic-based
tuning method formally known as the Ziegler–Nichols method".  This
example performs the full closed-loop procedure against a simulated
repartition-scheduling plant:

1. drive the plant with a proportional-only controller, ramping the
   gain until the :class:`UltimateGainProbe` observes sustained
   oscillation of the measured cost ratio around the setpoint;
2. read Ku (ultimate gain) and Tu (ultimate period) off the probe;
3. derive P / PI / PID gains from the classic Ziegler–Nichols table;
4. show the closed-loop step response under each gain set.

The plant model: actuating a repartition-cost ratio takes effect one
interval later (transactions promoted this interval execute during the
next), with a little inertia — the classic delay that makes aggressive
gains oscillate.

Run:  python examples/ziegler_nichols_tuning.py
"""

from repro.control import (
    PIDController,
    UltimateGainProbe,
    classic_p_gains,
    classic_pi_gains,
    classic_pid_gains,
)

SETPOINT = 1.05
INTERVAL_S = 20.0


class SchedulingPlant:
    """One-interval actuation delay plus first-order inertia."""

    def __init__(self, inertia: float = 0.3):
        self.inertia = inertia
        self._pending = 0.0   # actuation taking effect next interval
        self.pv = 1.0         # measured (normal+rep)/normal ratio

    def step(self, actuation: float) -> float:
        target = 1.0 + max(0.0, self._pending)
        self.pv += (1 - self.inertia) * (target - self.pv)
        self._pending = actuation
        return self.pv


def find_ultimate_gain() -> tuple[float, float]:
    """Ramp Kp until sustained oscillation; return (Ku, Tu)."""
    gain = 0.5
    while gain < 50:
        plant = SchedulingPlant()
        pid = PIDController(kp=gain, setpoint=SETPOINT)
        probe = UltimateGainProbe(setpoint=SETPOINT)
        actuation = SETPOINT - 1.0
        for step in range(400):
            time = step * INTERVAL_S
            output = pid.update(plant.pv)
            actuation = max(0.0, actuation + output)
            pv = plant.step(actuation)
            if probe.observe(time, pv):
                assert probe.ultimate_period is not None
                return gain, probe.ultimate_period
        gain *= 1.3
    raise RuntimeError("no sustained oscillation found")


def closed_loop_response(gains, steps: int = 30) -> list[float]:
    plant = SchedulingPlant()
    pid = PIDController(
        kp=gains.kp, ki=gains.ki, kd=gains.kd, setpoint=SETPOINT
    )
    actuation = 0.0
    trace = []
    for _ in range(steps):
        output = pid.update(plant.pv, dt=1.0)
        actuation = max(0.0, actuation + output)
        trace.append(plant.step(actuation))
    return trace


def main() -> None:
    ku, tu = find_ultimate_gain()
    print(f"ultimate gain Ku = {ku:.2f}")
    print(f"ultimate period Tu = {tu:.0f}s ({tu / INTERVAL_S:.1f} intervals)")
    print()

    tunings = {
        "P   (ZN)": classic_p_gains(ku),
        "PI  (ZN)": classic_pi_gains(ku, tu / INTERVAL_S),
        "PID (ZN)": classic_pid_gains(ku, tu / INTERVAL_S),
    }
    from repro.control import PIDGains

    tunings["paper (Kp=1)"] = PIDGains(kp=1.0, ki=0.0, kd=0.0)

    print(f"{'tuning':<14} {'Kp':>6} {'Ki':>6} {'Kd':>6}   step response (PV per interval)")
    for name, gains in tunings.items():
        trace = closed_loop_response(gains, steps=12)
        rendered = " ".join(f"{pv:5.3f}" for pv in trace)
        print(
            f"{name:<14} {gains.kp:>6.2f} {gains.ki:>6.2f} "
            f"{gains.kd:>6.2f}   {rendered}"
        )
    print(f"\nsetpoint: {SETPOINT} — all tunings should settle there.")


if __name__ == "__main__":
    main()
