#!/usr/bin/env python3
"""Extending SOAP: writing a custom repartition scheduler.

The scheduler interface (:class:`repro.core.Scheduler`) has four hooks —
``begin``, ``on_interval``, ``on_submit``, ``on_finished`` — and this
example implements a new strategy with them:

**DrainThenBurst**: watch the queue each interval; while the backlog of
normal transactions exceeds a threshold, stay completely out of the way
(like AfterAll), but the moment the backlog drops below it, burst a
batch of repartition transactions at NORMAL priority (like a bounded
ApplyAll).  A crude bang-bang controller — exactly the kind of policy
SOAP's feedback design improves on — but it shows how little code a new
strategy needs.

The example then races DrainThenBurst against the paper's Hybrid on the
same workload.

Run:  python examples/custom_scheduler.py
"""

from repro.core import Scheduler
from repro.experiments import bench_scale, build_system, run_experiment
from repro.metrics import format_comparison_table
from repro.metrics.collectors import IntervalRecord
from repro.types import Priority


class DrainThenBurstScheduler(Scheduler):
    """Bang-bang strategy: idle while backlogged, burst when drained."""

    name = "DrainThenBurst"

    def __init__(self, backlog_threshold: int = 50, burst_size: int = 10):
        super().__init__()
        self.backlog_threshold = backlog_threshold
        self.burst_size = burst_size
        self.bursts = 0

    def begin(self) -> None:
        # Hold everything back; we submit only during bursts.
        pass

    def on_interval(self, record: IntervalRecord) -> None:
        session = self.session
        if session is None or session.is_complete:
            return
        backlog = session.tm.queue.waiting_normal_work()
        if backlog > self.backlog_threshold:
            return
        batch = session.pending()[: self.burst_size]
        for rep_txn in batch:
            session.submit(rep_txn, Priority.NORMAL)
        if batch:
            self.bursts += 1


def run_with_custom_scheduler(config):
    """Run an experiment cell, swapping in the custom scheduler."""

    system = build_system(config)
    interval_s = config.runtime.interval_s
    warmup_s = interval_s * config.runtime.warmup_intervals

    def kickoff():
        yield system.env.timeout(warmup_s)
        # Plan exactly as the stock runner would, then deploy with ours.
        from repro.partitioning import RepartitionOptimizer

        optimizer = RepartitionOptimizer(
            system.cost_model, system.cluster.partition_ids
        )
        types_to_fix = [
            t for t in system.profile.types
            if t.type_id in system.distributed_type_ids
        ]
        plan = optimizer.derive_plan(
            system.profile, system.router.partition_map, types_to_fix
        )
        scheduler = DrainThenBurstScheduler()
        system.session = system.repartitioner.deploy_plan(
            plan, system.profile, scheduler
        )
        system.scheduler = scheduler

    system.env.process(kickoff())
    horizon = warmup_s + interval_s * config.runtime.measure_intervals
    system.env.run(until=horizon + 1e-9)
    return system


def main() -> None:
    config = bench_scale(
        scheduler="Hybrid",  # used for the baseline run
        distribution="zipf",
        load="low",
        alpha=1.0,
        measure_intervals=30,
        warmup_intervals=5,
    )

    print("running Hybrid (paper baseline) ...")
    hybrid = run_experiment(config)

    print("running DrainThenBurst (custom) ...")
    system = run_with_custom_scheduler(config)
    custom_records = system.metrics.intervals[
        config.runtime.warmup_intervals:
    ]

    records = {
        "Hybrid": hybrid.measured,
        "DrainThenBurst": custom_records,
    }
    for metric, label in (
        ("rep_rate", "RepRate"),
        ("mean_latency_ms", "Latency (ms)"),
        ("failure_rate", "Failure rate"),
    ):
        print()
        print(
            format_comparison_table(
                records, metric, title=f"--- {label} ---", every=3
            )
        )

    scheduler = system.scheduler
    print(
        f"\nDrainThenBurst fired {scheduler.bursts} bursts; "
        f"session complete: {system.session.is_complete}"
    )
    print(
        "Lesson: the bang-bang policy either lags Hybrid (threshold too "
        "high) or spikes latency (burst too big) — the gap SOAP's "
        "feedback controller closes automatically."
    )


if __name__ == "__main__":
    main()
