#!/usr/bin/env python3
"""The fully closed loop: monitor → trigger → plan → deploy → repeat.

The paper's repartitioner (§2.2) "periodically extracts the frequency of
transactions ... from the workload history" and triggers a repartition
plan whenever estimated performance drops below a threshold.  The
benchmark harness scripts that moment; this example instead runs the
real loop with no script:

1. a `WorkloadMonitor` observes every arriving transaction;
2. an `AutoRepartitioner` checks estimated utilisation each interval;
3. when the workload *shifts* mid-run (phase 2 switches the arrival
   stream to a different, badly-partitioned population), utilisation
   breaches the threshold and a Hybrid deployment starts on its own;
4. the system re-converges — watch RepRate and failure rate.

Run:  python examples/auto_repartition_loop.py
"""

from repro.core import (
    AutoRepartitioner,
    AutoRepartitionerConfig,
    HybridScheduler,
    WorkloadMonitor,
)
from repro.core.schedulers import FeedbackConfig
from repro.experiments import bench_scale, build_system
from repro.metrics import format_interval_table
from repro.partitioning import RepartitionOptimizer
from repro.workload import (
    ArrivalConfig,
    PoissonArrivalProcess,
    WorkloadSampler,
)

INTERVALS = 40
INTERVAL_S = 20.0


def main() -> None:
    # Build a normally-loaded system whose initial placement is fine...
    config = bench_scale(
        scheduler="Hybrid",  # (only used if we scripted the kickoff)
        distribution="zipf",
        load="low",
        alpha=1.0,
        measure_intervals=INTERVALS,
        warmup_intervals=0,
    )
    system = build_system(config)
    env = system.env

    # ...but don't script any repartitioning.  Instead, wire the loop:
    monitor = WorkloadMonitor(
        env, interval_s=INTERVAL_S, window_intervals=5,
        table=config.workload.table,
    )
    original_on_submit = system.tm.submit

    def submit_with_observation(txn, priority=None):
        if txn.is_normal:
            monitor.observe(txn)
        original_on_submit(txn, priority)

    system.tm.submit = submit_with_observation

    optimizer = RepartitionOptimizer(
        system.cost_model, system.cluster.partition_ids
    )
    hint = system.arrival_rate_txn_per_s * INTERVAL_S
    auto = AutoRepartitioner(
        system.repartitioner,
        monitor,
        optimizer,
        system.metrics,
        capacity_units_per_s=system.cluster.total_capacity_units_per_s,
        scheduler_factory=lambda: HybridScheduler(
            FeedbackConfig(setpoint=1.05, normal_cost_hint=hint)
        ),
        config=AutoRepartitionerConfig(
            utilisation_threshold=0.9, min_arrivals=2
        ),
    )

    print(
        "phase 1: workload matches the placement — the trigger should "
        "stay quiet."
    )
    env.run(until=8 * INTERVAL_S)
    print(f"  t={env.now:.0f}s sessions started: {auto.sessions_started}")

    # Phase 2: the workload shifts — arrivals now come from the
    # *distributed* population the initial placement was never built
    # for (the runner placed alpha=100% types spread out, so simply
    # doubling the arrival rate overloads the old plan).
    print("phase 2: arrival rate doubles — utilisation breaches 90%.")
    shifted = PoissonArrivalProcess(
        env,
        system.tm,
        WorkloadSampler(
            system.profile, config.workload,
            system.streams.stream("shifted-arrivals"),
        ),
        ArrivalConfig(
            rate_txn_per_s=system.arrival_rate_txn_per_s,
            interval_s=INTERVAL_S,
        ),
        system.streams.stream("shifted-poisson"),
        horizon_s=INTERVALS * INTERVAL_S,
    )
    env.run(until=INTERVALS * INTERVAL_S + 1e-9)

    print(f"\nsessions started automatically: {auto.sessions_started}")
    session = system.repartitioner.session
    if session is not None:
        state = "complete" if session.is_complete else "in flight"
        print(
            f"last session: {len(session.rep_txns)} repartition "
            f"transactions, {session.ops_total} ops — {state}"
        )
    print()
    print(format_interval_table(system.metrics.intervals, every=2))
    print(
        "\nNote how RepRate only starts moving after the phase-2 "
        "overload — nobody scripted the deployment."
    )


if __name__ == "__main__":
    main()
