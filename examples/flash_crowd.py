#!/usr/bin/env python3
"""Flash crowd: a workload shift detected and repaired online.

This example uses the library's components directly (no canned
experiment runner) to script the scenario the paper's introduction
motivates: a web application whose access pattern shifts, leaving the
old partitioning scheme misaligned with the workload.

1. Build a 4-node cluster hash-partitioned by key — fine for the
   original, uniform workload.
2. A "flash crowd" arrives: a Zipf-skewed population whose transaction
   types straddle partition boundaries, so most transactions become
   distributed and the cluster saturates.
3. The optimizer's utilisation trigger fires; a Schism-style co-access
   graph partitioner derives a new plan from the observed workload.
4. SOAP deploys the plan online with the Hybrid scheduler while the
   flash crowd keeps hammering the system.

Run:  python examples/flash_crowd.py
"""

import random

from repro.cluster import Cluster, ClusterConfig
from repro.core import HybridScheduler, Repartitioner
from repro.core.schedulers import FeedbackConfig
from repro.metrics import MetricsCollector, format_interval_table
from repro.partitioning import CostModel, GraphPartitioner, RepartitionOptimizer
from repro.routing import QueryRouter
from repro.sim import Environment, RandomStreams
from repro.storage import Record
from repro.txn import (
    ExecutorConfig,
    TransactionExecutor,
    TransactionManager,
    TransactionManagerConfig,
    TwoPhaseCommitCoordinator,
)
from repro.workload import (
    ArrivalConfig,
    PoissonArrivalProcess,
    WorkloadConfig,
    WorkloadSampler,
    build_profile,
    calibrate_rate,
)
from repro.partitioning import HashPartitioner

INTERVAL_S = 20.0
NODES = 4
TUPLES = 1_200


def main() -> None:
    env = Environment()
    streams = RandomStreams(7)
    cluster = Cluster(
        env, ClusterConfig(node_count=NODES, capacity_units_per_s=4.0)
    )

    # --- 1. Original placement: plain hash partitioning ------------------
    hash_plan = HashPartitioner(cluster.partition_ids).plan_for(
        range(TUPLES)
    )
    from repro.routing import PartitionMap

    pmap = PartitionMap()
    value_rng = random.Random(1)
    for key in range(TUPLES):
        pid = hash_plan.target_of(key)
        pmap.assign(key, pid)
        cluster.node_for_partition(pid).store.insert(
            Record(key=key, value=value_rng.randrange(10**6))
        )

    router = QueryRouter(pmap)
    cost_model = CostModel(base_cost=1.0, rep_op_cost=2.0)
    twopc = TwoPhaseCommitCoordinator(env, cluster.network)
    executor = TransactionExecutor(
        env, cluster, router, cost_model, twopc, ExecutorConfig()
    )
    metrics = MetricsCollector(env, interval_s=INTERVAL_S)
    tm = TransactionManager(
        env,
        executor,
        metrics,
        TransactionManagerConfig(max_concurrent=50, queue_timeout_s=80.0),
    )

    # --- 2. The flash crowd: skewed types that straddle partitions -------
    crowd_config = WorkloadConfig(
        tuple_count=TUPLES,
        distinct_types=200,
        distribution="zipf",
        zipf_s=1.16,
    )
    crowd_profile = build_profile(crowd_config)
    # Consecutive 5-key blocks land on different hash partitions, so
    # nearly every flash-crowd transaction is distributed.
    rate = calibrate_rate(
        1.2,  # 120% of capacity: the crowd overloads the cluster
        cluster.total_capacity_units_per_s,
        cost_model.expected_cost_per_txn(crowd_profile.types, pmap),
    )
    sampler = WorkloadSampler(
        crowd_profile, crowd_config, streams.stream("crowd")
    )
    PoissonArrivalProcess(
        env,
        tm,
        sampler,
        ArrivalConfig(rate_txn_per_s=rate, interval_s=INTERVAL_S),
        streams.stream("arrivals"),
        horizon_s=40 * INTERVAL_S,
    )

    # --- 3. Detection + Schism-style planning ----------------------------
    optimizer = RepartitionOptimizer(cost_model, cluster.partition_ids)
    should = optimizer.should_repartition(
        rate, crowd_profile, pmap, cluster.total_capacity_units_per_s
    )
    print(f"crowd arrival rate: {rate:.1f} txn/s")
    print(f"optimizer trigger fires: {should}")

    graph_partitioner = GraphPartitioner(cluster.partition_ids)
    plan = graph_partitioner.derive_plan(crowd_profile)
    cut = graph_partitioner.cut_weight(crowd_profile, plan)
    print(
        f"graph plan: {len(plan)} tuples placed, residual cut weight {cut:.1f}"
    )

    # --- 4. Online deployment with Hybrid ---------------------------------
    repartitioner = Repartitioner(env, tm, router, metrics, cost_model)

    def deploy_after_warmup():
        yield env.timeout(5 * INTERVAL_S)
        scheduler = HybridScheduler(
            FeedbackConfig(
                setpoint=1.05,
                normal_cost_hint=rate * INTERVAL_S,
            )
        )
        session = repartitioner.deploy_plan(
            plan, crowd_profile, scheduler
        )
        print(
            f"[t={env.now:.0f}s] deploying "
            f"{len(session.rep_txns)} repartition transactions "
            f"({session.ops_total} tuple moves) with Hybrid"
        )

    env.process(deploy_after_warmup())
    env.run(until=40 * INTERVAL_S + 1e-9)

    print()
    print(format_interval_table(metrics.intervals, every=2))
    session = repartitioner.session
    if session is not None and session.completed.triggered:
        print(
            f"\nrepartitioning finished at t={session.completed.value:.0f}s; "
            "the crowd's transactions now run single-partition."
        )
    else:
        done = metrics.rep_ops_applied
        print(f"\nrepartitioning still in flight: {done} ops applied.")


if __name__ == "__main__":
    main()
