"""Tests for the elasticity schedule DSL, chunking, and planners."""

import pytest

from repro.core.ranking import RepartitionTransactionSpec, chunk_specs
from repro.elasticity import (
    ElasticityEvent,
    ElasticityScheduleConfig,
    format_elasticity_schedule,
    parse_elasticity_schedule,
)
from repro.errors import ConfigError, PartitioningError
from repro.partitioning.elastic import plan_drain, plan_rebalance
from repro.partitioning.operations import DeleteReplica, Migrate
from repro.routing import PartitionMap, PartitionMapStore


class TestParsing:
    def test_deterministic_events(self):
        schedule = parse_elasticity_schedule("200:add:5,600:drain:7")
        assert schedule.events == (
            ElasticityEvent(at_s=200.0, action="add", value=5),
            ElasticityEvent(at_s=600.0, action="drain", value=7),
        )
        assert schedule.queue_high is None
        assert schedule.enabled

    def test_events_sorted_by_time(self):
        schedule = parse_elasticity_schedule("600:drain:7,200:add:5")
        assert [e.at_s for e in schedule.events] == [200.0, 600.0]

    def test_policy_form(self):
        schedule = parse_elasticity_schedule("high=50,low=2,check=4,max=8")
        assert schedule.queue_high == 50.0
        assert schedule.queue_low == 2.0
        assert schedule.check_intervals == 4
        assert schedule.max_nodes == 8
        assert schedule.min_nodes == 1
        assert schedule.events == ()
        assert schedule.enabled

    def test_policy_pump_knobs(self):
        schedule = parse_elasticity_schedule(
            "high=50,low=2,grace=3,escalate=5,ops=16"
        )
        assert schedule.grace_intervals == 3
        assert schedule.escalation_intervals == 5
        assert schedule.max_ops_per_txn == 16

    @pytest.mark.parametrize("text", [
        "",
        "200:add",                # missing value field
        "200:shrink:1",           # unknown action
        "abc:add:2",              # non-numeric time
        "200:add:x",              # non-numeric value
        "200:add:0",              # must add at least one node
        "200:drain:-1",           # bad node id
        "-5:add:1",               # negative time
        "200:add:1,high=50",      # mixed grammars
        "high=50",                # low missing
        "high=2,low=50",          # inverted watermarks
        "high=50,low=2,check=0",  # bad check count
        "high=50,low=2,min=0",    # bad min
        "high=50,low=2,max=0",    # max below min
        "high=50,low=2,foo=1",    # unknown key
        "high=50,low=abc",        # non-numeric value
    ])
    def test_malformed_raises_config_error(self, text):
        with pytest.raises(ConfigError):
            parse_elasticity_schedule(text)

    @pytest.mark.parametrize("text", [
        "200:add:5,600:drain:7",
        "high=50,low=2,check=3",
        "high=50,low=2,check=3,max=8,min=2",
    ])
    def test_format_round_trips(self, text):
        assert parse_elasticity_schedule(format_elasticity_schedule(
            parse_elasticity_schedule(text)
        )) == parse_elasticity_schedule(text)

    def test_empty_schedule_disabled(self):
        assert not ElasticityScheduleConfig().enabled

    def test_bad_pump_config_rejected(self):
        with pytest.raises(ConfigError):
            ElasticityScheduleConfig(grace_intervals=-1)
        with pytest.raises(ConfigError):
            ElasticityScheduleConfig(escalation_intervals=0)
        with pytest.raises(ConfigError):
            ElasticityScheduleConfig(max_ops_per_txn=0)


def spec(op_count, type_id=3, benefit=10.0, cost=5.0):
    ops = [
        Migrate(op_id=i, key=i, source=0, destination=1)
        for i in range(op_count)
    ]
    return RepartitionTransactionSpec(
        ops=ops, type_id=type_id, benefit=benefit, cost=cost
    )


class TestChunkSpecs:
    def test_small_specs_pass_through(self):
        specs = [spec(3), spec(4)]
        assert chunk_specs(specs, 4) == specs

    def test_oversized_spec_is_split(self):
        chunks = chunk_specs([spec(10)], 4)
        assert [len(c.ops) for c in chunks] == [4, 4, 2]
        # All operations survive, in order.
        assert [op.key for c in chunks for op in c.ops] == list(range(10))

    def test_benefit_density_preserved(self):
        original = spec(10, benefit=20.0, cost=8.0)
        for chunk in chunk_specs([original], 3):
            assert chunk.benefit_density == pytest.approx(
                original.benefit_density
            )

    def test_only_first_chunk_keeps_type_id(self):
        chunks = chunk_specs([spec(10, type_id=7)], 4)
        assert [c.type_id for c in chunks] == [7, -1, -1]

    def test_bad_max_ops_rejected(self):
        with pytest.raises(ValueError):
            chunk_specs([], 0)


def epoch_of(assignments, replicas=()):
    """An epoch over ``{key: primary}`` plus extra ``(key, pid)`` replicas."""
    pmap = PartitionMap()
    for key, pid in assignments.items():
        pmap.assign(key, pid)
    for key, pid in replicas:
        pmap.add_replica(key, pid)
    return PartitionMapStore(pmap).current_epoch


class TestPlanDrain:
    def test_single_replica_tuples_migrate_to_least_loaded(self):
        epoch = epoch_of({0: 0, 1: 0, 2: 1, 3: 2, 4: 2, 5: 2})
        plan, ops = plan_drain(epoch, [0], [0, 1, 2])
        assert all(isinstance(op, Migrate) for op in ops)
        assert [op.key for op in ops] == [0, 1]
        # Partition 1 holds 1 tuple, partition 2 holds 3: both drained
        # tuples land on 1 (it stays least-loaded after the first move
        # only until the loads tie, then ids break the tie).
        assert ops[0].destination == 1
        assert ops[1].destination == 1
        assert plan.target_of(0) == 1

    def test_spare_replicas_deleted_not_migrated(self):
        epoch = epoch_of({0: 0, 1: 1}, replicas=[(0, 2)])
        plan, ops = plan_drain(epoch, [0], [0, 1, 2])
        assert len(ops) == 1
        assert isinstance(ops[0], DeleteReplica)
        assert ops[0].partition == 0

    def test_draining_partition_never_a_target(self):
        epoch = epoch_of({0: 0, 1: 1, 2: 2})
        _plan, ops = plan_drain(epoch, [0], [0, 1, 2])
        assert all(op.destination != 0 for op in ops)

    def test_no_survivors_raises(self):
        epoch = epoch_of({0: 0})
        with pytest.raises(PartitioningError):
            plan_drain(epoch, [0], [0])

    def test_deterministic(self):
        epoch = epoch_of({k: k % 3 for k in range(30)})
        first = plan_drain(epoch, [1], [0, 1, 2])[1]
        second = plan_drain(epoch, [1], [0, 1, 2])[1]
        assert [(op.key, op.destination) for op in first] == [
            (op.key, op.destination) for op in second
        ]


class FakeProfile:
    """Just enough of WorkloadProfile for heat lookups."""

    class _Type:
        def __init__(self, frequency):
            self.frequency = frequency

    def __init__(self, heat):
        self._index = {
            key: (self._Type(freq),) for key, freq in heat.items()
        }

    def key_index(self):
        return self._index


class TestPlanRebalance:
    def test_fills_joiner_to_fair_share(self):
        epoch = epoch_of({k: k % 2 for k in range(12)})
        plan, ops = plan_rebalance(epoch, [2], [0, 1, 2])
        # 12 tuples over 3 targets: the joiner wants 4.
        assert len(ops) == 4
        assert all(op.destination == 2 for op in ops)
        assert all(plan.target_of(op.key) == 2 for op in ops)

    def test_coldest_tuples_move_first(self):
        epoch = epoch_of({k: 0 for k in range(4)})
        profile = FakeProfile({0: 9.0, 1: 1.0, 2: 5.0, 3: 0.5})
        _plan, ops = plan_rebalance(epoch, [1], [0, 1], profile)
        # The joiner wants 2 tuples; the two coldest (3 then 1) move.
        assert [op.key for op in ops] == [3, 1]

    def test_multi_replica_tuples_left_alone(self):
        epoch = epoch_of({k: 0 for k in range(4)}, replicas=[(0, 2)])
        _plan, ops = plan_rebalance(epoch, [1], [0, 1, 2])
        assert 0 not in [op.key for op in ops]

    def test_balanced_cluster_needs_nothing(self):
        epoch = epoch_of({0: 0, 1: 1, 2: 2})
        plan, ops = plan_rebalance(epoch, [2], [0, 1, 2])
        assert ops == []

    def test_no_joiners_is_a_no_op(self):
        epoch = epoch_of({0: 0})
        _plan, ops = plan_rebalance(epoch, [], [0])
        assert ops == []

    def test_unknown_joiner_raises(self):
        epoch = epoch_of({0: 0})
        with pytest.raises(PartitioningError):
            plan_rebalance(epoch, [5], [0, 1])

    def test_donors_never_pushed_below_share(self):
        epoch = epoch_of({k: k % 2 for k in range(10)})
        _plan, ops = plan_rebalance(epoch, [2], [0, 1, 2])
        loads = {0: 5, 1: 5, 2: 0}
        for op in ops:
            loads[op.source] -= 1
            loads[op.destination] += 1
        share = 10 // 3
        assert all(load >= share for load in loads.values())
