"""Tests for Ziegler–Nichols tuning."""

import math

import pytest

from repro.control import (
    UltimateGainProbe,
    classic_p_gains,
    classic_pi_gains,
    classic_pid_gains,
)


class TestGainTables:
    def test_p_rule(self):
        gains = classic_p_gains(ku=4.0)
        assert gains.kp == pytest.approx(2.0)
        assert gains.ki == 0.0
        assert gains.kd == 0.0

    def test_pi_rule(self):
        gains = classic_pi_gains(ku=4.0, tu=2.0)
        assert gains.kp == pytest.approx(1.8)
        assert gains.ki == pytest.approx(1.8 / (2.0 / 1.2))
        assert gains.kd == 0.0

    def test_pid_rule(self):
        gains = classic_pid_gains(ku=4.0, tu=2.0)
        assert gains.kp == pytest.approx(2.4)
        assert gains.ki == pytest.approx(2.4 / 1.0)
        assert gains.kd == pytest.approx(2.4 * 0.25)

    @pytest.mark.parametrize("bad", [0.0, -1.0])
    def test_invalid_ku_rejected(self, bad):
        with pytest.raises(ValueError):
            classic_pid_gains(bad, 1.0)

    @pytest.mark.parametrize("bad", [0.0, -1.0])
    def test_invalid_tu_rejected(self, bad):
        with pytest.raises(ValueError):
            classic_pid_gains(1.0, bad)


class TestUltimateGainProbe:
    def test_detects_sustained_sine(self):
        probe = UltimateGainProbe(setpoint=1.0)
        period = 4.0
        detected = False
        t = 0.0
        while t < 60 and not detected:
            pv = 1.0 + 0.3 * math.sin(2 * math.pi * t / period)
            detected = probe.observe(t, pv)
            t += 0.1
        assert detected
        assert probe.ultimate_period == pytest.approx(period, rel=0.1)

    def test_ignores_decaying_oscillation(self):
        probe = UltimateGainProbe(setpoint=0.0)
        period = 4.0
        t = 0.0
        detected = False
        while t < 60:
            amplitude = math.exp(-0.2 * t)
            pv = amplitude * math.sin(2 * math.pi * t / period)
            if probe.observe(t, pv):
                detected = True
            t += 0.1
        assert not detected

    def test_ignores_flat_signal(self):
        probe = UltimateGainProbe(setpoint=1.0)
        for t in range(100):
            assert not probe.observe(float(t), 1.0)

    def test_irregular_period_rejected(self):
        probe = UltimateGainProbe(setpoint=0.0)
        # Crossings at erratic spacings.
        values = [1, -1, 1, 1, 1, -1, 1, -1, -1, -1, 1, -1]
        detected = False
        t = 0.0
        gaps = [0.5, 3.0, 0.2, 2.4, 0.9, 4.0, 0.3, 1.7, 2.2, 0.1, 3.3, 0.6]
        for value, gap in zip(values, gaps):
            t += gap
            if probe.observe(t, value):
                detected = True
        assert not detected
