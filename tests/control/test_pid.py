"""Tests for the PID controller (Equation 1)."""

import pytest

from repro.control import PIDController


class TestProportional:
    def test_pure_p_output_is_kp_times_error(self):
        pid = PIDController(kp=2.0, setpoint=10.0)
        assert pid.update(4.0) == pytest.approx(12.0)  # e = 6

    def test_error_sign(self):
        pid = PIDController(kp=1.0, setpoint=1.0)
        assert pid.update(2.0) == pytest.approx(-1.0)

    def test_paper_gains_are_pure_p(self):
        """Kp=1, Ki=0, Kd=0 (§4.1) => u(t) = e(t)."""
        pid = PIDController(kp=1.0, ki=0.0, kd=0.0, setpoint=1.05)
        assert pid.update(1.0) == pytest.approx(0.05)
        assert pid.update(1.10) == pytest.approx(-0.05)


class TestIntegral:
    def test_integral_accumulates(self):
        pid = PIDController(kp=0.0, ki=1.0, setpoint=1.0)
        assert pid.update(0.0) == pytest.approx(1.0)
        assert pid.update(0.0) == pytest.approx(2.0)

    def test_integral_scales_with_dt(self):
        pid = PIDController(kp=0.0, ki=1.0, setpoint=1.0)
        assert pid.update(0.0, dt=0.5) == pytest.approx(0.5)

    def test_anti_windup_clamps(self):
        pid = PIDController(kp=0.0, ki=1.0, setpoint=10.0,
                            integral_limit=5.0)
        for _ in range(10):
            out = pid.update(0.0)
        assert out == pytest.approx(5.0)

    def test_invalid_integral_limit(self):
        with pytest.raises(ValueError):
            PIDController(integral_limit=0)


class TestDerivative:
    def test_first_step_has_no_derivative(self):
        pid = PIDController(kp=0.0, kd=1.0, setpoint=0.0)
        assert pid.update(5.0) == pytest.approx(0.0)

    def test_first_step_after_reset_has_no_derivative(self):
        """Reset must clear derivative history, not leave a zero error.

        A sentinel previous-error of 0.0 would make the first post-reset
        step see a spurious de/dt kick; ``None`` means "no history yet".
        """
        pid = PIDController(kp=0.0, kd=1.0, setpoint=0.0)
        pid.update(5.0)
        pid.update(3.0)
        pid.reset()
        assert pid.update(7.0) == pytest.approx(0.0)

    def test_derivative_tracks_error_change(self):
        pid = PIDController(kp=0.0, kd=1.0, setpoint=0.0)
        pid.update(5.0)          # e = -5
        assert pid.update(3.0) == pytest.approx(2.0)  # de = -3-(-5)

    def test_derivative_scales_inverse_dt(self):
        pid = PIDController(kp=0.0, kd=1.0, setpoint=0.0)
        pid.update(5.0, dt=0.5)
        assert pid.update(3.0, dt=0.5) == pytest.approx(4.0)


class TestLifecycle:
    def test_reset_clears_state(self):
        pid = PIDController(kp=1.0, ki=1.0, kd=1.0, setpoint=1.0)
        pid.update(0.0)
        pid.update(0.5)
        pid.reset()
        # After reset, behaves like a fresh controller.
        fresh = PIDController(kp=1.0, ki=1.0, kd=1.0, setpoint=1.0)
        assert pid.update(0.3) == pytest.approx(fresh.update(0.3))

    def test_last_output_tracked(self):
        pid = PIDController(kp=1.0, setpoint=2.0)
        pid.update(1.0)
        assert pid.last_output == pytest.approx(1.0)

    def test_invalid_dt_rejected(self):
        pid = PIDController()
        with pytest.raises(ValueError):
            pid.update(0.0, dt=0)

    def test_convergence_in_velocity_form(self):
        """Integrating a pure-P controller's output converges on SP."""
        pid = PIDController(kp=0.5, setpoint=1.0)
        actuation = 0.0
        pv = 0.0
        for _ in range(100):
            actuation += pid.update(pv)
            pv = actuation  # plant: PV follows actuation exactly
        assert pv == pytest.approx(1.0, abs=1e-6)
