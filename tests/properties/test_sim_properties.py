"""Property-based tests: kernel determinism, queue, parser, PID."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.control import PIDController
from repro.routing import parse_query
from repro.routing.query import Query
from repro.sim import Environment, ZipfSampler
from repro.txn import ProcessingQueue, Transaction
from repro.types import AccessMode, Priority, TxnKind


class TestKernelDeterminism:
    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
            min_size=1,
            max_size=30,
        )
    )
    def test_timeout_order_matches_sorted_delays(self, delays):
        env = Environment()
        fired = []

        def proc(delay, index):
            yield env.timeout(delay)
            fired.append((env.now, index))

        for index, delay in enumerate(delays):
            env.process(proc(delay, index))
        env.run()
        assert [t for t, _i in fired] == sorted(t for t, _i in fired)
        # Equal delays fire in creation order.
        expected = sorted(
            range(len(delays)), key=lambda i: (delays[i], i)
        )
        assert [i for _t, i in fired] == expected


class TestQueueProperties:
    @settings(max_examples=100, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=50),
                st.sampled_from(list(Priority)),
            ),
            unique_by=lambda item: item[0],
            max_size=30,
        )
    )
    def test_pop_order_is_priority_then_fifo(self, items):
        env = Environment()
        queue = ProcessingQueue(env)
        for txn_id, priority in items:
            queue.put(
                Transaction(
                    txn_id=txn_id,
                    kind=TxnKind.NORMAL,
                    queries=[Query("t", 0, AccessMode.READ)],
                    priority=priority,
                )
            )
        popped = []
        while True:
            txn = queue.pop()
            if txn is None:
                break
            popped.append(txn)
        # Stable sort of the input by priority reproduces pop order.
        expected = [
            txn_id
            for txn_id, _p in sorted(
                items,
                key=lambda item: int(item[1]),
            )
        ]
        # Python's sorted is stable, so FIFO-within-priority is preserved.
        assert [t.txn_id for t in popped] == expected


class TestParserProperties:
    @settings(max_examples=200, deadline=None)
    @given(
        st.integers(min_value=0, max_value=10**9),
        st.integers(min_value=-(10**6), max_value=10**6),
        st.booleans(),
    )
    def test_to_sql_parse_roundtrip(self, key, value, is_write):
        if is_write:
            query = Query("accounts", key, AccessMode.WRITE, value=value)
        else:
            query = Query("accounts", key, AccessMode.READ)
        assert parse_query(query.to_sql()) == query


class TestZipfProperties:
    @settings(max_examples=50, deadline=None)
    @given(
        st.integers(min_value=1, max_value=500),
        st.floats(min_value=0.0, max_value=3.0, allow_nan=False),
        st.integers(min_value=0, max_value=2**31),
    )
    def test_probabilities_valid_distribution(self, n, s, seed):
        sampler = ZipfSampler(n, s, random.Random(seed))
        assert abs(sum(sampler.probabilities) - 1.0) < 1e-9
        assert all(p > 0 for p in sampler.probabilities)
        assert 0 <= sampler.sample() < n

    @settings(max_examples=50, deadline=None)
    @given(
        st.integers(min_value=2, max_value=500),
        st.floats(min_value=0.1, max_value=3.0, allow_nan=False),
    )
    def test_top_mass_monotone(self, n, s):
        sampler = ZipfSampler(n, s, random.Random(0))
        masses = [sampler.top_mass(k) for k in range(n + 1)]
        assert all(b >= a for a, b in zip(masses, masses[1:]))


class TestPIDProperties:
    @settings(max_examples=200, deadline=None)
    @given(
        st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
        st.floats(min_value=-10.0, max_value=10.0, allow_nan=False),
        st.floats(min_value=-10.0, max_value=10.0, allow_nan=False),
    )
    def test_pure_p_is_linear_in_error(self, kp, setpoint, pv):
        pid = PIDController(kp=kp, setpoint=setpoint)
        assert pid.update(pv) == (setpoint - pv) * kp

    @settings(max_examples=100, deadline=None)
    @given(
        st.lists(
            st.floats(min_value=-5.0, max_value=5.0, allow_nan=False),
            min_size=1,
            max_size=30,
        )
    )
    def test_integral_bounded_by_limit(self, pvs):
        pid = PIDController(
            kp=0.0, ki=1.0, setpoint=0.0, integral_limit=3.0
        )
        for pv in pvs:
            output = pid.update(pv)
            assert -3.0 <= output <= 3.0
