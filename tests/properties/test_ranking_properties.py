"""Property-based tests: Algorithm 1 invariants for arbitrary inputs."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import generate_and_rank
from repro.partitioning import CostModel, PartitionPlan, diff_plan
from repro.routing import PartitionMap
from repro.workload import TransactionType, WorkloadProfile

PARTITIONS = [0, 1, 2]


@st.composite
def ranking_inputs(draw):
    """A random profile (possibly with shared keys), placement, and plan."""
    n_types = draw(st.integers(min_value=1, max_value=8))
    key_space = draw(st.integers(min_value=4, max_value=16))
    types = []
    for i in range(n_types):
        keys = tuple(
            sorted(
                draw(
                    st.sets(
                        st.integers(min_value=0, max_value=key_space - 1),
                        min_size=2,
                        max_size=4,
                    )
                )
            )
        )
        freq = draw(
            st.floats(min_value=0.01, max_value=10.0, allow_nan=False)
        )
        types.append(TransactionType(i, keys, freq))
    profile = WorkloadProfile(table="t", types=types)

    pmap = PartitionMap()
    for key in range(key_space):
        pmap.assign(key, draw(st.sampled_from(PARTITIONS)))

    plan = PartitionPlan()
    for key in range(key_space):
        if draw(st.booleans()):
            plan.assign(key, draw(st.sampled_from(PARTITIONS)))
    return profile, pmap, plan


class TestAlgorithm1Invariants:
    @settings(max_examples=200, deadline=None)
    @given(ranking_inputs())
    def test_every_op_in_exactly_one_transaction(self, inputs):
        profile, pmap, plan = inputs
        ops = diff_plan(pmap, plan)
        specs = generate_and_rank(ops, plan, pmap, profile, CostModel())
        assigned = [op.op_id for spec in specs for op in spec.ops]
        assert sorted(assigned) == sorted(op.op_id for op in ops)
        assert len(assigned) == len(set(assigned))

    @settings(max_examples=200, deadline=None)
    @given(ranking_inputs())
    def test_density_order_is_descending(self, inputs):
        profile, pmap, plan = inputs
        ops = diff_plan(pmap, plan)
        specs = generate_and_rank(ops, plan, pmap, profile, CostModel())
        densities = [spec.benefit_density for spec in specs]
        assert densities == sorted(densities, reverse=True)

    @settings(max_examples=200, deadline=None)
    @given(ranking_inputs())
    def test_costs_and_benefits_consistent(self, inputs):
        profile, pmap, plan = inputs
        model = CostModel()
        ops = diff_plan(pmap, plan)
        specs = generate_and_rank(ops, plan, pmap, profile, model)
        for spec in specs:
            assert spec.cost == model.rep_txn_cost(spec.ops)
            assert spec.benefit >= 0 or spec.type_id == -1
            if spec.cost > 0:
                assert spec.benefit_density == spec.benefit / spec.cost

    @settings(max_examples=200, deadline=None)
    @given(ranking_inputs())
    def test_benefiting_specs_only_for_improving_types(self, inputs):
        profile, pmap, plan = inputs
        model = CostModel()
        ops = diff_plan(pmap, plan)
        specs = generate_and_rank(ops, plan, pmap, profile, model)
        for spec in specs:
            if spec.type_id >= 0:
                ttype = profile.type(spec.type_id)
                assert model.improvement(ttype, plan, pmap) > 0

    @settings(max_examples=100, deadline=None)
    @given(ranking_inputs())
    def test_deterministic(self, inputs):
        profile, pmap, plan = inputs
        ops = diff_plan(pmap, plan)
        first = generate_and_rank(ops, plan, pmap, profile, CostModel())
        second = generate_and_rank(ops, plan, pmap, profile, CostModel())
        assert [
            (s.type_id, [o.op_id for o in s.ops]) for s in first
        ] == [(s.type_id, [o.op_id for o in s.ops]) for s in second]
