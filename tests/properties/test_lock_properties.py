"""Property-based tests: 2PL lock-table invariants under random traffic."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.locking import DeadlockDetector, LockManager, LockMode
from repro.sim import Environment

# A bounded universe keeps collisions frequent.
TXNS = st.integers(min_value=1, max_value=6)
KEYS = st.integers(min_value=0, max_value=4)
MODES = st.sampled_from([LockMode.SHARED, LockMode.EXCLUSIVE])

ACTIONS = st.lists(
    st.one_of(
        st.tuples(st.just("acquire"), TXNS, KEYS, MODES),
        st.tuples(st.just("release"), TXNS, KEYS, st.none()),
        st.tuples(st.just("release_all"), TXNS, st.none(), st.none()),
        st.tuples(st.just("cancel"), TXNS, KEYS, st.none()),
    ),
    max_size=60,
)


def apply_actions(actions, with_detector=True):
    env = Environment()
    detector = DeadlockDetector() if with_detector else None
    manager = LockManager(env, detector)
    events = []
    for action, txn, key, mode in actions:
        if action == "acquire":
            events.append(manager.acquire(txn, key, mode))
        elif action == "release":
            manager.release(txn, key)
        elif action == "release_all":
            manager.release_all(txn)
        elif action == "cancel":
            manager.cancel(txn, key)
    for event in events:
        event.defused = True  # deadlock failures are expected here
    return manager


def holders_by_key(manager):
    return {key: manager.holders_of(key) for key in range(5)}


class TestLockInvariants:
    @settings(max_examples=200, deadline=None)
    @given(ACTIONS)
    def test_at_most_one_exclusive_holder(self, actions):
        manager = apply_actions(actions)
        for _key, holders in holders_by_key(manager).items():
            exclusive = [
                t for t, m in holders.items() if m is LockMode.EXCLUSIVE
            ]
            assert len(exclusive) <= 1

    @settings(max_examples=200, deadline=None)
    @given(ACTIONS)
    def test_exclusive_excludes_shared(self, actions):
        manager = apply_actions(actions)
        for _key, holders in holders_by_key(manager).items():
            modes = set(holders.values())
            if LockMode.EXCLUSIVE in modes:
                assert len(holders) == 1

    @settings(max_examples=200, deadline=None)
    @given(ACTIONS)
    def test_release_all_leaves_no_trace(self, actions):
        manager = apply_actions(actions)
        for txn in range(1, 7):
            manager.release_all(txn)
        for key in range(5):
            assert manager.holders_of(key) == {}
            assert manager.queue_length(key) == 0

    @settings(max_examples=150, deadline=None)
    @given(ACTIONS)
    def test_no_granted_event_left_pending(self, actions):
        """Whoever holds a lock must have had *a* grant event succeed.

        A transaction may legally hold S while a later S→X upgrade
        request is still waiting on co-holders, so the invariant is
        per-(txn, key) over *all* of its acquire events: at least one
        must have succeeded, not necessarily the most recent.
        """
        env = Environment()
        manager = LockManager(env, DeadlockDetector())
        grants = {}
        for action, txn, key, mode in actions:
            if action == "acquire":
                event = manager.acquire(txn, key, mode)
                event.defused = True
                grants.setdefault((txn, key), []).append(event)
            elif action == "release":
                manager.release(txn, key)
            elif action == "release_all":
                manager.release_all(txn)
            elif action == "cancel":
                manager.cancel(txn, key)
        for key in range(5):
            for txn in manager.holders_of(key):
                events = grants.get((txn, key))
                if events and not any(e.ok for e in events):
                    raise AssertionError(
                        f"txn {txn} holds {key} but no grant event succeeded"
                    )

    @settings(max_examples=100, deadline=None)
    @given(ACTIONS)
    def test_detector_graph_never_keeps_finished_waiters(self, actions):
        env = Environment()
        detector = DeadlockDetector()
        manager = LockManager(env, detector)
        for action, txn, key, mode in actions:
            if action == "acquire":
                manager.acquire(txn, key, mode).defused = True
            elif action == "release":
                manager.release(txn, key)
            elif action == "release_all":
                manager.release_all(txn)
            elif action == "cancel":
                manager.cancel(txn, key)
        # Any transaction the detector still thinks is waiting must
        # genuinely be waiting at the manager.
        for txn in range(1, 7):
            if detector.waits_of(txn):
                assert manager.is_waiting(txn)
