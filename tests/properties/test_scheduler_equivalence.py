"""Property test: the calendar-queue scheduler matches the heapq oracle.

Hypothesis generates random interleavings of timeouts, callback-driven
re-scheduling, processes, interrupts, lazy cancellations, and defused
failures; each program is interpreted twice — once on the old single-heap
scheduler (kept verbatim under ``tests/sim/heapq_reference.py``) and once
on the production :class:`repro.sim.Environment` — and the full firing
log (virtual time + which callback, i.e. the pop order) must be
identical.  Small ``bucket_limit`` values are included on purpose: they
force a refill every handful of events, exercising the bucket/overflow
machinery far harder than the default ever would.
"""

from math import inf

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Environment, Interrupt

from ..sim.heapq_reference import HeapqEnvironment

#: Delays are floats on purpose — both schedulers must order identical
#: float keys identically, including ties broken by sequence number.
_delays = st.one_of(
    st.floats(min_value=0.0, max_value=50.0, allow_nan=False),
    st.integers(min_value=0, max_value=50).map(float),
)

_op = st.one_of(
    # plain timeout with a logging callback
    st.tuples(st.just("timeout"), _delays),
    # timeout whose callback schedules more timeouts (the late-arrival
    # path: inserts land while the current bucket is being drained)
    st.tuples(st.just("chain"), _delays, st.lists(_delays, max_size=3)),
    # a process sleeping through several timeouts
    st.tuples(st.just("proc"), st.lists(_delays, min_size=1, max_size=4)),
    # a process that interrupts an earlier process mid-sleep
    st.tuples(st.just("interrupt"), st.integers(0, 7), _delays),
    # lazy cancellation: the queue entry stays, the callback is detached
    st.tuples(st.just("cancelled"), _delays),
    # failed-and-defused timeout: pops once, never escalates
    st.tuples(st.just("fail"), _delays),
)

_programs = st.lists(_op, max_size=25)

_bucket_limits = st.sampled_from([1, 2, 3, 7, 64, 2048])


def _build(env, program, log):
    """Interpret ``program`` against ``env``, recording into ``log``."""
    procs = []

    def logging_cb(tag):
        def cb(_event):
            log.append((env.now, tag))

        return cb

    for index, op in enumerate(program):
        kind = op[0]
        if kind == "timeout":
            env.timeout(op[1]).callbacks.append(logging_cb(("t", index)))
        elif kind == "chain":
            nested = op[2]

            def chain_cb(_event, index=index, nested=nested):
                log.append((env.now, ("chain", index)))
                for j, delay in enumerate(nested):
                    env.timeout(delay).callbacks.append(
                        logging_cb(("nested", index, j))
                    )

            env.timeout(op[1]).callbacks.append(chain_cb)
        elif kind == "proc":

            def body(delays=op[1], index=index):
                for j, delay in enumerate(delays):
                    try:
                        yield env.timeout(delay)
                    except Interrupt as interrupt:
                        log.append(
                            (env.now, ("interrupted", index, j, interrupt.cause))
                        )
                        return
                    log.append((env.now, ("woke", index, j)))

            procs.append(env.process(body()))
        elif kind == "interrupt":
            target, delay = op[1], op[2]

            def killer(target=target, delay=delay, index=index):
                yield env.timeout(delay)
                if procs:
                    victim = procs[target % len(procs)]
                    if victim.is_alive:
                        victim.interrupt(("chaos", index))
                        log.append((env.now, ("killed", index)))

            env.process(killer())
        elif kind == "cancelled":
            timeout = env.timeout(op[1])
            cb = logging_cb(("never", index))
            timeout.callbacks.append(cb)
            timeout.callbacks.remove(cb)
        elif kind == "fail":
            timeout = env.timeout(op[1])
            timeout.callbacks.append(logging_cb(("failed", index)))
            timeout.fail(RuntimeError("boom"))
            timeout.defused = True
    return procs


def _execute(make_env, program):
    env = make_env()
    log = []
    _build(env, program, log)
    env.run()
    log.append(("final", env.now))
    return log


def _execute_stepwise(make_env, program):
    """Drive via peek()/step(), recording the exact pop schedule."""
    env = make_env()
    log = []
    _build(env, program, log)
    trace = []
    while True:
        upcoming = env.peek()
        trace.append(upcoming)
        if upcoming == inf:
            break
        env.step()
        trace.append(env.now)
    return log, trace


def _execute_intervals(make_env, program):
    env = make_env()
    log = []
    _build(env, program, log)
    boundaries = []
    env.run_intervals(
        7.0, 9, on_interval=lambda i: boundaries.append((i, env.now, len(log)))
    )
    return log, boundaries


class TestPopOrderEquivalence:
    @settings(max_examples=200, deadline=None)
    @given(program=_programs, bucket_limit=_bucket_limits)
    def test_run_produces_identical_firing_log(self, program, bucket_limit):
        reference = _execute(HeapqEnvironment, program)
        actual = _execute(
            lambda: Environment(bucket_limit=bucket_limit), program
        )
        assert actual == reference

    @settings(max_examples=100, deadline=None)
    @given(program=_programs, bucket_limit=_bucket_limits)
    def test_stepwise_peek_and_pop_schedule_identical(
        self, program, bucket_limit
    ):
        ref_log, ref_trace = _execute_stepwise(HeapqEnvironment, program)
        log, trace = _execute_stepwise(
            lambda: Environment(bucket_limit=bucket_limit), program
        )
        assert log == ref_log
        assert trace == ref_trace

    @settings(max_examples=100, deadline=None)
    @given(program=_programs, bucket_limit=_bucket_limits)
    def test_interval_batched_run_identical(self, program, bucket_limit):
        ref = _execute_intervals(HeapqEnvironment, program)
        actual = _execute_intervals(
            lambda: Environment(bucket_limit=bucket_limit), program
        )
        assert actual == ref
