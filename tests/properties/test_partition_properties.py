"""Property-based tests: partition map and planning invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import RoutingError
from repro.partitioning import CostModel, RepartitionOptimizer, diff_plan
from repro.routing import PartitionMap
from repro.workload import TransactionType, WorkloadProfile

PARTITIONS = [0, 1, 2]


@st.composite
def partition_maps(draw, n_keys=12):
    pmap = PartitionMap()
    for key in range(n_keys):
        pmap.assign(key, draw(st.sampled_from(PARTITIONS)))
    return pmap


@st.composite
def map_mutations(draw):
    return draw(
        st.lists(
            st.tuples(
                st.sampled_from(["add", "remove", "move"]),
                st.integers(min_value=0, max_value=11),
                st.sampled_from(PARTITIONS),
                st.sampled_from(PARTITIONS),
            ),
            max_size=40,
        )
    )


class TestPartitionMapInvariants:
    @settings(max_examples=200, deadline=None)
    @given(partition_maps(), map_mutations())
    def test_every_key_always_has_a_replica(self, pmap, mutations):
        for action, key, p1, p2 in mutations:
            try:
                if action == "add":
                    pmap.add_replica(key, p1)
                elif action == "remove":
                    pmap.remove_replica(key, p1)
                else:
                    pmap.move(key, p1, p2)
            except RoutingError:
                pass  # invalid mutations must be rejected, not corrupt
        for key in range(12):
            replicas = pmap.replicas_of(key)
            assert len(replicas) >= 1
            assert len(set(replicas)) == len(replicas)  # distinct partitions

    @settings(max_examples=200, deadline=None)
    @given(partition_maps())
    def test_copy_equivalence(self, pmap):
        clone = pmap.copy()
        for key in range(12):
            assert clone.replicas_of(key) == pmap.replicas_of(key)


@st.composite
def profiles(draw):
    n_types = draw(st.integers(min_value=1, max_value=6))
    types = []
    for i in range(n_types):
        keys = tuple(range(i * 2, i * 2 + 2))
        freq = draw(
            st.floats(min_value=0.01, max_value=10.0, allow_nan=False)
        )
        types.append(TransactionType(i, keys, freq))
    return WorkloadProfile(table="t", types=types)


class TestPlanningInvariants:
    @settings(max_examples=150, deadline=None)
    @given(profiles(), st.randoms(use_true_random=False))
    def test_derived_plan_collocates_every_type(self, profile, rng):
        pmap = PartitionMap()
        for ttype in profile.types:
            for key in ttype.keys:
                pmap.assign(key, rng.choice(PARTITIONS))
        optimizer = RepartitionOptimizer(CostModel(), PARTITIONS)
        plan = optimizer.derive_plan(profile, pmap)
        for ttype in profile.types:
            homes = {
                plan.effective_partition(k, pmap) for k in ttype.keys
            }
            assert len(homes) == 1

    @settings(max_examples=150, deadline=None)
    @given(profiles(), st.randoms(use_true_random=False))
    def test_diff_never_moves_unplanned_keys(self, profile, rng):
        pmap = PartitionMap()
        for ttype in profile.types:
            for key in ttype.keys:
                pmap.assign(key, rng.choice(PARTITIONS))
        optimizer = RepartitionOptimizer(CostModel(), PARTITIONS)
        plan = optimizer.derive_plan(profile, pmap)
        ops = diff_plan(pmap, plan)
        for op in ops:
            assert op.key in plan
            assert pmap.primary_of(op.key) == op.source
            assert plan.target_of(op.key) == op.destination

    @settings(max_examples=100, deadline=None)
    @given(profiles())
    def test_plan_cost_never_worse_than_original(self, profile):
        """The collocation plan can only reduce expected cost."""
        pmap = PartitionMap()
        for ttype in profile.types:
            for offset, key in enumerate(ttype.keys):
                pmap.assign(key, PARTITIONS[offset % len(PARTITIONS)])
        model = CostModel()
        optimizer = RepartitionOptimizer(model, PARTITIONS)
        plan = optimizer.derive_plan(profile, pmap)
        before = model.expected_cost_per_txn(profile.types, pmap)
        after = model.expected_cost_per_txn(profile.types, pmap, plan)
        assert after <= before
