"""Property-based tests: epoch delta-log and staged-delta invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import RoutingError
from repro.routing import PartitionMap, PartitionMapStore

PARTITIONS = [0, 1, 2, 3]
KEYS = list(range(10))

#: One staged mutation: (action, key, partition-ish args).
mutation = st.tuples(
    st.sampled_from(["add", "remove", "move"]),
    st.sampled_from(KEYS),
    st.sampled_from(PARTITIONS),
    st.sampled_from(PARTITIONS),
)

#: A run is a list of stages; each stage is a list of mutations followed
#: by a publish/discard decision.
stage_scripts = st.lists(
    st.tuples(st.lists(mutation, max_size=8), st.booleans()),
    max_size=10,
)


def fresh_store(max_delta_log: int = 1024) -> PartitionMapStore:
    pmap = PartitionMap()
    for key in KEYS:
        pmap.assign(key, key % len(PARTITIONS))
    return PartitionMapStore(pmap, max_delta_log=max_delta_log)


def run_script(store: PartitionMapStore, script) -> None:
    """Drive the store through staged mutations, ignoring invalid ones."""
    for mutations, should_publish in script:
        stage = store.begin_stage()
        for action, key, p1, p2 in mutations:
            try:
                if action == "add":
                    stage.add_replica(key, p1)
                elif action == "remove":
                    stage.remove_replica(key, p1)
                else:
                    stage.mark_moving(key)
                    stage.move(key, p1, p2)
            except RoutingError:
                pass  # invalid deltas must be rejected, not staged
        if should_publish:
            store.publish(stage)
        else:
            store.discard(stage)


def snapshot(view) -> dict:
    return {key: tuple(view.replicas_of(key)) for key in KEYS}


class TestDeltaLogReplay:
    @settings(max_examples=150, deadline=None)
    @given(stage_scripts)
    def test_replay_from_epoch_zero_reconstructs_published_map(self, script):
        """Applying every logged delta to the initial map, in log order,
        lands exactly on the published live map."""
        store = fresh_store()
        initial = snapshot(store)
        run_script(store, script)
        replayed = dict(initial)
        for transition in store.delta_log():
            for delta in transition.deltas:
                assert replayed.get(delta.key) == delta.before
                if delta.after is None:
                    replayed.pop(delta.key, None)
                else:
                    replayed[delta.key] = delta.after
        assert replayed == snapshot(store)

    @settings(max_examples=150, deadline=None)
    @given(stage_scripts)
    def test_transition_epoch_ids_are_contiguous(self, script):
        store = fresh_store()
        run_script(store, script)
        ids = [t.epoch_id for t in store.delta_log()]
        assert ids == list(range(1, store.epoch_id + 1))

    @settings(max_examples=100, deadline=None)
    @given(stage_scripts)
    def test_pinned_epoch_zero_always_reads_initial_map(self, script):
        store = fresh_store()
        initial = snapshot(store)
        pinned = store.pin()
        run_script(store, script)
        assert snapshot(pinned) == initial


class TestReplicaIntegrity:
    @settings(max_examples=150, deadline=None)
    @given(stage_scripts)
    def test_no_duplicate_replicas_ever_published(self, script):
        """Across any interleaving of staged deltas, neither the live map
        nor any logged delta ever holds a duplicated replica, and every
        key keeps at least one replica."""
        store = fresh_store()
        run_script(store, script)
        for key in KEYS:
            replicas = store.replicas_of(key)
            assert len(replicas) >= 1
            assert len(set(replicas)) == len(replicas)
        for transition in store.delta_log():
            for delta in transition.deltas:
                for value in (delta.before, delta.after):
                    if value is not None:
                        assert len(set(value)) == len(value)

    @settings(max_examples=100, deadline=None)
    @given(stage_scripts)
    def test_no_moving_marks_survive_closed_stages(self, script):
        store = fresh_store()
        run_script(store, script)
        assert store.moving_keys() == frozenset()
