"""Property-based tests: membership interleavings never strand data.

For any interleaving of scale-out, drain, and crash/restart events, at
quiescence every tuple is still routed to a living (non-RETIRED)
partition, no key is left marked MOVING, and every drained node reached
zero resident tuples before retirement.
"""

import dataclasses

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import ClusterConfig, NodeState
from repro.elasticity import parse_elasticity_schedule
from repro.experiments import (
    bench_scale,
    build_system,
    start_repartitioning,
)
from repro.faults import parse_fault_schedule
from repro.workload import WorkloadConfig

TUPLES = 120

#: Extra 20 s intervals granted past the nominal horizon for the pump
#: to finish every migration.  Draining down to a single survivor can
#: leave it over capacity (offered load is sized for three nodes), so
#: the queue — and the piggyback carriers inside it — drains at FIFO
#: pace; quiescence arrives late but provably arrives.
GRACE_INTERVALS = 40

#: Event times land in [40, 160] s (slots 2-8 of 20 s intervals).
slots = st.integers(min_value=2, max_value=8)

#: 0-2 scale-outs of 1-2 nodes each.
adds = st.lists(
    st.tuples(slots, st.integers(min_value=1, max_value=2)), max_size=2
)

#: Drain up to two of the three seed nodes (one must keep serving).
drains = st.lists(
    st.tuples(slots, st.sampled_from([0, 1, 2])),
    max_size=2,
    unique_by=lambda event: event[1],
)

#: At most one crash/restart cycle, aimed at any of the first five
#: node ids (joiners included when they exist; crashing an id that was
#: never provisioned is rejected by config validation, so clamp later).
crashes = st.lists(
    st.tuples(
        slots,
        st.integers(min_value=0, max_value=4),
        st.integers(min_value=1, max_value=2),  # down for 1-2 slots
    ),
    max_size=1,
)


def build_config(add_events, drain_events, crash_events):
    parts = [f"{slot * 20}:add:{count}" for slot, count in add_events]
    parts.extend(f"{slot * 20}:drain:{node}" for slot, node in drain_events)
    elasticity = ",".join(parts) or None

    fault_parts = []
    for slot, node, down in crash_events:
        # Only nodes provisioned strictly before the crash fires are
        # legal targets (a same-tick add may be ordered after the
        # crash event; the injector validates ids at fire time).  Ids
        # are handed out chronologically, so the joiners alive before
        # this slot are exactly 3 .. 3+early-1.
        early = sum(
            count for add_slot, count in add_events if add_slot < slot
        )
        eligible = list(range(3 + early))
        node = eligible[node % len(eligible)]
        fault_parts.append(f"{slot * 20}:crash:{node}")
        fault_parts.append(f"{(slot + down) * 20}:restart:{node}")
    faults = ",".join(fault_parts) or None

    config = bench_scale(
        scheduler="Hybrid",
        load="low",
        seed=1,
        measure_intervals=17,
        warmup_intervals=1,
        faults=parse_fault_schedule(faults) if faults else None,
        elasticity=(
            parse_elasticity_schedule(elasticity) if elasticity else None
        ),
    )
    return dataclasses.replace(
        config,
        cluster=ClusterConfig(node_count=3, capacity_units_per_s=4.0),
        workload=WorkloadConfig(
            tuple_count=TUPLES,
            distinct_types=24,
            distribution=config.workload.distribution,
        ),
    )


def run_to_quiescence(config):
    system = build_system(config)
    env = system.env
    interval_s = config.runtime.interval_s
    warmup_s = interval_s * config.runtime.warmup_intervals

    def kickoff():
        yield env.timeout(warmup_s)
        start_repartitioning(system)

    env.process(kickoff())
    horizon = warmup_s + interval_s * config.runtime.measure_intervals
    env.run(until=horizon + 1e-9)
    # The property is stated *at quiescence*: grant overloaded
    # interleavings a bounded tail to finish in-flight migrations.
    for _ in range(GRACE_INTERVALS):
        if _quiescent(system):
            break
        horizon += interval_s
        env.run(until=horizon + 1e-9)
    return system


def _quiescent(system):
    controller = system.elasticity_controller
    if controller is not None and not controller.quiescent:
        return False
    session = system.repartitioner.session
    if session is not None and not session.is_complete:
        return False
    return not system.store.moving_keys()


class TestNoTupleStranded:
    @settings(max_examples=12, deadline=None)
    @given(adds, drains, crashes)
    def test_interleavings_leave_no_tuple_unrouted(
        self, add_events, drain_events, crash_events
    ):
        system = run_to_quiescence(
            build_config(add_events, drain_events, crash_events)
        )
        store = system.store
        cluster = system.cluster

        # Quiescent: every transition ran to completion inside the tail.
        controller = system.elasticity_controller
        if controller is not None:
            assert controller.quiescent

        # No MOVING leak: every staged migration published or discarded.
        assert store.moving_keys() == frozenset()

        # Every tuple routed, and only to living partitions.
        epoch = store.current_epoch
        retired = {
            node.partition_id
            for node in cluster.nodes
            if node.state is NodeState.RETIRED
        }
        routed = set()
        for key in epoch.keys():
            replicas = tuple(epoch.replicas_of(key))
            assert replicas, f"key {key} unrouted"
            assert not retired.intersection(replicas), (
                f"key {key} routed to retired partition(s) "
                f"{retired.intersection(replicas)}"
            )
            routed.add(key)
        assert routed == set(range(TUPLES))

        # Retirement never stranded data on the way out.
        for node in cluster.nodes:
            if node.state is NodeState.RETIRED:
                assert len(node.store) == 0
