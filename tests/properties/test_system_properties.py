"""Property-based tests over whole mini-experiments.

These drive the full stack (cluster, 2PL, 2PC, schedulers, workload)
with randomised configurations and assert the invariants that must hold
for *any* configuration:

* tuple conservation — no tuple is ever lost or duplicated outside its
  replica set, whatever the scheduler does;
* store/map agreement — every mapped replica is resident;
* metric sanity — counts non-negative, rates within [0, 1];
* determinism — the same configuration replays identically.
"""

from dataclasses import replace

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import ClusterConfig
from repro.experiments import bench_scale, run_experiment
from repro.workload import WorkloadConfig

SCHEDULERS = st.sampled_from(
    ["ApplyAll", "AfterAll", "Feedback", "Piggyback", "Hybrid"]
)


@st.composite
def mini_configs(draw):
    scheduler = draw(SCHEDULERS)
    distribution = draw(st.sampled_from(["zipf", "uniform"]))
    load = draw(st.sampled_from(["high", "low"]))
    alpha = draw(st.sampled_from([1.0, 0.6, 0.2]))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    node_count = draw(st.integers(min_value=2, max_value=5))
    config = bench_scale(
        scheduler=scheduler,
        distribution=distribution,
        load=load,
        alpha=alpha,
        seed=seed,
        measure_intervals=4,
        warmup_intervals=1,
    )
    return replace(
        config,
        cluster=ClusterConfig(
            node_count=node_count, capacity_units_per_s=4.0
        ),
        workload=WorkloadConfig(
            tuple_count=150, distinct_types=30, distribution=distribution
        ),
    )


class TestSystemInvariants:
    @settings(max_examples=15, deadline=None)
    @given(mini_configs())
    def test_tuples_conserved_and_metrics_sane(self, config):
        from repro.experiments import build_system, start_repartitioning
        from repro.workload import verify_placement

        system = build_system(config)
        env = system.env
        interval = config.runtime.interval_s

        def kickoff():
            yield env.timeout(interval * config.runtime.warmup_intervals)
            start_repartitioning(system)

        env.process(kickoff())
        horizon = interval * (
            config.runtime.warmup_intervals
            + config.runtime.measure_intervals
        )
        env.run(until=horizon)
        # Drain in-flight transactions: a migration caught mid-commit
        # legitimately has its destination copy inserted already, so
        # conservation is asserted at quiescence.
        deadline = horizon + 600
        while (
            (system.tm.in_flight > 0 or len(system.tm.queue) > 0)
            and env.now < deadline
        ):
            env.run(until=env.now + 5)

        # Tuple conservation: every tuple exists exactly once per mapped
        # replica, and no store holds unmapped residents.
        pmap = system.router.partition_map
        assert verify_placement(system.cluster, pmap)
        mapped_residency = sum(
            pmap.replica_count(key) for key in pmap.keys()
        )
        actual_residency = sum(
            len(node.store) for node in system.cluster.nodes
        )
        assert actual_residency == mapped_residency

        # Metric sanity on every interval.
        for record in system.metrics.intervals:
            assert record.submitted >= 0
            assert record.committed >= 0
            assert record.aborted >= 0
            assert 0.0 <= record.rep_rate <= 1.0
            assert record.normal_cost >= 0.0
            assert record.mean_latency_ms >= 0.0

    @settings(max_examples=5, deadline=None)
    @given(mini_configs())
    def test_same_config_replays_identically(self, config):
        first = run_experiment(config)
        second = run_experiment(config)
        assert first.summary == second.summary
        assert [r.submitted for r in first.intervals] == [
            r.submitted for r in second.intervals
        ]
        assert [r.aborted for r in first.intervals] == [
            r.aborted for r in second.intervals
        ]
