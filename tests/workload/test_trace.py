"""Tests for workload trace recording and replay."""

import pytest

from repro.errors import ConfigError
from repro.routing import Query
from repro.types import AccessMode
from repro.workload import Trace, TraceEntry, TraceRecorder, TraceReplayProcess

from ..txn.conftest import build_stack


def make_entry(time=0.0, type_id=1, queries=((3, "read", None),)):
    return TraceEntry(time=time, type_id=type_id, queries=tuple(queries))


class TestTraceEntry:
    def test_from_transaction_captures_shape(self):
        stack = build_stack()
        txn = stack.tm.create_normal(
            [
                Query("t", 3, AccessMode.READ),
                Query("t", 4, AccessMode.WRITE, value=9),
            ],
            type_id=5,
        )
        entry = TraceEntry.from_transaction(12.5, txn)
        assert entry.time == 12.5
        assert entry.type_id == 5
        assert entry.queries == ((3, "read", None), (4, "write", 9))

    def test_to_queries_roundtrip(self):
        entry = make_entry(queries=((3, "read", None), (4, "write", 9)))
        queries = entry.to_queries("accounts")
        assert queries[0] == Query("accounts", 3, AccessMode.READ)
        assert queries[1] == Query("accounts", 4, AccessMode.WRITE, value=9)

    def test_json_roundtrip(self):
        entry = make_entry(time=7.25, queries=((1, "write", 42),))
        assert TraceEntry.from_json(entry.to_json()) == entry


class TestTrace:
    def test_serialisation_roundtrip(self):
        trace = Trace(
            entries=[make_entry(time=0.0), make_entry(time=5.0)]
        )
        parsed = Trace.loads(trace.dumps())
        assert parsed.entries == trace.entries

    def test_unordered_trace_rejected(self):
        trace = Trace(
            entries=[make_entry(time=5.0), make_entry(time=1.0)]
        )
        with pytest.raises(ConfigError, match="not time-ordered"):
            trace.validate()

    def test_save_and_load(self, tmp_path):
        trace = Trace(entries=[make_entry(time=1.0)])
        path = tmp_path / "trace.jsonl"
        trace.save(str(path))
        assert Trace.load(str(path)).entries == trace.entries

    def test_empty_text_gives_empty_trace(self):
        assert len(Trace.loads("")) == 0


class TestRecorder:
    def test_records_normal_transactions_once(self):
        stack = build_stack()
        recorder = TraceRecorder(stack.env)
        txn = stack.tm.create_normal([stack.read(0)], type_id=3)
        recorder.record(txn)
        recorder.record(txn)  # retry: must not duplicate
        assert len(recorder.trace) == 1
        assert recorder.trace.entries[0].type_id == 3

    def test_repartition_transactions_ignored(self):
        from repro.partitioning import Migrate

        stack = build_stack()
        recorder = TraceRecorder(stack.env)
        rep = stack.tm.create_repartition(
            [Migrate(op_id=0, key=0, source=0, destination=1)]
        )
        recorder.record(rep)
        assert len(recorder.trace) == 0


class TestReplay:
    def test_replay_reproduces_times_and_shapes(self):
        # Record a stream on system A.
        stack_a = build_stack()
        recorder = TraceRecorder(stack_a.env)

        def produce():
            for i in range(5):
                txn = stack_a.tm.create_normal(
                    [stack_a.write(i, i * 10)], type_id=i
                )
                recorder.record(txn)
                stack_a.tm.submit(txn)
                yield stack_a.env.timeout(3.0)

        stack_a.env.process(produce())
        stack_a.env.run(until=100)

        # Replay it on a fresh system B.
        stack_b = build_stack()
        submitted = []
        original = stack_b.tm.submit

        def spy(txn, priority=None):
            submitted.append((stack_b.env.now, txn.type_id))
            original(txn, priority)

        stack_b.tm.submit = spy
        replay = TraceReplayProcess(
            stack_b.env, stack_b.tm, recorder.trace, table="t"
        )
        stack_b.env.run(until=100)
        assert replay.replayed == 5
        assert [t for t, _ in submitted] == [0.0, 3.0, 6.0, 9.0, 12.0]
        assert [tid for _, tid in submitted] == [0, 1, 2, 3, 4]
        # Effects identical: the same values written to the same keys.
        for i in range(5):
            pid = stack_b.pmap.primary_of(i)
            node = stack_b.cluster.node_for_partition(pid)
            assert node.store.read(i) == i * 10

    def test_time_offset_shifts_replay(self):
        stack = build_stack()
        trace = Trace(entries=[make_entry(time=1.0)])
        times = []
        original = stack.tm.submit

        def spy(txn, priority=None):
            times.append(stack.env.now)
            original(txn, priority)

        stack.tm.submit = spy
        TraceReplayProcess(
            stack.env, stack.tm, trace, table="t", time_offset=10.0
        )
        stack.env.run(until=50)
        assert times == [11.0]
