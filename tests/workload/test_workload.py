"""Tests for workload profiles, generation, placement, and arrivals."""

import random

import pytest

from repro.cluster import Cluster, ClusterConfig
from repro.errors import ConfigError
from repro.types import AccessMode
from repro.workload import (
    ArrivalConfig,
    PlacementConfig,
    PoissonArrivalProcess,
    TransactionType,
    WorkloadConfig,
    WorkloadProfile,
    WorkloadSampler,
    build_profile,
    calibrate_rate,
    choose_distributed_types,
    initial_placement,
    load_stores,
    place_unprofiled_keys,
    verify_placement,
)


class TestProfile:
    def test_type_validation(self):
        with pytest.raises(ConfigError):
            TransactionType(0, (), 1.0)
        with pytest.raises(ConfigError):
            TransactionType(0, (1, 1), 1.0)
        with pytest.raises(ConfigError):
            TransactionType(0, (1, 2), -1.0)

    def test_duplicate_type_ids_rejected(self):
        types = [
            TransactionType(0, (0,), 1.0),
            TransactionType(0, (1,), 1.0),
        ]
        with pytest.raises(ConfigError):
            WorkloadProfile(table="t", types=types)

    def test_probability_normalised(self):
        profile = WorkloadProfile(
            table="t",
            types=[
                TransactionType(0, (0,), 3.0),
                TransactionType(1, (1,), 1.0),
            ],
        )
        assert profile.probability_of(0) == pytest.approx(0.75)

    def test_hottest_sorted(self):
        profile = WorkloadProfile(
            table="t",
            types=[
                TransactionType(0, (0,), 1.0),
                TransactionType(1, (1,), 5.0),
            ],
        )
        assert [t.type_id for t in profile.hottest()] == [1, 0]
        assert len(profile.hottest(1)) == 1

    def test_key_index_and_types_accessing(self):
        profile = WorkloadProfile(
            table="t",
            types=[
                TransactionType(0, (0, 1), 1.0),
                TransactionType(1, (1, 2), 1.0),
            ],
        )
        index = profile.key_index()
        assert [t.type_id for t in index[1]] == [0, 1]
        assert [t.type_id for t in profile.types_accessing(2)] == [1]


class TestBuildProfile:
    def test_uniform_frequencies_equal(self):
        config = WorkloadConfig(
            tuple_count=100, distinct_types=10, distribution="uniform"
        )
        profile = build_profile(config)
        assert len(profile) == 10
        assert {t.frequency for t in profile.types} == {1.0}

    def test_zipf_frequencies_decrease(self):
        config = WorkloadConfig(
            tuple_count=100, distinct_types=10, distribution="zipf"
        )
        profile = build_profile(config)
        freqs = [t.frequency for t in profile.types]
        assert freqs == sorted(freqs, reverse=True)

    def test_key_blocks_disjoint_and_contiguous(self):
        config = WorkloadConfig(tuple_count=100, distinct_types=10)
        profile = build_profile(config)
        all_keys = [k for t in profile.types for k in t.keys]
        assert len(all_keys) == len(set(all_keys)) == 50
        assert profile.types[3].keys == (15, 16, 17, 18, 19)

    def test_too_many_types_rejected(self):
        with pytest.raises(ConfigError, match="do not fit"):
            WorkloadConfig(tuple_count=10, distinct_types=5,
                           queries_per_txn=5)

    def test_unknown_distribution_rejected(self):
        with pytest.raises(ConfigError):
            WorkloadConfig(distribution="pareto")


class TestSampler:
    def make(self, distribution="zipf", write_probability=0.5):
        config = WorkloadConfig(
            tuple_count=100, distinct_types=10, distribution=distribution,
            write_probability=write_probability,
        )
        profile = build_profile(config)
        return WorkloadSampler(profile, config, random.Random(0))

    def test_queries_cover_type_keys(self):
        sampler = self.make()
        ttype, queries = sampler.sample_transaction()
        assert [q.key for q in queries] == list(ttype.keys)

    def test_write_probability_respected(self):
        sampler = self.make(write_probability=1.0)
        _ttype, queries = sampler.sample_transaction()
        assert all(q.mode is AccessMode.WRITE for q in queries)
        sampler = self.make(write_probability=0.0)
        _ttype, queries = sampler.sample_transaction()
        assert all(q.mode is AccessMode.READ for q in queries)

    def test_zipf_sampling_prefers_hot_types(self):
        sampler = self.make(distribution="zipf")
        counts = {}
        for _ in range(2000):
            ttype = sampler.sample_type()
            counts[ttype.type_id] = counts.get(ttype.type_id, 0) + 1
        assert counts[0] == max(counts.values())

    def test_uniform_sampling_roughly_even(self):
        sampler = self.make(distribution="uniform")
        counts = {}
        for _ in range(5000):
            ttype = sampler.sample_type()
            counts[ttype.type_id] = counts.get(ttype.type_id, 0) + 1
        assert min(counts.values()) > 300


class TestPlacement:
    def make_profile(self):
        return build_profile(
            WorkloadConfig(tuple_count=100, distinct_types=10)
        )

    def test_choose_distributed_counts(self):
        profile = self.make_profile()
        rng = random.Random(0)
        assert len(choose_distributed_types(profile, 1.0, rng)) == 10
        assert len(choose_distributed_types(profile, 0.6, rng)) == 6
        assert len(choose_distributed_types(profile, 0.0, rng)) == 0

    def test_distributed_types_spread_collocated_types_home(self):
        profile = self.make_profile()
        partitions = [0, 1, 2]
        distributed = {0, 1}
        pmap = initial_placement(profile, partitions, distributed)
        for ttype in profile.types:
            homes = {pmap.primary_of(k) for k in ttype.keys}
            if ttype.type_id in distributed:
                assert len(homes) > 1
            else:
                assert len(homes) == 1

    def test_place_unprofiled_fills_gaps(self):
        profile = self.make_profile()
        pmap = initial_placement(profile, [0, 1], set())
        place_unprofiled_keys(pmap, 100, [0, 1])
        assert len(pmap) == 100

    def test_load_and_verify_stores(self, env):
        profile = self.make_profile()
        cluster = Cluster(env, ClusterConfig(node_count=2))
        pmap = initial_placement(profile, [0, 1], {0})
        loaded = load_stores(
            cluster, pmap, PlacementConfig(), random.Random(0)
        )
        assert loaded == len(pmap)
        assert verify_placement(cluster, pmap)
        cluster.nodes[0].store.delete(next(iter(pmap.keys())))
        assert not verify_placement(cluster, pmap)

    def test_alpha_validation(self):
        with pytest.raises(ConfigError):
            PlacementConfig(alpha=1.5)

    def test_single_partition_everything_collocated(self):
        profile = self.make_profile()
        pmap = initial_placement(profile, [0], {t.type_id for t in profile})
        assert set(pmap.partition_sizes()) == {0}


class TestArrivals:
    def test_calibrate_rate(self):
        # 130% of 20 units/s at 2 units per txn -> 13 txn/s.
        assert calibrate_rate(1.3, 20.0, 2.0) == pytest.approx(13.0)

    def test_calibrate_rejects_bad_inputs(self):
        with pytest.raises(ConfigError):
            calibrate_rate(0, 1, 1)
        with pytest.raises(ConfigError):
            calibrate_rate(1, 0, 1)
        with pytest.raises(ConfigError):
            calibrate_rate(1, 1, 0)

    def _sampler(self):
        config = WorkloadConfig(tuple_count=100, distinct_types=10)
        return WorkloadSampler(
            build_profile(config), config, random.Random(0)
        )

    def test_burst_mode_submits_at_interval_start(self):
        from ..txn.conftest import build_stack

        stack = build_stack(keys=100, capacity=1000)
        arrivals = PoissonArrivalProcess(
            stack.env,
            stack.tm,
            self._sampler(),
            ArrivalConfig(rate_txn_per_s=1.0, interval_s=10.0),
            random.Random(1),
            horizon_s=30.0,
        )
        submitted_times = []
        original = stack.tm.submit

        def spy(txn, priority=None):
            submitted_times.append(stack.env.now)
            original(txn, priority)

        stack.tm.submit = spy
        stack.env.run(until=35)
        assert arrivals.total_generated == len(submitted_times)
        assert all(t in (0.0, 10.0, 20.0) for t in submitted_times)

    def test_spread_mode_spaces_arrivals(self):
        from ..txn.conftest import build_stack

        stack = build_stack(keys=100, capacity=1000)
        PoissonArrivalProcess(
            stack.env,
            stack.tm,
            self._sampler(),
            ArrivalConfig(rate_txn_per_s=2.0, interval_s=10.0,
                          mode="spread"),
            random.Random(1),
            horizon_s=20.0,
        )
        times = []
        original = stack.tm.submit

        def spy(txn, priority=None):
            times.append(stack.env.now)
            original(txn, priority)

        stack.tm.submit = spy
        stack.env.run(until=25)
        assert len(set(times)) > 3  # not all at interval boundaries

    def test_horizon_stops_generation(self):
        from ..txn.conftest import build_stack

        stack = build_stack(keys=100, capacity=1000)
        arrivals = PoissonArrivalProcess(
            stack.env,
            stack.tm,
            self._sampler(),
            ArrivalConfig(rate_txn_per_s=5.0, interval_s=5.0),
            random.Random(1),
            horizon_s=10.0,
        )
        stack.env.run(until=100)
        generated_at_horizon = arrivals.total_generated
        stack.env.run(until=200)
        assert arrivals.total_generated == generated_at_horizon

    def test_arrival_config_validation(self):
        with pytest.raises(ConfigError):
            ArrivalConfig(rate_txn_per_s=-1)
        with pytest.raises(ConfigError):
            ArrivalConfig(rate_txn_per_s=1, interval_s=0)
        with pytest.raises(ConfigError):
            ArrivalConfig(rate_txn_per_s=1, mode="chaotic")
