"""Tests for Resource and WorkServer."""

import pytest

from repro.sim import Resource, WorkServer


class TestResource:
    def test_grants_up_to_capacity(self, env):
        resource = Resource(env, capacity=2)
        first = resource.request()
        second = resource.request()
        third = resource.request()
        assert first.triggered and second.triggered
        assert not third.triggered
        assert resource.in_use == 2
        assert resource.queue_length == 1

    def test_release_grants_next_in_fifo_order(self, env):
        resource = Resource(env, capacity=1)
        held = resource.request()
        queued = [resource.request() for _ in range(3)]
        resource.release(held)
        assert queued[0].triggered
        assert not queued[1].triggered
        resource.release(queued[0])
        assert queued[1].triggered

    def test_release_waiting_request_removes_it(self, env):
        resource = Resource(env, capacity=1)
        held = resource.request()
        waiting = resource.request()
        resource.release(waiting)  # withdraw before grant
        assert resource.queue_length == 0
        resource.release(held)
        assert resource.in_use == 0

    def test_capacity_must_be_positive(self, env):
        with pytest.raises(ValueError):
            Resource(env, capacity=0)

    def test_cancel_is_alias_for_release(self, env):
        resource = Resource(env, capacity=1)
        request = resource.request()
        resource.cancel(request)
        assert resource.in_use == 0


class TestWorkServer:
    def test_service_time_scales_with_rate(self, env):
        server = WorkServer(env, rate=4.0)
        assert server.service_time(8.0) == 2.0

    def test_jobs_serialise_on_single_slot(self, env):
        server = WorkServer(env, rate=10.0, concurrency=1)
        finish_times = []

        def job():
            yield from server.work(10)
            finish_times.append(env.now)

        for _ in range(3):
            env.process(job())
        env.run()
        assert finish_times == [1.0, 2.0, 3.0]

    def test_concurrency_allows_parallel_service(self, env):
        server = WorkServer(env, rate=10.0, concurrency=3)
        finish_times = []

        def job():
            yield from server.work(10)
            finish_times.append(env.now)

        for _ in range(3):
            env.process(job())
        env.run()
        assert finish_times == [1.0, 1.0, 1.0]

    def test_utilisation_tracks_busy_time(self, env):
        server = WorkServer(env, rate=10.0)

        def job():
            yield from server.work(10)

        env.process(job())
        env.run(until=2.0)
        assert server.utilisation() == pytest.approx(0.5)

    def test_negative_work_rejected(self, env):
        server = WorkServer(env, rate=1.0)
        with pytest.raises(ValueError):
            server.service_time(-1)

    def test_rate_must_be_positive(self, env):
        with pytest.raises(ValueError):
            WorkServer(env, rate=0)

    def test_queue_length_visible(self, env):
        server = WorkServer(env, rate=1.0, concurrency=1)

        def job():
            yield from server.work(100)

        for _ in range(4):
            env.process(job())
        env.run(until=1)
        assert server.in_service == 1
        assert server.queue_length == 3

    def test_rate_change_affects_future_jobs(self, env):
        server = WorkServer(env, rate=1.0)
        finish_times = []

        def job():
            yield from server.work(10)
            finish_times.append(env.now)

        def speed_up():
            yield env.timeout(10)  # after job 1 completes
            server.rate = 10.0

        env.process(job())
        env.process(speed_up())
        env.run()

        env2_done = []

        def job2():
            yield from server.work(10)
            env2_done.append(env.now)

        env.process(job2())
        env.run()
        assert finish_times == [10.0]
        assert env2_done == [11.0]
