"""Tests for the environment's clock and scheduling semantics."""

import pytest

from repro.sim import EmptySchedule, Environment


class TestClock:
    def test_starts_at_zero(self, env):
        assert env.now == 0.0

    def test_custom_initial_time(self):
        env = Environment(initial_time=100.0)
        assert env.now == 100.0

    def test_run_until_time_advances_clock(self, env):
        env.run(until=42.0)
        assert env.now == 42.0

    def test_run_backwards_rejected(self, env):
        env.run(until=10)
        with pytest.raises(ValueError):
            env.run(until=5)

    def test_schedule_into_past_rejected(self, env):
        env.run(until=10)
        with pytest.raises(ValueError):
            env._schedule_at(5, env.event())


class TestRun:
    def test_run_until_event_returns_value(self, env):
        def proc():
            yield env.timeout(3)
            return "result"

        assert env.run(until=env.process(proc())) == "result"
        assert env.now == 3.0

    def test_run_until_failed_event_raises(self, env):
        def proc():
            yield env.timeout(1)
            raise KeyError("whoops")

        with pytest.raises(KeyError):
            env.run(until=env.process(proc()))

    def test_run_until_unreachable_event_raises(self, env):
        never = env.event()
        with pytest.raises(RuntimeError, match="ran out of events"):
            env.run(until=never)

    def test_run_until_none_drains_everything(self, env):
        count = []

        def proc(n):
            yield env.timeout(n)
            count.append(n)

        for n in range(5):
            env.process(proc(n))
        env.run()
        assert sorted(count) == [0, 1, 2, 3, 4]

    def test_run_until_time_excludes_later_events(self, env):
        fired = []

        def proc():
            yield env.timeout(10)
            fired.append("late")

        env.process(proc())
        env.run(until=5)
        assert fired == []
        env.run(until=15)
        assert fired == ["late"]


class TestOrdering:
    def test_same_time_events_fire_in_schedule_order(self, env):
        order = []

        def proc(name):
            yield env.timeout(5)
            order.append(name)

        for name in ("first", "second", "third"):
            env.process(proc(name))
        env.run()
        assert order == ["first", "second", "third"]

    def test_determinism_across_runs(self):
        def simulate():
            env = Environment()
            log = []

            def proc(name, delay):
                yield env.timeout(delay)
                log.append((env.now, name))

            for i in range(10):
                env.process(proc(f"p{i}", (i * 7) % 5))
            env.run()
            return log

        assert simulate() == simulate()


class TestStep:
    def test_step_on_empty_schedule_raises(self, env):
        with pytest.raises(EmptySchedule):
            env.step()

    def test_peek_reports_next_event_time(self, env):
        assert env.peek() == float("inf")
        env.timeout(7)
        assert env.peek() == 7.0

    def test_failed_timeout_popped_exactly_once(self, env):
        """Regression: failing a Timeout must not heap it a second time."""
        timeout = env.timeout(5.0)
        fired = []
        timeout.callbacks.append(lambda _ev: fired.append(env.now))
        timeout.fail(RuntimeError("boom"))
        timeout.defused = True
        pops = 0
        while True:
            try:
                env.step()
            except EmptySchedule:
                break
            pops += 1
        assert pops == 1
        assert fired == [5.0]

    def test_failed_timeout_still_escalates_when_undefused(self, env):
        timeout = env.timeout(2.0)
        timeout.fail(RuntimeError("boom"))
        with pytest.raises(RuntimeError, match="boom"):
            env.run()
        # The failure was delivered by the single heap entry; nothing is
        # left behind to re-raise on a subsequent run.
        env.run()


class TestRunIntervals:
    def test_advances_exactly_interval_times_count(self, env):
        env.run_intervals(20.0, 5)
        assert env.now == 100.0

    def test_matches_repeated_run_calls(self):
        def simulate(batched):
            env = Environment()
            log = []

            def proc(name, delay):
                yield env.timeout(delay)
                log.append((env.now, name))

            for i in range(10):
                env.process(proc(f"p{i}", (i * 13) % 50))
            if batched:
                env.run_intervals(10.0, 5)
            else:
                for k in range(1, 6):
                    env.run(until=10.0 * k)
            return log, env.now

        assert simulate(True) == simulate(False)

    def test_on_interval_called_at_each_boundary(self, env):
        seen = []

        def proc():
            yield env.timeout(25)

        env.process(proc())
        env.run_intervals(10.0, 3, on_interval=lambda i: seen.append((i, env.now)))
        assert seen == [(0, 10.0), (1, 20.0), (2, 30.0)]

    def test_rejects_bad_arguments(self, env):
        with pytest.raises(ValueError):
            env.run_intervals(0.0, 3)
        with pytest.raises(ValueError):
            env.run_intervals(1.0, -1)
