"""Tests for the environment's clock and scheduling semantics."""

import pytest

from repro.errors import ReproError, SimulationError
from repro.sim import EmptySchedule, Environment


class TestClock:
    def test_starts_at_zero(self, env):
        assert env.now == 0.0

    def test_custom_initial_time(self):
        env = Environment(initial_time=100.0)
        assert env.now == 100.0

    def test_run_until_time_advances_clock(self, env):
        env.run(until=42.0)
        assert env.now == 42.0

    def test_run_backwards_rejected(self, env):
        env.run(until=10)
        with pytest.raises(ValueError):
            env.run(until=5)

    def test_schedule_into_past_rejected(self, env):
        env.run(until=10)
        with pytest.raises(ValueError):
            env._schedule_at(5, env.event())

    def test_schedule_into_past_raises_simulation_error(self, env):
        """Regression: past scheduling must surface as SimulationError.

        The old kernel silently heap-inserted into the past from some
        call sites; now every route raises a typed error that is *also*
        a ValueError, so historical ``except ValueError`` guards and the
        library-wide ``except ReproError`` both catch it.
        """
        env.run(until=10)
        with pytest.raises(SimulationError):
            env._schedule_at(9.999, env.event())
        with pytest.raises(ReproError):
            env._schedule_at(0, env.event())
        assert issubclass(SimulationError, ValueError)
        # A rejected schedule must leave no queue entry behind.
        assert env.peek() == float("inf")


class TestBucketMachinery:
    """The calendar queue's refill/overflow paths under tiny buckets."""

    def test_bucket_limit_must_be_positive(self):
        with pytest.raises(ValueError):
            Environment(bucket_limit=0)

    @pytest.mark.parametrize("bucket_limit", [1, 2, 3, 7])
    def test_order_preserved_across_refills(self, bucket_limit):
        env = Environment(bucket_limit=bucket_limit)
        fired = []

        def proc(name, delay):
            yield env.timeout(delay)
            fired.append((env.now, name))

        # 50 events over a tiny bucket forces dozens of refills.
        for i in range(50):
            env.process(proc(i, (i * 17) % 13))
        env.run()
        reference = Environment()
        expected = []

        def ref_proc(name, delay):
            yield reference.timeout(delay)
            expected.append((reference.now, name))

        for i in range(50):
            reference.process(ref_proc(i, (i * 17) % 13))
        reference.run()
        assert fired == expected

    def test_peek_reaches_across_refill_boundary(self):
        env = Environment(bucket_limit=1)
        env.timeout(3)
        env.timeout(1)
        env.timeout(2)
        seen = []
        while env.peek() != float("inf"):
            seen.append(env.peek())
            env.step()
        # Kick-off entries share t=0; the timeouts then pop in time order.
        assert seen == sorted(seen)
        assert seen[-3:] == [1.0, 2.0, 3.0]

    def test_late_arrival_below_horizon_interleaves(self):
        """An insert landing inside the live bucket's range must not wait
        for the next refill."""
        env = Environment(bucket_limit=2)
        fired = []

        def late_scheduler():
            yield env.timeout(1)
            # Scheduled while the bucket spanning [0, ~10] is live.
            t = env.timeout(1)  # fires at t=2, below the horizon
            t.callbacks.append(lambda _ev: fired.append(("late", env.now)))

        def marker(delay):
            yield env.timeout(delay)
            fired.append(("marker", env.now))

        env.process(late_scheduler())
        for delay in (5, 10):
            env.process(marker(delay))
        env.run()
        assert fired == [("late", 2.0), ("marker", 5.0), ("marker", 10.0)]


class TestRun:
    def test_run_until_event_returns_value(self, env):
        def proc():
            yield env.timeout(3)
            return "result"

        assert env.run(until=env.process(proc())) == "result"
        assert env.now == 3.0

    def test_run_until_failed_event_raises(self, env):
        def proc():
            yield env.timeout(1)
            raise KeyError("whoops")

        with pytest.raises(KeyError):
            env.run(until=env.process(proc()))

    def test_run_until_unreachable_event_raises(self, env):
        never = env.event()
        with pytest.raises(RuntimeError, match="ran out of events"):
            env.run(until=never)

    def test_run_until_none_drains_everything(self, env):
        count = []

        def proc(n):
            yield env.timeout(n)
            count.append(n)

        for n in range(5):
            env.process(proc(n))
        env.run()
        assert sorted(count) == [0, 1, 2, 3, 4]

    def test_run_until_time_excludes_later_events(self, env):
        fired = []

        def proc():
            yield env.timeout(10)
            fired.append("late")

        env.process(proc())
        env.run(until=5)
        assert fired == []
        env.run(until=15)
        assert fired == ["late"]


class TestOrdering:
    def test_same_time_events_fire_in_schedule_order(self, env):
        order = []

        def proc(name):
            yield env.timeout(5)
            order.append(name)

        for name in ("first", "second", "third"):
            env.process(proc(name))
        env.run()
        assert order == ["first", "second", "third"]

    def test_determinism_across_runs(self):
        def simulate():
            env = Environment()
            log = []

            def proc(name, delay):
                yield env.timeout(delay)
                log.append((env.now, name))

            for i in range(10):
                env.process(proc(f"p{i}", (i * 7) % 5))
            env.run()
            return log

        assert simulate() == simulate()


class TestStep:
    def test_step_on_empty_schedule_raises(self, env):
        with pytest.raises(EmptySchedule):
            env.step()

    def test_peek_reports_next_event_time(self, env):
        assert env.peek() == float("inf")
        env.timeout(7)
        assert env.peek() == 7.0

    def test_failed_timeout_popped_exactly_once(self, env):
        """Regression: failing a Timeout must not heap it a second time."""
        timeout = env.timeout(5.0)
        fired = []
        timeout.callbacks.append(lambda _ev: fired.append(env.now))
        timeout.fail(RuntimeError("boom"))
        timeout.defused = True
        pops = 0
        while True:
            try:
                env.step()
            except EmptySchedule:
                break
            pops += 1
        assert pops == 1
        assert fired == [5.0]

    def test_failed_timeout_still_escalates_when_undefused(self, env):
        timeout = env.timeout(2.0)
        timeout.fail(RuntimeError("boom"))
        with pytest.raises(RuntimeError, match="boom"):
            env.run()
        # The failure was delivered by the single heap entry; nothing is
        # left behind to re-raise on a subsequent run.
        env.run()


class TestRunIntervals:
    def test_advances_exactly_interval_times_count(self, env):
        env.run_intervals(20.0, 5)
        assert env.now == 100.0

    def test_matches_repeated_run_calls(self):
        def simulate(batched):
            env = Environment()
            log = []

            def proc(name, delay):
                yield env.timeout(delay)
                log.append((env.now, name))

            for i in range(10):
                env.process(proc(f"p{i}", (i * 13) % 50))
            if batched:
                env.run_intervals(10.0, 5)
            else:
                for k in range(1, 6):
                    env.run(until=10.0 * k)
            return log, env.now

        assert simulate(True) == simulate(False)

    def test_on_interval_called_at_each_boundary(self, env):
        seen = []

        def proc():
            yield env.timeout(25)

        env.process(proc())
        env.run_intervals(10.0, 3, on_interval=lambda i: seen.append((i, env.now)))
        assert seen == [(0, 10.0), (1, 20.0), (2, 30.0)]

    def test_rejects_bad_arguments(self, env):
        with pytest.raises(ValueError):
            env.run_intervals(0.0, 3)
        with pytest.raises(ValueError):
            env.run_intervals(1.0, -1)
