"""The pre-calendar-queue scheduler, kept verbatim as a test oracle.

This is the single-binary-heap :class:`Environment` the kernel shipped
with before the bucketed calendar queue replaced it: one ``heappush`` per
scheduled occurrence, one ``heappop`` per processed event, ordering by
``(when, seq)``.  The algorithm is deliberately boring — its correctness
is easy to see by inspection — which is exactly what makes it a good
oracle: the equivalence suite runs real workloads through both
schedulers and asserts bit-identical behaviour.

The only additions over the historical file are the two seams the event
classes now use (kept so :mod:`repro.sim.events` runs unmodified against
either scheduler):

* entries are 4-tuples ``(when, seq, event, fn)`` instead of 3-tuples;
* :meth:`HeapqEnvironment._call_soon` heaps a bare-callback entry, the
  same way the production scheduler routes process kick-off and
  interrupt delivery.

Do not "improve" this file — its value is that it does not change.
"""

from __future__ import annotations

import heapq
from itertools import count
from typing import Any, Callable, Generator, Optional

from repro.errors import SimulationError
from repro.sim.events import AllOf, AnyOf, Event, EventState, Process, Timeout

_PENDING = EventState.PENDING
_SUCCEEDED = EventState.SUCCEEDED
_FAILED = EventState.FAILED


class EmptySchedule(Exception):
    """Raised by :meth:`HeapqEnvironment.step` when no events remain."""


class HeapqEnvironment:
    """Single-heap reference scheduler (old `repro.sim.Environment`)."""

    def __init__(self, initial_time: float = 0.0, **_ignored: Any) -> None:
        # ``**_ignored`` swallows the new scheduler's ``bucket_limit``
        # argument so the oracle is a drop-in substitute.
        self._now = float(initial_time)
        self._queue: list[tuple] = []
        self._seq = count()

    @property
    def now(self) -> float:
        return self._now

    # -- factories ------------------------------------------------------
    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, generator: Generator[Event, Any, Any]) -> Process:
        return Process(self, generator)

    def all_of(self, events: list[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: list[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- scheduling seams used by the event classes ---------------------
    def _schedule_at(self, when: float, event: Event) -> None:
        if when < self._now:
            raise SimulationError(
                f"cannot schedule into the past ({when} < {self._now})"
            )
        heapq.heappush(self._queue, (when, next(self._seq), event, None))

    def _enqueue_triggered(self, event: Event) -> None:
        if event._is_timeout:
            return
        heapq.heappush(self._queue, (self._now, next(self._seq), event, None))

    def _call_soon(self, fn: Callable[[], None]) -> None:
        heapq.heappush(self._queue, (self._now, next(self._seq), None, fn))

    # -- running --------------------------------------------------------
    def peek(self) -> float:
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        if not self._queue:
            raise EmptySchedule()
        when, _seq, event, fn = heapq.heappop(self._queue)
        self._now = when
        if event is None:
            fn()
            return
        if event._is_timeout and event._state is _PENDING:
            event._state = _SUCCEEDED
        callbacks, event.callbacks = event.callbacks, None
        if callbacks:
            for callback in callbacks:
                callback(event)
        if event._state is _FAILED and not event.defused:
            raise event.value

    def _advance(self, horizon: float) -> None:
        queue = self._queue
        pop = heapq.heappop
        while queue and queue[0][0] <= horizon:
            when, _seq, event, fn = pop(queue)
            self._now = when
            if event is None:
                fn()
                continue
            if event._is_timeout and event._state is _PENDING:
                event._state = _SUCCEEDED
            callbacks, event.callbacks = event.callbacks, None
            if callbacks:
                for callback in callbacks:
                    callback(event)
            if event._state is _FAILED and not event.defused:
                raise event.value

    def run(self, until: Optional[float | Event] = None) -> Any:
        if isinstance(until, Event):
            stop_event = until
            while not stop_event.triggered:
                try:
                    self.step()
                except EmptySchedule:
                    raise RuntimeError(
                        "simulation ran out of events before the awaited "
                        "event triggered"
                    ) from None
            if stop_event.failed:
                stop_event.defused = True
                raise stop_event.value
            return stop_event.value

        if until is not None:
            horizon = float(until)
            if horizon < self._now:
                raise ValueError(f"cannot run backwards to {horizon}")
            self._advance(horizon)
            self._now = horizon
            return None

        self._advance(float("inf"))
        return None

    def run_intervals(
        self,
        interval_s: float,
        intervals: int,
        on_interval: Optional[Callable[[int], None]] = None,
    ) -> None:
        if interval_s <= 0:
            raise ValueError(f"interval must be positive: {interval_s}")
        if intervals < 0:
            raise ValueError(f"negative interval count: {intervals}")
        start = self._now
        for index in range(intervals):
            horizon = start + interval_s * (index + 1)
            self._advance(horizon)
            self._now = horizon
            if on_interval is not None:
                on_interval(index)
