"""Tests for the seeded random streams, Zipf sampling, and Poisson draws."""

import math
import random

import pytest

from repro.sim import RandomStreams, ZipfSampler, derive_seed, poisson, weighted_choice


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(1, "a") == derive_seed(1, "a")

    def test_name_sensitivity(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")

    def test_seed_sensitivity(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")


class TestRandomStreams:
    def test_same_name_returns_same_stream(self):
        streams = RandomStreams(7)
        assert streams.stream("x") is streams.stream("x")

    def test_streams_are_independent(self):
        """Consuming one stream must not perturb another."""
        streams_a = RandomStreams(7)
        streams_b = RandomStreams(7)
        # Consume heavily from one stream in A only.
        for _ in range(1000):
            streams_a.stream("noise").random()
        seq_a = [streams_a.stream("target").random() for _ in range(5)]
        seq_b = [streams_b.stream("target").random() for _ in range(5)]
        assert seq_a == seq_b

    def test_spawn_creates_distinct_master(self):
        streams = RandomStreams(7)
        child = streams.spawn("worker")
        assert child.master_seed != streams.master_seed
        assert (
            child.stream("x").random() != streams.stream("x").random()
        )


class TestZipfSampler:
    def test_probabilities_sum_to_one(self):
        sampler = ZipfSampler(100, 1.16, random.Random(0))
        assert math.fsum(sampler.probabilities) == pytest.approx(1.0)

    def test_probabilities_decrease_with_rank(self):
        sampler = ZipfSampler(50, 1.16, random.Random(0))
        for earlier, later in zip(
            sampler.probabilities, sampler.probabilities[1:]
        ):
            assert earlier > later

    def test_zero_skew_is_uniform(self):
        sampler = ZipfSampler(10, 0.0, random.Random(0))
        for p in sampler.probabilities:
            assert p == pytest.approx(0.1)

    def test_top_mass_follows_80_20_for_paper_skew(self):
        """s=1.16 over the paper's population approximates the 80-20 rule."""
        sampler = ZipfSampler(23_457, 1.16, random.Random(0))
        top_20_percent = sampler.top_mass(int(0.2 * 23_457))
        assert top_20_percent >= 0.8  # at least the 80-20 rule
        assert top_20_percent < 1.0

    def test_samples_in_range(self):
        sampler = ZipfSampler(20, 1.0, random.Random(1))
        for _ in range(500):
            assert 0 <= sampler.sample() < 20

    def test_hot_rank_sampled_most(self):
        sampler = ZipfSampler(10, 1.5, random.Random(2))
        counts = [0] * 10
        for _ in range(5000):
            counts[sampler.sample()] += 1
        assert counts[0] == max(counts)

    def test_empirical_matches_analytic(self):
        sampler = ZipfSampler(5, 1.0, random.Random(3))
        counts = [0] * 5
        n = 20_000
        for _ in range(n):
            counts[sampler.sample()] += 1
        for rank in range(5):
            assert counts[rank] / n == pytest.approx(
                sampler.probabilities[rank], abs=0.02
            )

    def test_invalid_population_rejected(self):
        with pytest.raises(ValueError):
            ZipfSampler(0, 1.0, random.Random(0))

    def test_negative_skew_rejected(self):
        with pytest.raises(ValueError):
            ZipfSampler(10, -0.5, random.Random(0))

    def test_top_mass_edges(self):
        sampler = ZipfSampler(10, 1.0, random.Random(0))
        assert sampler.top_mass(0) == 0.0
        assert sampler.top_mass(10) == pytest.approx(1.0)
        assert sampler.top_mass(99) == pytest.approx(1.0)


class TestPoisson:
    def test_zero_mean_is_zero(self):
        assert poisson(random.Random(0), 0) == 0

    def test_negative_mean_rejected(self):
        with pytest.raises(ValueError):
            poisson(random.Random(0), -1)

    @pytest.mark.parametrize("mean", [0.5, 3.0, 20.0, 100.0])
    def test_empirical_mean_close(self, mean):
        rng = random.Random(42)
        n = 3000
        total = sum(poisson(rng, mean) for _ in range(n))
        assert total / n == pytest.approx(mean, rel=0.1)

    def test_large_mean_uses_normal_approximation(self):
        rng = random.Random(0)
        draw = poisson(rng, 10_000)
        assert 9_000 < draw < 11_000


class TestWeightedChoice:
    def test_respects_cumulative_boundaries(self):
        rng = random.Random(5)
        cumulative = [0.1, 0.2, 1.0]
        counts = [0, 0, 0]
        for _ in range(10_000):
            counts[weighted_choice(rng, cumulative)] += 1
        assert counts[2] > counts[0]
        assert counts[0] / 10_000 == pytest.approx(0.1, abs=0.02)
