"""Tests for the event primitives of the simulation kernel."""

import pytest

from repro.sim import AllOf, Environment, Event, Interrupt


class TestEvent:
    def test_starts_pending(self, env):
        event = env.event()
        assert not event.triggered
        assert not event.ok
        assert not event.failed

    def test_succeed_carries_value(self, env):
        event = env.event()
        event.succeed(42)
        assert event.triggered
        assert event.ok
        assert event.value == 42

    def test_fail_carries_exception(self, env):
        event = env.event()
        error = ValueError("boom")
        event.fail(error)
        assert event.failed
        assert event.value is error

    def test_double_succeed_rejected(self, env):
        event = env.event()
        event.succeed()
        with pytest.raises(RuntimeError):
            event.succeed()

    def test_fail_after_succeed_rejected(self, env):
        event = env.event()
        event.succeed()
        with pytest.raises(RuntimeError):
            event.fail(ValueError())

    def test_fail_requires_exception_instance(self, env):
        event = env.event()
        with pytest.raises(TypeError):
            event.fail("not an exception")

    def test_unhandled_failure_escalates(self, env):
        event = env.event()
        event.fail(ValueError("nobody caught me"))
        with pytest.raises(ValueError, match="nobody caught me"):
            env.run()

    def test_defused_failure_does_not_escalate(self, env):
        event = env.event()
        event.fail(ValueError())
        event.defused = True
        env.run()  # no exception


class TestTimeout:
    def test_fires_after_delay(self, env):
        fired = []

        def proc():
            yield env.timeout(5.5)
            fired.append(env.now)

        env.process(proc())
        env.run()
        assert fired == [5.5]

    def test_zero_delay_fires_now(self, env):
        fired = []

        def proc():
            yield env.timeout(0)
            fired.append(env.now)

        env.process(proc())
        env.run()
        assert fired == [0.0]

    def test_negative_delay_rejected(self, env):
        with pytest.raises(ValueError):
            env.timeout(-1)

    def test_carries_value(self, env):
        got = []

        def proc():
            value = yield env.timeout(1, value="payload")
            got.append(value)

        env.process(proc())
        env.run()
        assert got == ["payload"]

    def test_cannot_be_succeeded_manually(self, env):
        timeout = env.timeout(1)
        with pytest.raises(RuntimeError):
            timeout.succeed()


class TestProcess:
    def test_return_value_becomes_event_value(self, env):
        def child():
            yield env.timeout(1)
            return "done"

        results = []

        def parent():
            value = yield env.process(child())
            results.append(value)

        env.process(parent())
        env.run()
        assert results == ["done"]

    def test_exception_propagates_to_waiter(self, env):
        def child():
            yield env.timeout(1)
            raise RuntimeError("child failed")

        caught = []

        def parent():
            try:
                yield env.process(child())
            except RuntimeError as exc:
                caught.append(str(exc))

        env.process(parent())
        env.run()
        assert caught == ["child failed"]

    def test_uncaught_child_exception_escalates(self, env):
        def child():
            yield env.timeout(1)
            raise RuntimeError("unwatched")

        env.process(child())
        with pytest.raises(RuntimeError, match="unwatched"):
            env.run()

    def test_yielding_non_event_fails_process(self, env):
        def bad():
            yield "not an event"

        process = env.process(bad())
        with pytest.raises(TypeError):
            env.run()
        assert process.failed

    def test_requires_generator(self, env):
        with pytest.raises(TypeError):
            env.process(lambda: None)

    def test_is_alive_until_finished(self, env):
        def proc():
            yield env.timeout(5)

        process = env.process(proc())
        assert process.is_alive
        env.run()
        assert not process.is_alive

    def test_sequential_timeouts_accumulate(self, env):
        times = []

        def proc():
            yield env.timeout(1)
            times.append(env.now)
            yield env.timeout(2)
            times.append(env.now)

        env.process(proc())
        env.run()
        assert times == [1.0, 3.0]


class TestInterrupt:
    def test_interrupt_delivers_cause(self, env):
        out = []

        def sleeper():
            try:
                yield env.timeout(100)
            except Interrupt as interrupt:
                out.append((env.now, interrupt.cause))

        target = env.process(sleeper())

        def killer():
            yield env.timeout(3)
            target.interrupt("stop now")

        env.process(killer())
        env.run()
        assert out == [(3.0, "stop now")]

    def test_interrupted_process_can_continue(self, env):
        out = []

        def sleeper():
            try:
                yield env.timeout(100)
            except Interrupt:
                pass
            yield env.timeout(1)
            out.append(env.now)

        target = env.process(sleeper())

        def killer():
            yield env.timeout(2)
            target.interrupt()

        env.process(killer())
        env.run()
        assert out == [3.0]

    def test_interrupt_finished_process_rejected(self, env):
        def quick():
            yield env.timeout(1)

        process = env.process(quick())
        env.run()
        with pytest.raises(RuntimeError):
            process.interrupt()

    def test_cause_none_by_default(self):
        interrupt = Interrupt()
        assert interrupt.cause is None

    def test_interrupt_before_first_resume(self, env):
        """Regression: interrupting a just-created process must not let
        its still-pending kick-off (or a later wait target) re-trigger
        the finished process event."""
        def sleeper():
            try:
                yield env.timeout(100)
            except Interrupt:
                return "interrupted"

        target = env.process(sleeper())
        target.interrupt("early")   # before env.run: process never resumed
        env.run(until=200)          # the stale wake-ups fire harmlessly
        assert target.ok

    def test_interrupt_mid_wait_detaches_stale_timeout(self, env):
        out = []

        def sleeper():
            try:
                yield env.timeout(10)
            except Interrupt:
                out.append(env.now)

        target = env.process(sleeper())

        def killer():
            yield env.timeout(2)
            target.interrupt()

        env.process(killer())
        env.run(until=50)           # t=10 timeout still fires; must be inert
        assert out == [2.0]


class TestConditions:
    def test_all_of_waits_for_every_event(self, env):
        def worker(delay, name):
            yield env.timeout(delay)
            return name

        out = []

        def waiter():
            p1 = env.process(worker(2, "a"))
            p2 = env.process(worker(5, "b"))
            results = yield env.all_of([p1, p2])
            out.append((env.now, sorted(results.values())))

        env.process(waiter())
        env.run()
        assert out == [(5.0, ["a", "b"])]

    def test_any_of_fires_on_first(self, env):
        out = []

        def waiter():
            t1 = env.timeout(2, value="fast")
            t2 = env.timeout(9, value="slow")
            results = yield env.any_of([t1, t2])
            out.append((env.now, list(results.values())))

        env.process(waiter())
        env.run(until=20)
        assert out == [(2.0, ["fast"])]

    def test_empty_all_of_succeeds_immediately(self, env):
        condition = env.all_of([])
        assert condition.triggered

    def test_child_failure_fails_condition(self, env):
        caught = []

        def failer():
            yield env.timeout(1)
            raise ValueError("inner")

        def waiter():
            try:
                yield env.all_of([env.process(failer()), env.timeout(10)])
            except ValueError as exc:
                caught.append(str(exc))

        env.process(waiter())
        env.run()
        assert caught == ["inner"]

    def test_late_child_failure_is_defused(self, env):
        """A child failing after the condition triggered must not crash."""
        lock_event = env.event()

        def waiter():
            yield env.any_of([lock_event, env.timeout(1)])

        def late_failer():
            yield env.timeout(5)
            lock_event.fail(RuntimeError("late"))

        env.process(waiter())
        env.process(late_failer())
        env.run()  # should not raise

    def test_mixed_environment_rejected(self, env):
        other = Environment()
        with pytest.raises(ValueError):
            AllOf(env, [env.event(), other.event()])

    def test_any_of_with_already_triggered_child(self, env):
        done = env.event()
        done.succeed("early")
        condition = env.any_of([done, env.timeout(100)])
        assert condition.triggered
        assert list(condition.value.values()) == ["early"]


class TestSlots:
    """The kernel classes are __slots__-only (no per-instance __dict__)."""

    def test_kernel_events_have_no_dict(self, env):
        def proc():
            yield env.timeout(1)

        for instance in (
            env.event(),
            env.timeout(3),
            env.process(proc()),
            env.all_of([env.timeout(1)]),
            env.any_of([env.timeout(1)]),
        ):
            assert not hasattr(instance, "__dict__")
        env.run()

    def test_subclasses_may_still_add_attributes(self, env):
        class Tagged(Event):
            pass

        tagged = Tagged(env)
        tagged.tag = "ok"
        assert tagged.tag == "ok"

    def test_timeout_flag_replaces_isinstance(self, env):
        assert env.timeout(1)._is_timeout
        assert not env.event()._is_timeout
