"""Tests for the network latency/bandwidth model."""

import pytest

from repro.sim import Network


class TestDelays:
    def test_delay_has_latency_floor(self, env):
        network = Network(env, latency_s=0.01, bandwidth_bytes_per_s=1e6)
        assert network.delay_for(0) == pytest.approx(0.01)

    def test_delay_scales_with_payload(self, env):
        network = Network(env, latency_s=0.0, bandwidth_bytes_per_s=100.0)
        assert network.delay_for(200) == pytest.approx(2.0)

    def test_negative_payload_rejected(self, env):
        network = Network(env)
        with pytest.raises(ValueError):
            network.delay_for(-1)

    def test_invalid_parameters_rejected(self, env):
        with pytest.raises(ValueError):
            Network(env, latency_s=-1)
        with pytest.raises(ValueError):
            Network(env, bandwidth_bytes_per_s=0)


class TestTransfer:
    def test_transfer_takes_delay_time(self, env):
        network = Network(env, latency_s=1.0, bandwidth_bytes_per_s=1e9)
        done = []

        def proc():
            yield from network.transfer(0, 1, payload_bytes=0)
            done.append(env.now)

        env.process(proc())
        env.run()
        assert done == [1.0]

    def test_local_transfer_is_free(self, env):
        network = Network(env, latency_s=1.0)
        done = []

        def proc():
            yield from network.transfer(3, 3, payload_bytes=100)
            done.append(env.now)

        env.process(proc())
        env.run()
        assert done == [0.0]
        assert network.messages_sent == 0

    def test_counters_track_traffic(self, env):
        network = Network(env, latency_s=0.001)

        def proc():
            yield from network.transfer(0, 1, payload_bytes=64)
            yield from network.transfer(1, 2, payload_bytes=32)

        env.process(proc())
        env.run()
        assert network.messages_sent == 2
        assert network.bytes_sent == 96

    def test_round_trip_is_two_messages(self, env):
        network = Network(env, latency_s=0.5, bandwidth_bytes_per_s=1e9)
        done = []

        def proc():
            yield from network.round_trip(0, 1)
            done.append(env.now)

        env.process(proc())
        env.run()
        assert done == [1.0]
        assert network.messages_sent == 2
