"""Payload interning: WAL checkpoints share canonical payload triples."""

from repro.storage import (
    PartitionStore,
    Record,
    WriteAheadLog,
    intern_payload,
    recover,
)
from repro.storage.record import _PAYLOAD_INTERN, _PAYLOAD_INTERN_LIMIT


def test_intern_returns_canonical_object():
    first = intern_payload(7, 1, 8)
    second = intern_payload(7, 1, 8)
    assert first == (7, 1, 8)
    assert second is first


def test_intern_table_is_bounded():
    _PAYLOAD_INTERN.clear()
    for i in range(_PAYLOAD_INTERN_LIMIT + 10):
        intern_payload(i, 0, 8)
    assert len(_PAYLOAD_INTERN) <= _PAYLOAD_INTERN_LIMIT
    # The table still interns after clearing.
    assert intern_payload(1, 2, 3) is intern_payload(1, 2, 3)


def test_checkpoints_share_payload_objects_across_cycles():
    """Replaying crash/restart cycles must not re-allocate identical
    payload triples: consecutive checkpoints of unchanged tuples carry
    the same canonical objects."""
    store = PartitionStore(0)
    for key in range(16):
        store.insert(Record(key=key, value=key % 4))
    wal = WriteAheadLog(0)
    wal.log_checkpoint(store)
    wal.log_checkpoint(store)
    first, second = [r.payload for r in wal.records()]
    for key in range(16):
        assert second[key] is first[key]
    # Tuples sharing (value, version, size) share one triple within a
    # single snapshot as well.
    assert first[0] is first[4]

    recovered = recover(wal)
    assert len(recovered) == 16
    assert recovered.read(5) == 1
