"""Tests for write-ahead logging and redo recovery."""

import pytest

from repro.errors import StorageError
from repro.storage import PartitionStore, Record
from repro.storage.wal import (
    WalRecordType,
    WriteAheadLog,
    recover,
)


@pytest.fixture
def wal():
    return WriteAheadLog(partition_id=0)


def committed_txn(wal, txn_id, *actions):
    wal.log_begin(txn_id)
    for action in actions:
        action(txn_id)
    wal.log_commit(txn_id)


class TestAppending:
    def test_lsns_increase(self, wal):
        a = wal.log_begin(1)
        b = wal.log_write(1, 5, 10)
        c = wal.log_commit(1)
        assert a.lsn < b.lsn < c.lsn
        assert wal.last_lsn == c.lsn

    def test_double_begin_rejected(self, wal):
        wal.log_begin(1)
        with pytest.raises(StorageError):
            wal.log_begin(1)

    def test_mutation_without_begin_rejected(self, wal):
        with pytest.raises(StorageError):
            wal.log_write(9, 1, 2)
        with pytest.raises(StorageError):
            wal.log_commit(9)

    def test_begin_reusable_after_commit(self, wal):
        wal.log_begin(1)
        wal.log_commit(1)
        wal.log_begin(1)  # a retried transaction logs a fresh BEGIN
        wal.log_abort(1)
        assert len(wal) == 4

    def test_empty_log_last_lsn_zero(self, wal):
        assert wal.last_lsn == 0


class TestRecovery:
    def test_committed_effects_survive(self, wal):
        committed_txn(
            wal, 1,
            lambda t: wal.log_insert(t, Record(key=5, value=50)),
            lambda t: wal.log_write(t, 5, 55),
        )
        store = recover(wal)
        assert store.read(5) == 55

    def test_uncommitted_effects_discarded(self, wal):
        wal.log_begin(1)
        wal.log_insert(1, Record(key=5, value=50))
        # crash: no COMMIT record
        store = recover(wal)
        assert 5 not in store

    def test_aborted_effects_discarded(self, wal):
        wal.log_begin(1)
        wal.log_insert(1, Record(key=5, value=50))
        wal.log_abort(1)
        store = recover(wal)
        assert 5 not in store

    def test_delete_applied_for_committed(self, wal):
        committed_txn(
            wal, 1, lambda t: wal.log_insert(t, Record(key=5, value=50))
        )
        committed_txn(wal, 2, lambda t: wal.log_delete(t, 5))
        store = recover(wal)
        assert 5 not in store

    def test_interleaved_transactions(self, wal):
        wal.log_begin(1)
        wal.log_begin(2)
        wal.log_insert(1, Record(key=1, value=10))
        wal.log_insert(2, Record(key=2, value=20))
        wal.log_commit(1)
        wal.log_abort(2)
        store = recover(wal)
        assert store.read(1) == 10
        assert 2 not in store

    def test_lsn_order_respected(self, wal):
        committed_txn(
            wal, 1,
            lambda t: wal.log_insert(t, Record(key=1, value=1)),
            lambda t: wal.log_write(t, 1, 2),
            lambda t: wal.log_write(t, 1, 3),
        )
        assert recover(wal).read(1) == 3

    def test_recovery_matches_live_store(self, wal):
        """Shadow a sequence of live mutations and compare."""
        live = PartitionStore(0)
        for txn_id in range(1, 6):
            key = txn_id
            wal.log_begin(txn_id)
            record = Record(key=key, value=key * 10)
            wal.log_insert(txn_id, record)
            live.insert(record.copy())
            if txn_id % 2 == 0:
                wal.log_write(txn_id, key, key * 100)
                live.get(key).write(key * 100)
            wal.log_commit(txn_id)
        recovered = recover(wal)
        for key in live.keys():
            assert recovered.read(key) == live.read(key)


class TestCheckpointing:
    def make_store(self):
        store = PartitionStore(0)
        store.insert(Record(key=1, value=10))
        store.insert(Record(key=2, value=20))
        return store

    def test_recovery_starts_from_checkpoint(self, wal):
        wal.log_checkpoint(self.make_store())
        store = recover(wal)
        assert store.read(1) == 10
        assert store.read(2) == 20

    def test_tail_applies_over_checkpoint(self, wal):
        wal.log_checkpoint(self.make_store())
        committed_txn(wal, 7, lambda t: wal.log_write(t, 1, 111))
        store = recover(wal)
        assert store.read(1) == 111
        assert store.read(2) == 20

    def test_pre_checkpoint_records_ignored(self, wal):
        wal.log_begin(1)
        wal.log_insert(1, Record(key=9, value=9))
        wal.log_commit(1)
        # Checkpoint taken from a store that never saw key 9.
        wal.log_checkpoint(self.make_store())
        store = recover(wal)
        assert 9 not in store

    def test_truncate_drops_old_records(self, wal):
        committed_txn(
            wal, 1, lambda t: wal.log_insert(t, Record(key=9, value=9))
        )
        wal.log_checkpoint(self.make_store())
        size_before = len(wal)
        dropped = wal.truncate_before_checkpoint()
        assert dropped == size_before - 1
        assert recover(wal).read(1) == 10

    def test_truncate_without_checkpoint_is_noop(self, wal):
        committed_txn(
            wal, 1, lambda t: wal.log_insert(t, Record(key=9, value=9))
        )
        assert wal.truncate_before_checkpoint() == 0
        assert recover(wal).read(9) == 9

    def test_checkpoint_with_open_transaction_rejected(self, wal):
        """Sharp checkpoints only: snapshots include in-place writes of
        open transactions, which recovery could not undo."""
        wal.log_begin(1)
        wal.log_insert(1, Record(key=5, value=50))
        with pytest.raises(StorageError):
            wal.log_checkpoint(self.make_store())
        wal.log_commit(1)
        wal.log_checkpoint(self.make_store())  # quiescent: fine

    def test_open_transactions_tracked(self, wal):
        assert wal.open_transactions == frozenset()
        wal.log_begin(1)
        wal.log_begin(2)
        assert wal.open_transactions == frozenset({1, 2})
        wal.log_commit(1)
        wal.log_abort(2)
        assert wal.open_transactions == frozenset()

    def test_truncation_preserves_recovery_outcome(self, wal):
        committed_txn(
            wal, 1, lambda t: wal.log_insert(t, Record(key=9, value=9))
        )
        wal.log_checkpoint(recover(wal))
        committed_txn(wal, 2, lambda t: wal.log_write(t, 9, 99))
        before = recover(wal)
        wal.truncate_before_checkpoint()
        after = recover(wal)
        assert {k: after.read(k) for k in after.keys()} == {
            k: before.read(k) for k in before.keys()
        }

    def test_delete_of_key_absent_from_checkpoint(self, wal):
        """A committed DELETE whose key the checkpoint never held must
        recover cleanly instead of tripping over the missing key."""
        wal.log_checkpoint(self.make_store())  # holds keys 1 and 2 only
        committed_txn(
            wal, 3,
            lambda t: wal.log_insert(t, Record(key=7, value=70)),
            lambda t: wal.log_delete(t, 7),
        )
        committed_txn(wal, 4, lambda t: wal.log_delete(t, 7))
        store = recover(wal)
        assert 7 not in store
        assert store.read(1) == 10

    def test_record_types_enumerated(self):
        assert {t.value for t in WalRecordType} == {
            "begin", "write", "insert", "delete", "commit", "abort",
            "checkpoint",
        }
