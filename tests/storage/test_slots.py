"""Hot-path storage classes stay slotted (regression for RPR004 fixes).

``Record`` is allocated once per stored tuple (500k at paper scale, per
replica) and ``WalRecord`` once per logged operation, so an accidental
return to ``__dict__``-backed instances is a real memory regression.
These tests pin the invariant the linter enforces statically.
"""

from __future__ import annotations

import pytest

from repro.storage.record import Record
from repro.storage.wal import WalRecord, WalRecordType, WriteAheadLog


def test_record_has_no_instance_dict() -> None:
    record = Record(key=1, value=10)
    assert not hasattr(record, "__dict__")
    with pytest.raises(AttributeError):
        record.stray = True  # type: ignore[attr-defined]


def test_record_behaviour_unchanged_by_slots() -> None:
    record = Record(key=1, value=10)
    record.write(11)
    assert (record.value, record.version) == (11, 1)
    clone = record.copy()
    clone.write(12)
    assert record.value == 11  # copy is independent
    assert clone.version == 2


def test_wal_record_is_frozen_and_slotted() -> None:
    entry = WalRecord(lsn=1, type=WalRecordType.BEGIN, txn_id=7)
    assert not hasattr(entry, "__dict__")
    with pytest.raises(AttributeError):
        entry.lsn = 2  # type: ignore[misc]


def test_write_ahead_log_is_slotted() -> None:
    log = WriteAheadLog(partition_id=0)
    assert not hasattr(log, "__dict__")
    with pytest.raises(AttributeError):
        log.stray = True  # type: ignore[attr-defined]
