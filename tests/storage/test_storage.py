"""Tests for records, partition stores, and the catalog."""

import pytest

from repro.errors import StorageError
from repro.storage import (
    DEFAULT_TUPLE_SIZE_BYTES,
    Catalog,
    PartitionStore,
    Record,
    TableSchema,
)


class TestRecord:
    def test_defaults_match_paper(self):
        record = Record(key=1)
        assert record.size_bytes == DEFAULT_TUPLE_SIZE_BYTES == 8
        assert record.version == 0

    def test_write_bumps_version(self):
        record = Record(key=1, value=10)
        record.write(20)
        assert record.value == 20
        assert record.version == 1

    def test_copy_is_independent(self):
        record = Record(key=1, value=10)
        clone = record.copy()
        clone.write(99)
        assert record.value == 10
        assert clone.value == 99

    def test_copy_preserves_version(self):
        record = Record(key=1)
        record.write(5)
        assert record.copy().version == 1


class TestPartitionStore:
    def test_insert_and_get(self):
        store = PartitionStore(0)
        store.insert(Record(key=7, value=3))
        assert store.get(7).value == 3
        assert 7 in store
        assert len(store) == 1

    def test_get_missing_raises(self):
        store = PartitionStore(0)
        with pytest.raises(StorageError, match="not resident"):
            store.get(99)

    def test_peek_missing_returns_none(self):
        store = PartitionStore(0)
        assert store.peek(99) is None

    def test_duplicate_insert_raises(self):
        store = PartitionStore(0)
        store.insert(Record(key=1))
        with pytest.raises(StorageError, match="already resident"):
            store.insert(Record(key=1))

    def test_upsert_overwrites(self):
        store = PartitionStore(0)
        store.insert(Record(key=1, value=10))
        store.upsert(Record(key=1, value=20))
        assert store.get(1).value == 20
        assert store.inserts == 1  # upsert of existing is not an insert

    def test_delete_returns_record(self):
        store = PartitionStore(0)
        store.insert(Record(key=1, value=5))
        record = store.delete(1)
        assert record.value == 5
        assert 1 not in store

    def test_delete_missing_raises(self):
        store = PartitionStore(0)
        with pytest.raises(StorageError, match="cannot delete"):
            store.delete(1)

    def test_counters(self):
        store = PartitionStore(0)
        store.insert(Record(key=1))
        store.insert(Record(key=2))
        store.delete(1)
        assert store.inserts == 2
        assert store.deletes == 1

    def test_read_write_helpers(self):
        store = PartitionStore(0)
        store.insert(Record(key=1, value=10))
        assert store.read(1) == 10
        store.write(1, 42)
        assert store.read(1) == 42
        assert store.get(1).version == 1

    def test_keys_iterates_residents(self):
        store = PartitionStore(0)
        for key in (3, 1, 2):
            store.insert(Record(key=key))
        assert sorted(store.keys()) == [1, 2, 3]


class TestCatalog:
    def test_register_and_lookup(self):
        catalog = Catalog()
        schema = TableSchema(name="accounts", tuple_count=100)
        catalog.add_table(schema)
        assert catalog.table("accounts") is schema
        assert "accounts" in catalog

    def test_duplicate_table_rejected(self):
        catalog = Catalog()
        catalog.add_table(TableSchema(name="t", tuple_count=1))
        with pytest.raises(StorageError, match="already registered"):
            catalog.add_table(TableSchema(name="t", tuple_count=2))

    def test_unknown_table_raises(self):
        with pytest.raises(StorageError, match="unknown table"):
            Catalog().table("ghost")

    def test_schema_validation(self):
        with pytest.raises(StorageError):
            TableSchema(name="bad", tuple_count=-1)
        with pytest.raises(StorageError):
            TableSchema(name="bad", tuple_count=1, tuple_size_bytes=0)

    def test_contains_key(self):
        schema = TableSchema(name="t", tuple_count=10)
        assert schema.contains_key(0)
        assert schema.contains_key(9)
        assert not schema.contains_key(10)
        assert not schema.contains_key(-1)

    def test_tables_in_registration_order(self):
        catalog = Catalog()
        catalog.add_table(TableSchema(name="b", tuple_count=1))
        catalog.add_table(TableSchema(name="a", tuple_count=1))
        assert [t.name for t in catalog.tables()] == ["b", "a"]
