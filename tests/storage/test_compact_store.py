"""CompactPartitionStore: behavioural equivalence and flyweight views.

The compact store must be indistinguishable from ``PartitionStore``
through the public interface — same results, same counters, same error
messages — under arbitrary interleavings of the operations the executor
and migration paths perform.  A hypothesis-driven dual harness asserts
exactly that, plus targeted tests for the view semantics the executor
relies on (live write-through, survival across slot compaction, stale
detection after delete).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import StorageError
from repro.storage import (
    CompactPartitionStore,
    PartitionStore,
    Record,
    RecordView,
    WriteAheadLog,
    recover,
)

KEYS = st.integers(min_value=0, max_value=15)
VALUES = st.integers(min_value=-(2**62), max_value=2**62)

OPS = st.lists(
    st.one_of(
        st.tuples(st.just("insert"), KEYS, VALUES),
        st.tuples(st.just("upsert"), KEYS, VALUES),
        st.tuples(st.just("delete"), KEYS, st.just(0)),
        st.tuples(st.just("write"), KEYS, VALUES),
        st.tuples(st.just("view_write"), KEYS, VALUES),
        st.tuples(st.just("read"), KEYS, st.just(0)),
        st.tuples(st.just("get_copy"), KEYS, st.just(0)),
        st.tuples(st.just("keys"), st.just(0), st.just(0)),
    ),
    max_size=60,
)


def _apply(store, op, key, value):
    """Run one operation; returns (result, error message or None)."""
    try:
        if op == "insert":
            store.insert(Record(key=key, value=value))
            return None, None
        if op == "upsert":
            store.upsert(Record(key=key, value=value, version=3))
            return None, None
        if op == "delete":
            record = store.delete(key)
            return (record.key, record.value, record.version), None
        if op == "write":
            store.write(key, value)
            return None, None
        if op == "view_write":
            record = store.peek(key)
            if record is None:
                return None, None
            record.write(value)
            return (record.value, record.version), None
        if op == "read":
            return store.read(key), None
        if op == "get_copy":
            if key not in store:
                return None, None
            copied = store.get(key).copy()
            return (copied.key, copied.value, copied.version), None
        if op == "keys":
            return (list(store.keys()), len(store)), None
        raise AssertionError(op)
    except StorageError as exc:
        return None, str(exc)


@settings(max_examples=200, deadline=None)
@given(OPS)
def test_equivalent_to_partition_store(ops):
    """Same results, errors, counters, and contents for any interleaving."""
    standard = PartitionStore(3)
    compact = CompactPartitionStore(3)
    for op, key, value in ops:
        expected = _apply(standard, op, key, value)
        actual = _apply(compact, op, key, value)
        assert actual == expected, (op, key, value)
    assert list(compact.keys()) == list(standard.keys())
    assert (compact.inserts, compact.deletes) == (
        standard.inserts, standard.deletes
    )
    for key in standard.keys():
        lhs, rhs = compact.get(key), standard.get(key)
        assert (lhs.value, lhs.version, lhs.size_bytes) == (
            rhs.value, rhs.version, rhs.size_bytes
        )


def test_views_are_live_and_survive_compaction():
    """The executor's contract: held views track the store through
    other keys' swap-with-last deletes, and writes land in the store."""
    store = CompactPartitionStore(0)
    for key in range(4):
        store.insert(Record(key=key, value=key * 10))
    view = store.get(3)  # occupies the last slot
    store.delete(0)  # swap-with-last moves key 3 into slot 0
    assert view.value == 30
    view.write(99)
    assert store.read(3) == 99
    assert store.get(3).version == 1
    # Direct attribute assignment (the executor's undo path).
    view.value = -5
    view.version = 7
    assert store.read(3) == -5
    assert store.get(3).version == 7


def test_stale_view_raises():
    store = CompactPartitionStore(0)
    store.insert(Record(key=1, value=1))
    view = store.get(1)
    store.delete(1)
    with pytest.raises(StorageError, match="stale record view"):
        _ = view.value
    with pytest.raises(StorageError, match="no longer resident"):
        view.write(2)


def test_copy_is_detached():
    store = CompactPartitionStore(0)
    store.insert(Record(key=1, value=10))
    snapshot = store.get(1).copy()
    assert isinstance(snapshot, Record)
    store.write(1, 20)
    assert snapshot.value == 10


def test_insert_accepts_views_from_other_stores():
    """Migration inserts the source's record object into the target."""
    source = CompactPartitionStore(0)
    target = CompactPartitionStore(1)
    source.insert(Record(key=5, value=42))
    source.write(5, 43)
    target.insert(source.get(5))
    assert target.read(5) == 43
    assert target.get(5).version == 1
    # And the standard store accepts a RecordView too.
    standard = PartitionStore(2)
    standard.insert(source.get(5).copy())
    assert standard.read(5) == 43


def test_repr_shows_payload():
    store = CompactPartitionStore(0)
    store.insert(Record(key=2, value=7))
    assert "key=2" in repr(store.get(2))


def test_wal_roundtrip_with_compact_store():
    """recover() rebuilds into the factory's store implementation."""
    store = CompactPartitionStore(4)
    wal = WriteAheadLog(4)
    for key in range(8):
        store.insert(Record(key=key, value=key))
    wal.log_checkpoint(store)
    wal.log_begin(1)
    wal.log_write(1, 3, 333)
    wal.log_delete(1, 7)
    wal.log_commit(1)
    wal.log_begin(2)
    wal.log_write(2, 4, 444)  # never commits; must not survive

    recovered = recover(wal, CompactPartitionStore)
    assert isinstance(recovered, CompactPartitionStore)
    assert recovered.read(3) == 333
    assert 7 not in recovered
    assert recovered.read(4) == 4
    assert len(recovered) == 7
