"""Tests for the parallel execution engine and the result cache.

The two load-bearing guarantees: ``jobs=4`` must reproduce ``jobs=1``
bit-for-bit (summaries *and* interval series), and a cache round-trip
must reproduce the exact result object.
"""

import dataclasses
import json

from repro.experiments.config import (
    config_delta,
    config_from_dict,
    config_to_dict,
)
from repro.experiments.parallel import shutdown_pool, warm_pool
from repro.faults import FaultEvent, FaultScheduleConfig

from repro.experiments import (
    CACHE_DIR_ENV,
    CACHE_SCHEMA_VERSION,
    CellReport,
    ResultCache,
    config_key,
    default_cache_dir,
    resolve_jobs,
    run_cells,
    run_experiment,
    sweep_seeds,
)
from repro.experiments.figures import _run_cells

from .test_runner import tiny


def _tiny_matrix():
    """Four small, distinct cells."""
    return [
        tiny(scheduler=scheduler, measure_intervals=3, warmup_intervals=1)
        for scheduler in ("ApplyAll", "AfterAll", "Piggyback", "Hybrid")
    ]


def _assert_identical(first, second):
    """Summaries and full interval series match bit-for-bit."""
    assert first.summary == second.summary
    assert len(first.intervals) == len(second.intervals)
    for a, b in zip(first.intervals, second.intervals):
        assert dataclasses.asdict(a) == dataclasses.asdict(b)


class TestRunCells:
    def test_results_in_config_order(self):
        configs = _tiny_matrix()
        results = run_cells(configs, jobs=1)
        assert [r.config.scheduler for r in results] == [
            c.scheduler for c in configs
        ]

    def test_serial_matches_direct_runner(self):
        config = tiny(measure_intervals=3, warmup_intervals=1)
        (via_engine,) = run_cells([config], jobs=1)
        _assert_identical(via_engine, run_experiment(config))

    def test_parallel_matches_serial_bit_for_bit(self):
        configs = _tiny_matrix()
        serial = run_cells(configs, jobs=1)
        parallel = run_cells(configs, jobs=4)
        for a, b in zip(serial, parallel):
            _assert_identical(a, b)

    def test_progress_fires_in_config_order(self):
        configs = _tiny_matrix()
        seen = []
        run_cells(configs, jobs=1, progress=lambda c: seen.append(c.scheduler))
        assert seen == [c.scheduler for c in configs]

    def test_report_counts_executions(self):
        report = CellReport()
        run_cells(_tiny_matrix()[:2], jobs=1, report=report)
        assert report.total == 2
        assert report.executed == 2
        assert report.cache_hits == 0
        assert report.cache_misses == 2
        assert report.wall_clock_s > 0

    def test_resolve_jobs(self):
        assert resolve_jobs(3) == 3
        assert resolve_jobs(1) == 1
        assert resolve_jobs(0) >= 1
        assert resolve_jobs(-2) >= 1


class TestResultCache:
    def test_round_trip_reproduces_exact_result(self, tmp_path):
        config = tiny(measure_intervals=3, warmup_intervals=1)
        cache = ResultCache(tmp_path)
        result = run_experiment(config)
        cache.put(config, result)
        restored = cache.get(config)
        assert restored == result  # dataclass equality over every field

    def test_second_batch_served_entirely_from_cache(self, tmp_path):
        configs = _tiny_matrix()
        cache = ResultCache(tmp_path)
        cold_report = CellReport()
        cold = run_cells(configs, cache=cache, report=cold_report)
        assert cold_report.executed == len(configs)

        warm_report = CellReport()
        executed = []
        warm = run_cells(
            configs,
            cache=cache,
            progress=lambda c: executed.append(c),
            report=warm_report,
        )
        assert executed == []  # zero simulations ran
        assert warm_report.executed == 0
        assert warm_report.cache_hits == len(configs)
        for a, b in zip(cold, warm):
            _assert_identical(a, b)

    def test_key_is_stable_and_config_sensitive(self):
        config = tiny(measure_intervals=3, warmup_intervals=1)
        assert config_key(config) == config_key(config)
        assert config_key(config) != config_key(
            config.with_overrides(seed=99)
        )
        assert config_key(config) != config_key(
            config.with_overrides(scheduler="AfterAll")
        )

    def test_schema_is_v4(self):
        # The elastic-membership refactor changed the stored interval
        # layout (the per-state node census fields) and the hashed
        # config (the elasticity schedule).
        assert CACHE_SCHEMA_VERSION == 4

    def test_old_schema_entry_is_ignored_not_misserved(self, tmp_path):
        """A v3-era entry under the same config must miss, not resurrect.

        Pre-v4 files are keyed by the old schema version in both the
        hashed payload and the filename prefix, so even a structurally
        readable old entry can never be looked up by a v4 cache.
        """
        import json

        config = tiny(measure_intervals=3, warmup_intervals=1)
        cache = ResultCache(tmp_path)
        result = run_experiment(config)

        # Recreate what a v3 cache would have written for this config:
        # the old key mixes schema=3 into the hash and prefixes v3-.
        import dataclasses as dc
        import hashlib

        old_payload = json.dumps(
            {"schema": 3, "config": dc.asdict(config)},
            sort_keys=True, separators=(",", ":"), default=repr,
        )
        old_key = hashlib.sha256(old_payload.encode("utf-8")).hexdigest()
        old_path = tmp_path / f"v3-{old_key}.json"
        from repro.metrics.export import result_to_state_dict

        state = result_to_state_dict(result)
        for interval in state["intervals"]:  # v3 records lacked the new fields
            for field_name in (
                "nodes_joining", "nodes_active",
                "nodes_draining", "nodes_retired",
            ):
                interval.pop(field_name)
        old_path.write_text(json.dumps(state))

        assert cache.get(config) is None  # v3 entry must not be served
        assert cache.misses == 1
        assert cache.path_for(config).name.startswith("v4-")
        assert old_path.exists()  # old entries are ignored, not deleted

    def test_repeat_get_served_from_memory(self, tmp_path):
        config = tiny(measure_intervals=3, warmup_intervals=1)
        cache = ResultCache(tmp_path)
        cache.put(config, run_experiment(config))
        first = cache.get(config)  # disk read, populates the LRU
        assert cache.memory_hits == 0
        second = cache.get(config)
        assert second is first  # the same object, no JSON re-read
        assert cache.hits == 2
        assert cache.memory_hits == 1

    def test_memory_layer_survives_disk_entry_deletion(self, tmp_path):
        """Once read, an entry is served from memory even if the file goes."""
        config = tiny(measure_intervals=3, warmup_intervals=1)
        cache = ResultCache(tmp_path)
        cache.put(config, run_experiment(config))
        first = cache.get(config)
        cache.path_for(config).unlink()
        assert cache.get(config) is first

    def test_memory_layer_evicts_least_recent(self, tmp_path):
        configs = _tiny_matrix()[:3]
        cache = ResultCache(tmp_path, memory_entries=2)
        for config in configs:
            cache.put(config, run_experiment(config))
            cache.get(config)  # populate the LRU
        # configs[0] was evicted when configs[2] came in; the other two
        # are memory hits.
        before = cache.memory_hits
        assert cache.get(configs[1]) is not None
        assert cache.get(configs[2]) is not None
        assert cache.memory_hits == before + 2
        assert cache.get(configs[0]) is not None  # re-read from disk
        assert cache.memory_hits == before + 2

    def test_put_does_not_populate_memory(self, tmp_path):
        """The LRU fills on successful reads only, so a corrupted or
        unwritable disk entry can never be masked by the memory layer."""
        config = tiny(measure_intervals=3, warmup_intervals=1)
        cache = ResultCache(tmp_path)
        cache.put(config, run_experiment(config))
        cache.path_for(config).write_text("{not json")
        assert cache.get(config) is None
        assert cache.memory_hits == 0

    def test_memory_layer_can_be_disabled(self, tmp_path):
        config = tiny(measure_intervals=3, warmup_intervals=1)
        cache = ResultCache(tmp_path, memory_entries=0)
        cache.put(config, run_experiment(config))
        first = cache.get(config)
        second = cache.get(config)
        assert first == second
        assert second is not first  # every get re-reads the disk
        assert cache.memory_hits == 0

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        config = tiny(measure_intervals=3, warmup_intervals=1)
        cache = ResultCache(tmp_path)
        cache.put(config, run_experiment(config))
        cache.path_for(config).write_text("{not json")
        assert cache.get(config) is None
        assert cache.misses == 1

    def test_unwritable_directory_does_not_raise(self, tmp_path):
        config = tiny(measure_intervals=3, warmup_intervals=1)
        result = run_experiment(config)
        blocked = tmp_path / "file-not-dir"
        blocked.write_text("")
        cache = ResultCache(blocked / "cache")
        cache.put(config, result)  # must swallow the write failure
        assert cache.get(config) is None
        assert cache.misses == 1

    def test_env_var_overrides_default_dir(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "elsewhere"))
        assert default_cache_dir() == tmp_path / "elsewhere"
        assert ResultCache().directory == tmp_path / "elsewhere"
        monkeypatch.delenv(CACHE_DIR_ENV)
        assert str(default_cache_dir()) == ".repro-cache"


class TestConfigSerde:
    """Dict/JSON round-tripping that the delta dispatch relies on."""

    def test_round_trip_is_exact(self):
        config = tiny(measure_intervals=3, warmup_intervals=1)
        rebuilt = config_from_dict(
            json.loads(json.dumps(config_to_dict(config)))
        )
        assert rebuilt == config
        assert config_key(rebuilt) == config_key(config)

    def test_round_trip_preserves_fault_schedule(self):
        schedule = FaultScheduleConfig(
            events=(
                FaultEvent(120.0, "crash", 2),
                FaultEvent(180.0, "restart", 2),
            ),
            mtbf_s=300.0,
            mttr_s=30.0,
        )
        config = tiny(measure_intervals=3, warmup_intervals=1).with_overrides(
            faults=schedule
        )
        rebuilt = config_from_dict(
            json.loads(json.dumps(config_to_dict(config)))
        )
        assert rebuilt == config
        assert isinstance(rebuilt.faults.events, tuple)
        assert config_key(rebuilt) == config_key(config)

    def test_delta_contains_only_differing_fields(self):
        base = tiny(scheduler="Hybrid", measure_intervals=3, warmup_intervals=1)
        other = tiny(
            scheduler="Feedback",
            alpha=0.2,
            measure_intervals=3,
            warmup_intervals=1,
        )
        delta = config_delta(base, other)
        assert set(delta) == {"name", "scheduler", "alpha"}
        assert config_delta(base, base) == {}

    def test_delta_applied_over_base_reconstructs_cell(self):
        base = tiny(scheduler="Hybrid", measure_intervals=3, warmup_intervals=1)
        cell = tiny(
            scheduler="Piggyback",
            distribution="uniform",
            load="low",
            alpha=0.6,
            seed=7,
            measure_intervals=3,
            warmup_intervals=1,
        )
        merged = json.loads(json.dumps(config_to_dict(base)))
        merged.update(
            json.loads(json.dumps(config_delta(base, cell)))
        )
        assert config_from_dict(merged) == cell


class TestWarmPool:
    def test_pool_is_reused_for_same_worker_count(self):
        first = warm_pool(2)
        second = warm_pool(2)
        assert first is second
        shutdown_pool()

    def test_pool_rebuilt_when_worker_count_changes(self):
        first = warm_pool(2)
        second = warm_pool(3)
        assert first is not second
        assert second is warm_pool(3)
        shutdown_pool()

    def test_shutdown_is_idempotent(self):
        warm_pool(2)
        shutdown_pool()
        shutdown_pool()  # no live pool: must not raise

    def test_consecutive_run_cells_share_one_pool(self):
        configs = _tiny_matrix()[:2]
        first = run_cells(configs, jobs=2)
        pool_after_first = warm_pool(2)  # same size: must be the live pool
        second = run_cells(configs, jobs=2)
        assert warm_pool(2) is pool_after_first
        for a, b in zip(first, second):
            _assert_identical(a, b)


class TestIntegration:
    def test_figure_cells_parallel_matches_serial(self):
        def factory(scheduler, distribution, load, alpha, seed):
            return tiny(
                scheduler=scheduler,
                distribution=distribution,
                load=load,
                alpha=alpha,
                seed=seed,
                measure_intervals=3,
                warmup_intervals=1,
            )

        kwargs = dict(
            schedulers=("ApplyAll", "Hybrid"),
            config_factory=factory,
        )
        serial = _run_cells("F", "zipf", "low", (1.0, 0.6), jobs=1, **kwargs)
        parallel = _run_cells("F", "zipf", "low", (1.0, 0.6), jobs=4, **kwargs)
        assert set(serial.runs) == set(parallel.runs)
        for cell, result in serial.runs.items():
            _assert_identical(result, parallel.runs[cell])

    def test_sweep_parallel_matches_serial(self):
        config = tiny(measure_intervals=3, warmup_intervals=1)
        serial = sweep_seeds(config, seeds=(1, 2, 3), jobs=1)
        parallel = sweep_seeds(config, seeds=(1, 2, 3), jobs=3)
        for a, b in zip(serial.results, parallel.results):
            _assert_identical(a, b)

    def test_sweep_uses_cache(self, tmp_path):
        config = tiny(measure_intervals=3, warmup_intervals=1)
        cache = ResultCache(tmp_path)
        sweep_seeds(config, seeds=(1, 2), cache=cache)
        report = CellReport()
        sweep_seeds(config, seeds=(1, 2), cache=cache, report=report)
        assert report.executed == 0
        assert report.cache_hits == 2
