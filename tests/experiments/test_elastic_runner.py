"""End-to-end elasticity through the experiment runner.

The acceptance bar for elastic membership: a mid-run scale-out then
scale-in completes under the ordinary runner — drain migrations are
SOAP-ranked and epoch-staged, every DRAINING node reaches zero resident
tuples before RETIRED, the per-state node census and migration backlog
land in the interval series, and the whole run stays bit-identical
between serial and parallel execution and through the result cache.
"""

import dataclasses

import pytest

from repro.cluster import ClusterConfig, NodeState
from repro.elasticity import parse_elasticity_schedule
from repro.experiments import (
    ElasticFigureResult,
    bench_scale,
    build_system,
    config_key,
    figure_elastic,
    run_cells,
    run_experiment,
    start_repartitioning,
)
from repro.experiments.config import config_from_dict, config_to_dict
from repro.workload import WorkloadConfig

#: Add one node during the third measured interval, drain it (node 3,
#: the joiner) later, well before the horizon.
SCHEDULE = "60:add:1,200:drain:3"


def elastic_config(scheduler="Hybrid", schedule=SCHEDULE, seed=0,
                   measure_intervals=14, **kwargs):
    """A small cell with a scale-out/in cycle injected mid-run."""
    config = bench_scale(
        scheduler=scheduler,
        seed=seed,
        measure_intervals=measure_intervals,
        warmup_intervals=1,
        elasticity=(
            parse_elasticity_schedule(schedule) if schedule else None
        ),
        **kwargs,
    )
    return dataclasses.replace(
        config,
        cluster=ClusterConfig(node_count=3, capacity_units_per_s=4.0),
        workload=WorkloadConfig(
            tuple_count=200,
            distinct_types=40,
            distribution=config.workload.distribution,
        ),
    )


def run_system(config):
    """Like ``run_experiment`` but hands back the live system."""
    system = build_system(config)
    env = system.env
    interval_s = config.runtime.interval_s
    warmup_s = interval_s * config.runtime.warmup_intervals

    def kickoff():
        yield env.timeout(warmup_s)
        start_repartitioning(system)

    env.process(kickoff())
    env.run(
        until=warmup_s + interval_s * config.runtime.measure_intervals + 1e-9
    )
    return system


def _assert_identical(first, second):
    assert first.summary == second.summary
    assert len(first.intervals) == len(second.intervals)
    for a, b in zip(first.intervals, second.intervals):
        assert dataclasses.asdict(a) == dataclasses.asdict(b)


class TestScaleOutIn:
    def test_join_drain_cycle_completes(self):
        system = run_system(elastic_config())
        controller = system.elasticity_controller
        assert controller is not None
        assert controller.quiescent
        assert controller.nodes_added == 1
        assert controller.drains_started == 1
        assert controller.nodes_retired == 1
        assert controller.migration_ops_planned > 0

        joiner = system.cluster.node(3)
        assert joiner.state is NodeState.RETIRED
        # Retirement never strands data: the node's store is empty and
        # the routing map points no key at its partition.
        assert len(joiner.store) == 0
        sizes = system.store.partition_sizes()
        assert sizes.get(joiner.partition_id, 0) == 0

    def test_census_series_recorded(self):
        system = run_system(elastic_config())
        records = system.metrics.intervals
        # The census sums to the node list as of each interval: it only
        # ever grows (retired nodes stay counted), from 3 to 4.
        totals = [
            record.nodes_joining + record.nodes_active
            + record.nodes_draining + record.nodes_retired
            for record in records
        ]
        assert totals == sorted(totals)
        assert totals[0] == 3
        assert totals[-1] == len(system.cluster.nodes) == 4
        assert any(r.nodes_joining > 0 for r in records)
        assert any(r.nodes_draining > 0 for r in records)
        assert records[-1].nodes_retired == 1
        assert records[0].nodes_active == 3

    def test_migration_backlog_series_drains_to_zero(self):
        system = run_system(elastic_config())
        records = system.metrics.intervals
        assert any(r.migration_backlog > 0 for r in records)
        assert records[-1].migration_backlog == 0

    def test_workload_still_served_after_scale_in(self):
        system = run_system(elastic_config())
        assert system.metrics.intervals[-1].committed > 0

    def test_elasticity_before_warmup_end_shares_session(self):
        # The add fires at t=10 s, before the warmup boundary at 20 s:
        # the controller opens the session and the workload plan joins
        # it via extend() instead of deploying a second one.
        system = run_system(elastic_config(schedule="10:add:1"))
        assert system.session is system.repartitioner.session
        assert system.scheduler is system.repartitioner.scheduler
        assert system.metrics.intervals[-1].committed > 0

    def test_draining_skips_non_active_nodes(self):
        # Draining a node twice: the second event is a schedule mistake
        # and is skipped, not fatal.
        system = run_system(
            elastic_config(schedule="60:add:1,200:drain:3,220:drain:3")
        )
        controller = system.elasticity_controller
        assert controller.drains_started == 1
        assert controller.skipped == 1


class TestPolicyMode:
    def test_sustained_queue_pressure_adds_a_node(self):
        # Watermark low enough that the loaded bench queue trips it.
        system = run_system(
            elastic_config(schedule="high=0.5,low=0.0,check=2,max=4")
        )
        controller = system.elasticity_controller
        assert controller.nodes_added >= 1
        assert len(system.cluster.nodes) <= 4 + 0  # max respected

    def test_max_nodes_caps_growth(self):
        system = run_system(
            elastic_config(schedule="high=0.5,low=0.0,check=1,max=4")
        )
        serving = system.cluster.nodes_in(
            NodeState.ACTIVE, NodeState.JOINING
        )
        assert len(serving) <= 4


class TestDeterminism:
    def test_same_seed_and_schedule_bit_identical(self):
        config = elastic_config(measure_intervals=10)
        _assert_identical(run_experiment(config), run_experiment(config))

    def test_schedule_changes_outcome(self):
        base = elastic_config(measure_intervals=10)
        quiet = elastic_config(schedule=None, measure_intervals=10)
        assert run_experiment(base).summary != run_experiment(quiet).summary

    def test_parallel_matches_serial_bit_for_bit(self):
        configs = [
            elastic_config(scheduler, measure_intervals=10)
            for scheduler in ("ApplyAll", "Hybrid")
        ]
        serial = run_cells(configs, jobs=1)
        parallel = run_cells(configs, jobs=2)
        for a, b in zip(serial, parallel):
            _assert_identical(a, b)


class TestConfigPlumbing:
    def test_config_round_trips_through_dict(self):
        config = elastic_config()
        assert config_from_dict(config_to_dict(config)) == config
        policy = elastic_config(schedule="high=50,low=2,check=3")
        assert config_from_dict(config_to_dict(policy)) == policy

    def test_key_sensitive_to_schedule(self):
        base = elastic_config()
        assert config_key(base) == config_key(elastic_config())
        assert config_key(base) != config_key(
            elastic_config(schedule="61:add:1,200:drain:3")
        )
        assert config_key(base) != config_key(
            elastic_config(schedule=None)
        )
        assert config_key(base) != config_key(
            elastic_config(schedule="high=50,low=2,check=3")
        )


class TestElasticFigure:
    def test_tiny_elastic_figure_renders(self, tmp_path):
        from repro.experiments import ResultCache

        result = figure_elastic(
            schedule="60:add:1,200:drain:5",
            schedulers=("Hybrid",),
            measure_intervals=12,
            cache=ResultCache(tmp_path),
        )
        assert isinstance(result, ElasticFigureResult)
        assert set(result.runs) == {("Hybrid", 1.0)}
        text = result.render(every=4)
        assert "Throughput" in text
        assert "Migration backlog" in text
        assert "ACTIVE nodes" in text
