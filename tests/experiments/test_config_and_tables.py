"""Tests for experiment configs and the Table 1 setpoint registry."""

import pytest

from repro.errors import ConfigError
from repro.experiments import (
    HIGH_LOAD_UTILISATION,
    LOW_LOAD_UTILISATION,
    SCHEDULER_NAMES,
    SP_TABLE,
    ExperimentConfig,
    RuntimeConfig,
    bench_scale,
    format_table1,
    paper_scale,
    setpoint_for,
)


class TestExperimentConfig:
    def test_defaults_valid(self):
        config = ExperimentConfig()
        assert config.scheduler in SCHEDULER_NAMES

    def test_load_levels(self):
        assert ExperimentConfig(load="high").utilisation_target == (
            HIGH_LOAD_UTILISATION
        )
        assert ExperimentConfig(load="low").utilisation_target == (
            LOW_LOAD_UTILISATION
        )

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"scheduler": "Magic"},
            {"distribution": "pareto"},
            {"load": "medium"},
            {"alpha": 0.0},
            {"alpha": 1.5},
        ],
    )
    def test_invalid_cells_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            ExperimentConfig(**kwargs)

    def test_with_overrides(self):
        config = ExperimentConfig()
        other = config.with_overrides(alpha=0.6, load="low")
        assert other.alpha == 0.6
        assert config.alpha == 1.0

    def test_runtime_validation(self):
        with pytest.raises(ConfigError):
            RuntimeConfig(interval_s=0)
        with pytest.raises(ConfigError):
            RuntimeConfig(queue_timeout_s=-1)
        with pytest.raises(ConfigError):
            RuntimeConfig(measure_intervals=0)


class TestPresets:
    def test_bench_scale_names_cells(self):
        config = bench_scale("Hybrid", "zipf", "high", 0.6)
        assert config.name == "Hybrid-zipf-high-a60"
        assert config.alpha == 0.6

    def test_bench_scale_type_counts_by_distribution(self):
        assert bench_scale(distribution="uniform").workload.distinct_types > (
            bench_scale(distribution="zipf").workload.distinct_types
        )

    def test_medium_scale_between_bench_and_paper(self):
        from repro.experiments import medium_scale

        bench = bench_scale()
        medium = medium_scale()
        paper = paper_scale()
        assert (
            bench.workload.tuple_count
            < medium.workload.tuple_count
            < paper.workload.tuple_count
        )
        assert medium.runtime.measure_intervals == 120

    def test_paper_scale_matches_paper_sizes(self):
        config = paper_scale(distribution="zipf")
        assert config.workload.tuple_count == 500_000
        assert config.workload.distinct_types == 23_457
        assert config.cluster.node_count == 5
        uniform = paper_scale(distribution="uniform")
        assert uniform.workload.distinct_types == 30_000


class TestTable1:
    def test_full_coverage(self):
        """Every (algorithm, dist, load, alpha) cell of Table 1 exists."""
        for algorithm in ("Feedback", "Hybrid"):
            for distribution in ("zipf", "uniform"):
                for load in ("high", "low"):
                    for alpha in (1.0, 0.6, 0.2):
                        assert (
                            algorithm, distribution, load, alpha
                        ) in SP_TABLE

    def test_known_values_from_paper(self):
        assert setpoint_for("Feedback", "uniform", "high", 1.0) == 1.25
        assert setpoint_for("Feedback", "zipf", "high", 0.2) == 1.10
        assert setpoint_for("Feedback", "zipf", "low", 0.2) == 1.015
        assert setpoint_for("Hybrid", "zipf", "high", 1.0) == 1.05

    def test_alpha_snaps_to_nearest(self):
        assert setpoint_for("Hybrid", "zipf", "high", 0.55) == (
            setpoint_for("Hybrid", "zipf", "high", 0.6)
        )

    def test_non_feedback_algorithms_rejected(self):
        with pytest.raises(ConfigError):
            setpoint_for("ApplyAll", "zipf", "high", 1.0)

    def test_all_setpoints_on_ratio_scale(self):
        for value in SP_TABLE.values():
            assert 1.0 < value < 2.0

    def test_format_table1_renders_all_rows(self):
        text = format_table1()
        assert "Feedback" in text and "Hybrid" in text
        assert "1.25" in text and "1.015" in text
        assert len(text.splitlines()) == 6
