"""The cluster-scale tier: preset, storage resolution, streaming assembly.

The ``production_scale`` preset must keep the paper's ratios while the
tier machinery (``storage_tier`` → store factory + partition map) and
the streaming dataset path must be exact drop-ins: the streamed
placement is compared key for key against the materialised-profile
placement the figure presets use.
"""

import random
from dataclasses import replace

import pytest

from repro.errors import ConfigError
from repro.experiments import (
    COMPACT_STORE_THRESHOLD,
    bench_scale,
    make_partition_map,
    medium_scale,
    production_scale,
    resolve_store_factory,
    uses_compact_storage,
)
from repro.experiments.config import (
    RuntimeConfig,
    config_from_dict,
    config_to_dict,
)
from repro.routing import DensePartitionMap, PartitionMap
from repro.storage import CompactPartitionStore, PartitionStore
from repro.workload.dataset import (
    choose_distributed_type_ids,
    choose_distributed_types,
    initial_placement,
    place_unprofiled_keys,
)
from repro.workload.generator import (
    PAPER_TUPLE_COUNT,
    PAPER_UNIFORM_TYPES,
    PAPER_ZIPF_TYPES,
    build_profile,
    iter_profile_types,
)


class TestProductionPreset:
    def test_keeps_paper_type_ratios(self):
        uniform = production_scale(
            distribution="uniform", tuple_count=1_000_000
        )
        zipf = production_scale(distribution="zipf", tuple_count=1_000_000)
        assert uniform.workload.distinct_types == (
            1_000_000 * PAPER_UNIFORM_TYPES // PAPER_TUPLE_COUNT
        )
        assert zipf.workload.distinct_types == (
            1_000_000 * PAPER_ZIPF_TYPES // PAPER_TUPLE_COUNT
        )

    def test_scales_admission_with_cluster(self):
        assert production_scale(node_count=100).runtime.max_concurrent == 2_000
        assert production_scale(node_count=500).runtime.max_concurrent == 10_000
        assert production_scale(node_count=500).cluster.node_count == 500

    def test_validation(self):
        with pytest.raises(ConfigError, match="at least one node"):
            production_scale(node_count=0)
        with pytest.raises(ConfigError, match="500k tuples"):
            production_scale(tuple_count=100_000)

    def test_round_trips_through_dict(self):
        config = production_scale(node_count=250, tuple_count=1_500_000)
        assert config.runtime.storage_tier == "auto"
        rebuilt = config_from_dict(config_to_dict(config))
        assert rebuilt == config
        assert rebuilt.runtime.storage_tier == "auto"


class TestStorageTierResolution:
    def test_storage_tier_validated(self):
        with pytest.raises(ConfigError, match="storage_tier"):
            RuntimeConfig(storage_tier="bogus")

    def _with_tier(self, config, tier):
        return replace(config, runtime=replace(config.runtime, storage_tier=tier))

    def test_auto_follows_tuple_count(self):
        assert uses_compact_storage(production_scale())
        assert production_scale().workload.tuple_count >= COMPACT_STORE_THRESHOLD
        assert not uses_compact_storage(bench_scale())
        assert not uses_compact_storage(medium_scale())

    def test_explicit_tiers_override_auto(self):
        big_standard = self._with_tier(production_scale(), "standard")
        small_compact = self._with_tier(bench_scale(), "compact")
        assert not uses_compact_storage(big_standard)
        assert uses_compact_storage(small_compact)

    def test_store_factory_and_map_follow_tier(self):
        compact = production_scale()
        standard = bench_scale()
        assert resolve_store_factory(compact) is CompactPartitionStore
        assert resolve_store_factory(standard) is PartitionStore
        dense = make_partition_map(compact)
        assert isinstance(dense, DensePartitionMap)
        assert dense.capacity == compact.workload.tuple_count
        plain = make_partition_map(standard)
        assert type(plain) is PartitionMap


class TestStreamingAssembly:
    """The streaming path must equal the materialised path bit for bit."""

    CONFIG = bench_scale(alpha=0.6).workload
    PARTITIONS = list(range(5))

    def test_streamed_types_match_built_profile(self):
        streamed = list(iter_profile_types(self.CONFIG))
        assert streamed == build_profile(self.CONFIG).types

    def test_distributed_id_selection_matches_profile_selection(self):
        profile = build_profile(self.CONFIG)
        from_profile = choose_distributed_types(
            profile, 0.6, random.Random(42)
        )
        from_count = choose_distributed_type_ids(
            len(profile.types), 0.6, random.Random(42)
        )
        assert from_count == from_profile
        assert choose_distributed_type_ids(
            10, 1.0, random.Random(0)
        ) == set(range(10))

    def test_streamed_placement_matches_profile_placement(self):
        profile = build_profile(self.CONFIG)
        distributed = choose_distributed_types(profile, 0.6, random.Random(1))
        reference = initial_placement(profile, self.PARTITIONS, distributed)
        place_unprofiled_keys(
            reference, self.CONFIG.tuple_count, self.PARTITIONS
        )
        streamed = initial_placement(
            iter_profile_types(self.CONFIG),
            self.PARTITIONS,
            distributed,
            pmap=DensePartitionMap(self.CONFIG.tuple_count),
        )
        place_unprofiled_keys(
            streamed, self.CONFIG.tuple_count, self.PARTITIONS
        )
        assert len(streamed) == len(reference) == self.CONFIG.tuple_count
        for key in range(self.CONFIG.tuple_count):
            assert streamed.replicas_of(key) == reference.replicas_of(key)

    def test_initial_placement_requires_empty_map(self):
        used = DensePartitionMap(16)
        used.assign(0, 0)
        with pytest.raises(ConfigError, match="empty partition map"):
            initial_placement(
                iter_profile_types(self.CONFIG),
                self.PARTITIONS,
                set(),
                pmap=used,
            )
