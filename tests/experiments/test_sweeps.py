"""Tests for multi-seed sweeps and aggregate statistics."""

import pytest

from repro.experiments import (
    MetricStats,
    format_sweep_comparison,
    sweep_seeds,
)

from .test_runner import tiny


class TestMetricStats:
    def test_single_sample(self):
        stats = MetricStats.from_values([4.0])
        assert stats.mean == 4.0
        assert stats.std == 0.0
        assert stats.samples == 1

    def test_known_values(self):
        stats = MetricStats.from_values([1.0, 3.0])
        assert stats.mean == 2.0
        assert stats.std == pytest.approx(1.0)
        assert stats.minimum == 1.0
        assert stats.maximum == 3.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            MetricStats.from_values([])

    def test_population_and_sample_std_pinned(self):
        """Both deviations on a known sample (n=8, mean=5, Σ(v-μ)²=32)."""
        values = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
        stats = MetricStats.from_values(values)
        assert stats.mean == 5.0
        assert stats.std == pytest.approx(2.0)  # sqrt(32 / 8)
        assert stats.sample_std == pytest.approx(2.13808993529939)  # sqrt(32/7)
        assert stats.sample_std > stats.std

    def test_single_sample_has_zero_sample_std(self):
        assert MetricStats.from_values([4.0]).sample_std == 0.0

    def test_comparison_table_quotes_sample_std(self):
        from repro.experiments.sweeps import (
            SweepResult,
            format_sweep_comparison,
        )

        class _Fake(SweepResult):
            def stats(self, metric):
                return MetricStats.from_values([1.0, 3.0])

            def completion_fraction(self):
                return 1.0

        text = format_sweep_comparison(
            {"X": _Fake(config=None)}, metrics=("m",)
        )
        # sample std of [1, 3] is sqrt(2) ≈ 1.41; population std is 1.00.
        assert "2.00 ± 1.41" in text


class TestSweep:
    @pytest.fixture(scope="class")
    def sweep(self):
        return sweep_seeds(tiny(scheduler="ApplyAll"), seeds=(1, 2, 3))

    def test_one_result_per_seed(self, sweep):
        assert len(sweep.results) == 3
        assert [r.config.seed for r in sweep.results] == [1, 2, 3]

    def test_seeds_produce_different_outcomes(self, sweep):
        submitted = {
            sum(r.submitted for r in result.intervals)
            for result in sweep.results
        }
        assert len(submitted) > 1

    def test_stats_over_summary_metric(self, sweep):
        stats = sweep.stats("total_committed")
        assert stats.samples == 3
        assert stats.minimum <= stats.mean <= stats.maximum

    def test_completion_fraction(self, sweep):
        fraction = sweep.completion_fraction()
        assert 0.0 <= fraction <= 1.0

    def test_empty_seed_list_rejected(self):
        with pytest.raises(ValueError):
            sweep_seeds(tiny(), seeds=())

    def test_progress_callback(self):
        seen = []
        sweep_seeds(
            tiny(measure_intervals=3), seeds=(7,), progress=seen.append
        )
        assert seen == [7]


class TestFormatting:
    def test_comparison_table(self):
        sweeps = {
            "ApplyAll": sweep_seeds(
                tiny(scheduler="ApplyAll", measure_intervals=4),
                seeds=(1, 2),
            ),
            "Hybrid": sweep_seeds(
                tiny(scheduler="Hybrid", measure_intervals=4), seeds=(1, 2)
            ),
        }
        text = format_sweep_comparison(sweeps)
        assert "ApplyAll" in text and "Hybrid" in text
        assert "±" in text
        assert "completion fraction" in text
