"""Tests for the benchmark schema/regression guard used by perf-smoke CI."""

import json
import pathlib
import sys

_BENCHMARKS = pathlib.Path(__file__).resolve().parents[2] / "benchmarks"
sys.path.insert(0, str(_BENCHMARKS))

from bench_guard import (  # noqa: E402
    PROVENANCE_FIELDS,
    SCHEMAS,
    compare,
    kind_for_path,
    main,
    validate_schema,
)


def _payload(**overrides):
    base = {
        "recorded_at": "2026-08-08T00:00:00",
        "python": "3.11.7",
        "cpu_count": 4,
        "parallel_jobs": 4,
        "kernel_events_per_s": 2_000_000,
        "kernel_mixed_events_per_s": 900_000,
        "kernel_run_intervals_events_per_s": 2_500_000,
        "standard_cell_wall_clock_s": 3.0,
        "figure4_scale_cells": 15,
        "serial_wall_clock_s": 20.0,
        "parallel_wall_clock_s": 6.0,
        "parallel_speedup": 3.1,
        "parallel_skipped_reason": None,
        "speedup_by_jobs": {"1": 1.0, "2": 1.8, "4": 3.1},
        "cache_cold_wall_clock_s": 20.0,
        "cache_warm_wall_clock_s": 0.05,
        "cache_warm_executed": 0,
        "cache_warm_hits": 15,
    }
    base.update(overrides)
    return base


class TestSchema:
    def test_committed_baseline_passes(self):
        committed = json.loads(
            (_BENCHMARKS.parent / "BENCH_engine.json").read_text()
        )
        assert validate_schema(committed) == []

    def test_valid_payload_passes(self):
        assert validate_schema(_payload()) == []

    def test_missing_field_reported(self):
        payload = _payload()
        del payload["kernel_events_per_s"]
        assert any("kernel_events_per_s" in p for p in validate_schema(payload))

    def test_wrong_type_reported(self):
        payload = _payload(cpu_count="four")
        assert any("cpu_count" in p for p in validate_schema(payload))

    def test_single_core_speedup_must_be_null(self):
        """The provenance rule: a 1-core box cannot report a speedup."""
        payload = _payload(
            cpu_count=1,
            parallel_speedup=0.8,  # the pre-rework file did exactly this
        )
        assert any("cpu_count < 2" in p for p in validate_schema(payload))

    def test_null_speedup_requires_a_reason(self):
        payload = _payload(
            parallel_speedup=None,
            speedup_by_jobs=None,
            parallel_wall_clock_s=None,
            parallel_skipped_reason=None,
        )
        assert validate_schema(payload) != []
        payload["parallel_skipped_reason"] = "cpu_count=1 < 2"
        payload["cpu_count"] = 1
        assert validate_schema(payload) == []

    def test_non_object_rejected(self):
        assert validate_schema([1, 2, 3]) != []


def _routing_payload(**overrides):
    base = {
        "recorded_at": "2026-08-08T00:00:00",
        "python": "3.11.7",
        "cpu_count": 4,
        "map_sizes": [1_000, 10_000],
        "publish_batch": 64,
        "route_read_per_s": 4_000_000,
        "route_write_per_s": 3_000_000,
        "pinned_epoch_read_per_s": 6_000_000,
        "epoch_publish_ms_by_map_size": {"1000": 0.1},
        "partition_sizes_per_s_by_map_size": {"1000": 900.0},
    }
    base.update(overrides)
    return base


def _scale_payload(**overrides):
    base = {
        "recorded_at": "2026-08-08T00:00:00",
        "python": "3.11.7",
        "cpu_count": 1,
        "tuple_count": 1_000_000,
        "node_counts": [100, 250],
        "rss_unit": "KB",
        "build_wall_clock_s_by_nodes": {"100": 2.7, "250": 2.8},
        "peak_rss_by_nodes": {"100": 181_948, "250": 192_340},
        "route_read_per_s": 1_500_000,
        "pinned_epoch_read_per_s": 1_300_000,
        "epoch_publish_ms": 0.3,
        "compact_bytes_per_tuple": 146.2,
        "standard_bytes_per_tuple": 180.4,
        "dense_map_bytes_per_key": 4.0,
        "standard_map_bytes_per_key": 148.4,
        "stack_bytes_ratio": 0.46,
        "e2e_node_count": 100,
        "e2e_tuple_count": 500_000,
        "e2e_scheduler": "Hybrid",
        "e2e_interval_s": 5.0,
        "e2e_measure_intervals": 3,
        "e2e_capacity_units_per_s": 8.0,
        "e2e_throughput_txn_per_min": [1000.0, 1100.0, 1050.0],
        "e2e_committed_total": 150,
        "e2e_wall_clock_s": 120.0,
    }
    base.update(overrides)
    return base


class TestSchemaKinds:
    def test_kind_inferred_from_filename(self):
        assert kind_for_path("BENCH_engine.json") == "engine"
        assert kind_for_path("/ci/BENCH_routing.json") == "routing"
        assert kind_for_path("BENCH_scale.json") == "scale"
        assert kind_for_path("BENCH_future_thing.json") == "generic"
        assert kind_for_path("results.json") == "generic"

    def test_every_schema_requires_provenance(self):
        for kind, fields in SCHEMAS.items():
            assert set(PROVENANCE_FIELDS) <= set(fields), kind

    def test_committed_routing_baseline_passes(self):
        committed = json.loads(
            (_BENCHMARKS.parent / "BENCH_routing.json").read_text()
        )
        assert validate_schema(committed, "routing") == []

    def test_routing_payload_checked_against_routing_schema(self):
        assert validate_schema(_routing_payload(), "routing") == []
        payload = _routing_payload()
        del payload["route_read_per_s"]
        assert any(
            "route_read_per_s" in p for p in validate_schema(payload, "routing")
        )

    def test_missing_provenance_fails_every_kind(self):
        for kind, payload in (
            ("engine", _payload()),
            ("routing", _routing_payload()),
            ("generic", {"recorded_at": "x", "python": "3.11.7"}),
        ):
            payload.pop("cpu_count", None)
            assert any(
                "cpu_count" in p for p in validate_schema(payload, kind)
            ), kind

    def test_committed_scale_baseline_passes(self):
        committed = json.loads(
            (_BENCHMARKS.parent / "BENCH_scale.json").read_text()
        )
        assert validate_schema(committed, "scale") == []

    def test_scale_schema_requires_e2e_section(self):
        """A scale file without the end-to-end run is rejected: the
        dataset/routing numbers alone do not prove the simulation runs
        at cluster scale."""
        assert validate_schema(_scale_payload(), "scale") == []
        payload = _scale_payload()
        del payload["e2e_throughput_txn_per_min"]
        assert any(
            "e2e_throughput_txn_per_min" in p
            for p in validate_schema(payload, "scale")
        )

    def test_scale_e2e_series_length_must_match_intervals(self):
        payload = _scale_payload(e2e_measure_intervals=5)
        assert any(
            "e2e_throughput_txn_per_min" in p
            for p in validate_schema(payload, "scale")
        )

    def test_scale_e2e_node_count_floor(self):
        payload = _scale_payload(e2e_node_count=10)
        assert any(
            "e2e_node_count" in p for p in validate_schema(payload, "scale")
        )

    def test_scale_per_node_series_keys_must_match(self):
        payload = _scale_payload(node_counts=[100, 250, 500])
        assert any(
            "build_wall_clock_s_by_nodes" in p
            for p in validate_schema(payload, "scale")
        )

    def test_generic_kind_ignores_extra_metrics(self):
        payload = {
            "recorded_at": "2026-08-08T00:00:00",
            "python": "3.11.7",
            "cpu_count": 2,
            "whatever_per_s": 123,
        }
        assert validate_schema(payload, "generic") == []

    def test_unknown_kind_rejected(self):
        assert validate_schema(_payload(), "bogus") != []

    def test_cli_kind_override(self, tmp_path, capsys):
        path = tmp_path / "BENCH_routing.json"
        path.write_text(json.dumps(_routing_payload()))
        assert main(["check-schema", str(path)]) == 0
        assert "(routing)" in capsys.readouterr().out
        # Forcing the engine schema onto a routing file fails loudly.
        assert main(["check-schema", str(path), "--kind", "engine"]) == 1


class TestCompare:
    def test_identical_passes(self):
        code, _ = compare(_payload(), _payload())
        assert code == 0

    def test_within_threshold_passes(self):
        fresh = _payload(kernel_events_per_s=1_700_000)  # -15%
        code, _ = compare(_payload(), fresh)
        assert code == 0

    def test_regression_beyond_threshold_fails(self):
        fresh = _payload(kernel_events_per_s=1_500_000)  # -25%
        code, messages = compare(_payload(), fresh)
        assert code == 1
        assert any("REGRESSION" in m for m in messages)

    def test_any_kernel_metric_can_trip_the_gate(self):
        fresh = _payload(kernel_run_intervals_events_per_s=1_000_000)  # -60%
        assert compare(_payload(), fresh)[0] == 1

    def test_different_cpu_count_skips(self):
        code, messages = compare(_payload(), _payload(cpu_count=1,
                                                      parallel_speedup=None,
                                                      speedup_by_jobs=None,
                                                      parallel_wall_clock_s=None,
                                                      parallel_skipped_reason="x"))
        assert code == 0
        assert any("skip" in m for m in messages)

    def test_different_python_minor_skips(self):
        code, messages = compare(
            _payload(), _payload(python="3.12.1", kernel_events_per_s=1)
        )
        assert code == 0
        assert any("skip" in m for m in messages)

    def test_patch_version_difference_still_compares(self):
        fresh = _payload(python="3.11.9", kernel_events_per_s=1_000_000)
        assert compare(_payload(), fresh)[0] == 1


class TestCli:
    def test_check_schema_ok(self, tmp_path, capsys):
        path = tmp_path / "bench.json"
        path.write_text(json.dumps(_payload()))
        assert main(["check-schema", str(path)]) == 0
        assert "schema OK" in capsys.readouterr().out

    def test_check_schema_failure(self, tmp_path, capsys):
        path = tmp_path / "bench.json"
        path.write_text(json.dumps(_payload(cpu_count=None)))
        assert main(["check-schema", str(path)]) == 1
        assert "cpu_count" in capsys.readouterr().err

    def test_compare_cli_detects_regression(self, tmp_path):
        baseline = tmp_path / "baseline.json"
        fresh = tmp_path / "fresh.json"
        baseline.write_text(json.dumps(_payload()))
        fresh.write_text(json.dumps(_payload(kernel_events_per_s=1_000_000)))
        assert main(["compare", str(baseline), str(fresh)]) == 1
        # A looser threshold lets the same pair pass.
        assert main(
            ["compare", str(baseline), str(fresh), "--threshold", "0.6"]
        ) == 0

    def test_compare_cli_rejects_malformed_baseline(self, tmp_path):
        baseline = tmp_path / "baseline.json"
        fresh = tmp_path / "fresh.json"
        baseline.write_text(json.dumps({"not": "a benchmark"}))
        fresh.write_text(json.dumps(_payload()))
        assert main(["compare", str(baseline), str(fresh)]) == 1
