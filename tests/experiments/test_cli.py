"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.experiments import CACHE_DIR_ENV


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    """Keep CLI runs (which cache by default) out of the working tree."""
    monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "cache"))


class TestParser:
    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.scheduler == "Hybrid"
        assert args.distribution == "zipf"
        assert args.load == "high"
        assert args.alpha == 1.0

    def test_run_overrides(self):
        args = build_parser().parse_args(
            ["run", "--scheduler", "ApplyAll", "--load", "low",
             "--alpha", "0.6", "--intervals", "7"]
        )
        assert args.scheduler == "ApplyAll"
        assert args.load == "low"
        assert args.alpha == 0.6
        assert args.intervals == 7

    def test_unknown_scheduler_rejected(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--scheduler", "Magic"])

    def test_figure_requires_valid_number(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "9"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_table1_prints_setpoints(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "1.25" in out and "Hybrid" in out

    def test_run_small_cell(self, capsys):
        code = main(
            ["run", "--scheduler", "ApplyAll", "--intervals", "4",
             "--warmup", "1", "--load", "low"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "RepRate" in out
        assert "mean_failure_rate" in out


class TestFaultScheduleFlag:
    def test_parsed_into_config(self):
        from repro.cli import _cell_config

        args = build_parser().parse_args(
            ["run", "--fault-schedule", "30:crash:2,60:restart:2"]
        )
        config = _cell_config(args)
        assert config.faults is not None
        assert config.faults.enabled
        assert [e.action for e in config.faults.events] == [
            "crash", "restart"
        ]

    def test_absent_flag_means_no_faults(self):
        from repro.cli import _cell_config

        config = _cell_config(build_parser().parse_args(["run"]))
        assert config.faults is None

    def test_malformed_schedule_raises(self):
        from repro.cli import _cell_config
        from repro.errors import ConfigError

        args = build_parser().parse_args(
            ["run", "--fault-schedule", "30:explode:2"]
        )
        with pytest.raises(ConfigError):
            _cell_config(args)

    def test_run_with_fault_schedule(self, capsys):
        code = main(
            ["run", "--scheduler", "Hybrid", "--intervals", "4",
             "--warmup", "1", "--load", "low",
             "--fault-schedule", "30:crash:2,60:restart:2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "total_retries" in out
        assert "total_degraded_s" in out


class TestEngineFlags:
    def test_jobs_and_cache_flags_parse(self):
        args = build_parser().parse_args(
            ["figure", "4", "--jobs", "4", "--no-cache",
             "--cache-dir", "/tmp/somewhere"]
        )
        assert args.jobs == 4
        assert args.no_cache is True
        assert args.cache_dir == "/tmp/somewhere"

    def test_engine_flags_on_every_cell_command(self):
        for argv in (
            ["run", "--jobs", "2"],
            ["compare", "--jobs", "2"],
            ["figure", "3", "--jobs", "2"],
            ["sweep", "--jobs", "2"],
        ):
            assert build_parser().parse_args(argv).jobs == 2

    def test_second_run_served_from_cache(self, capsys):
        argv = ["run", "--scheduler", "ApplyAll", "--intervals", "3",
                "--warmup", "1", "--load", "low"]
        assert main(argv) == 0
        first = capsys.readouterr()
        assert "1 executed" in first.err
        assert main(argv) == 0
        second = capsys.readouterr()
        assert "1 cached, 0 executed" in second.err
        assert "1 hit(s)" in second.err
        # Cached and fresh runs print identical results.
        assert first.out == second.out

    def test_no_cache_always_executes(self, capsys):
        argv = ["run", "--scheduler", "ApplyAll", "--intervals", "3",
                "--warmup", "1", "--load", "low", "--no-cache"]
        for _ in range(2):
            assert main(argv) == 0
            err = capsys.readouterr().err
            assert "1 executed" in err
            assert "cache disabled" in err

    def test_verbose_breaks_cache_down_by_layer(self, capsys):
        argv = ["run", "--scheduler", "ApplyAll", "--intervals", "3",
                "--warmup", "1", "--load", "low", "--verbose"]
        assert main(argv) == 0
        first = capsys.readouterr()
        # Cold run: nothing cached, one miss, layer line still printed.
        assert "cache layers:" in first.err
        assert "1 miss(es)" in first.err
        assert main(argv) == 0
        second = capsys.readouterr()
        # Warm run in a fresh process-level cache object: served from
        # disk (the in-memory LRU is per-ResultCache instance).
        assert "1 disk hit(s)" in second.err

    def test_without_verbose_no_layer_breakdown(self, capsys):
        argv = ["run", "--scheduler", "ApplyAll", "--intervals", "3",
                "--warmup", "1", "--load", "low"]
        assert main(argv) == 0
        assert "cache layers:" not in capsys.readouterr().err


class TestSweepCommand:
    def test_sweep_parses_seeds(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["sweep", "--seeds", "3", "7", "--intervals", "4"]
        )
        assert args.seeds == [3, 7]

    def test_sweep_runs_and_aggregates(self, capsys):
        code = main(
            ["sweep", "--scheduler", "ApplyAll", "--load", "low",
             "--intervals", "3", "--warmup", "1", "--seeds", "1", "2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "±" in out
        assert "completion fraction" in out
