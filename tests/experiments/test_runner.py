"""Tests for the experiment runner and scheduler factory."""

import pytest

from repro.core import (
    AfterAllScheduler,
    ApplyAllScheduler,
    FeedbackScheduler,
    HybridScheduler,
    PiggybackScheduler,
)
from repro.experiments import (
    bench_scale,
    build_system,
    make_scheduler,
    run_experiment,
    setpoint_for,
    start_repartitioning,
)
from repro.experiments.config import SchedulerConfig


def tiny(scheduler="Hybrid", **kwargs):
    """A very small, fast experiment cell."""
    config = bench_scale(
        scheduler=scheduler,
        measure_intervals=kwargs.pop("measure_intervals", 6),
        warmup_intervals=kwargs.pop("warmup_intervals", 2),
        **kwargs,
    )
    from dataclasses import replace

    from repro.cluster import ClusterConfig
    from repro.workload import WorkloadConfig

    return replace(
        config,
        cluster=ClusterConfig(node_count=3, capacity_units_per_s=4.0),
        workload=WorkloadConfig(
            tuple_count=200,
            distinct_types=40,
            distribution=config.workload.distribution,
        ),
    )


class TestSchedulerFactory:
    @pytest.mark.parametrize(
        "name, cls",
        [
            ("ApplyAll", ApplyAllScheduler),
            ("AfterAll", AfterAllScheduler),
            ("Feedback", FeedbackScheduler),
            ("Piggyback", PiggybackScheduler),
            ("Hybrid", HybridScheduler),
        ],
    )
    def test_factory_builds_each_strategy(self, name, cls):
        scheduler = make_scheduler(
            bench_scale(scheduler=name), normal_cost_hint=10.0
        )
        assert isinstance(scheduler, cls)

    def test_feedback_setpoint_from_table1(self):
        config = bench_scale("Feedback", "uniform", "high", 1.0)
        scheduler = make_scheduler(config, normal_cost_hint=10.0)
        assert scheduler.pid.setpoint == setpoint_for(
            "Feedback", "uniform", "high", 1.0
        )

    def test_explicit_setpoint_overrides_table(self):
        config = bench_scale("Feedback").with_overrides(
            scheduling=SchedulerConfig(setpoint=1.42)
        )
        scheduler = make_scheduler(config, normal_cost_hint=10.0)
        assert scheduler.pid.setpoint == 1.42


class TestBuildSystem:
    def test_system_wired_consistently(self):
        system = build_system(tiny())
        assert system.cluster.config.node_count == 3
        assert len(system.router.partition_map) == 200
        assert system.arrival_rate_txn_per_s > 0
        # All stores loaded per the map.
        total = sum(len(n.store) for n in system.cluster.nodes)
        assert total == 200

    def test_alpha_controls_distributed_fraction(self):
        full = build_system(tiny(alpha=1.0))
        partial = build_system(tiny(alpha=0.2))
        assert len(full.distributed_type_ids) == 40
        assert len(partial.distributed_type_ids) == 8

    def test_high_load_rate_exceeds_low(self):
        high = build_system(tiny(load="high"))
        low = build_system(tiny(load="low"))
        assert high.arrival_rate_txn_per_s > low.arrival_rate_txn_per_s

    def test_lower_alpha_means_higher_rate(self):
        """Cheaper average cost => more transactions (paper §4.2)."""
        full = build_system(tiny(alpha=1.0))
        partial = build_system(tiny(alpha=0.2))
        assert partial.arrival_rate_txn_per_s > full.arrival_rate_txn_per_s


class TestStartRepartitioning:
    def test_session_covers_distributed_types(self):
        system = build_system(tiny(alpha=0.5))
        session = start_repartitioning(system)
        benefiting = {t.type_id for t in session.rep_txns if t.type_id >= 0}
        assert benefiting == system.distributed_type_ids


class TestRunExperiment:
    def test_produces_expected_interval_count(self):
        result = run_experiment(tiny())
        assert len(result.intervals) == 8  # 2 warmup + 6 measured
        assert len(result.measured) == 6

    def test_deterministic_across_runs(self):
        first = run_experiment(tiny(seed=3))
        second = run_experiment(tiny(seed=3))
        assert first.summary == second.summary
        for a, b in zip(first.intervals, second.intervals):
            assert a.submitted == b.submitted
            assert a.committed == b.committed
            assert a.aborted == b.aborted

    def test_seed_changes_outcome(self):
        first = run_experiment(tiny(seed=1))
        second = run_experiment(tiny(seed=2))
        assert first.summary != second.summary

    def test_summary_populated(self):
        result = run_experiment(tiny())
        assert result.summary["total_committed"] > 0
        assert result.rep_ops_total > 0

    def test_applyall_completes_repartitioning(self):
        result = run_experiment(
            tiny(scheduler="ApplyAll", measure_intervals=15)
        )
        assert result.completion_interval is not None
        assert result.repartition_completed_at is not None
