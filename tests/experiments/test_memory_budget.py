"""Peak-memory budgets for the cluster-scale storage stack.

Two regression gates:

* a **process-level budget** for the 1M-tuple ``production_scale``
  dataset build, measured by ``ru_maxrss`` in a fresh interpreter so
  the number is the stack's, not the test runner's.  The compact stack
  builds this in ~170 MB; the standard store + dict-backed map needs
  roughly twice that, so the 250 MB ceiling catches any slide back;
* a **tracemalloc stack-ratio** check at 100k tuples asserting the
  lean stack (compact store + dense map) stays under 0.6x the standard
  stack's heap bytes — the same invariant ``BENCH_scale.json`` records
  at full scale, kept in tier-1 at a size that runs in seconds.
"""

import subprocess
import sys
import tracemalloc
from pathlib import Path

from repro.routing import DensePartitionMap, PartitionMap
from repro.storage import CompactPartitionStore, PartitionStore, Record

#: KB ceiling for building the 1M-tuple preset in a fresh process.
PEAK_RSS_BUDGET_KB = 250_000

_BUILD_SNIPPET = """
import resource
from repro.experiments import (
    make_partition_map, production_scale, resolve_store_factory,
)
from repro.sim.random import RandomStreams
from repro.storage import Record
from repro.workload.dataset import (
    choose_distributed_type_ids, initial_placement, place_unprofiled_keys,
)
from repro.workload.generator import iter_profile_types

config = production_scale(node_count=100, tuple_count=1_000_000)
streams = RandomStreams(config.seed)
partitions = list(range(config.cluster.node_count))
distributed = choose_distributed_type_ids(
    config.workload.distinct_types, config.alpha, streams.stream("placement")
)
pmap = initial_placement(
    iter_profile_types(config.workload), partitions, distributed,
    pmap=make_partition_map(config),
)
place_unprofiled_keys(pmap, config.workload.tuple_count, partitions)
factory = resolve_store_factory(config)
stores = [factory(p) for p in partitions]
rng = streams.stream("values")
for key in pmap.keys():
    for pid in pmap.replicas_of(key):
        stores[pid].insert(Record(key=key, value=rng.randrange(1_000_000)))
assert sum(len(s) for s in stores) == config.workload.tuple_count
print(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)
"""


def test_million_tuple_build_stays_under_rss_budget():
    src = Path(__file__).resolve().parents[2] / "src"
    result = subprocess.run(
        [sys.executable, "-c", _BUILD_SNIPPET],
        env={"PYTHONPATH": str(src), "PATH": "/usr/bin:/bin"},
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert result.returncode == 0, result.stderr
    peak_kb = int(result.stdout.strip().splitlines()[-1])
    assert peak_kb < PEAK_RSS_BUDGET_KB, (
        f"1M-tuple production_scale build peaked at {peak_kb} KB "
        f"(budget {PEAK_RSS_BUDGET_KB} KB); the memory-lean stack "
        "regressed"
    )


def _traced_stack_bytes(store_factory, map_factory, n):
    tracemalloc.start()
    try:
        before, _ = tracemalloc.get_traced_memory()
        pmap = map_factory()
        store = store_factory(0)
        for key in range(n):
            pmap.assign(key, key % 8)
            store.insert(Record(key=key, value=key))
        after, _ = tracemalloc.get_traced_memory()
        assert len(store) == len(pmap) == n
        return after - before
    finally:
        tracemalloc.stop()


def test_lean_stack_under_sixty_percent_of_standard():
    n = 100_000
    lean = _traced_stack_bytes(
        CompactPartitionStore, lambda: DensePartitionMap(n), n
    )
    standard = _traced_stack_bytes(PartitionStore, PartitionMap, n)
    ratio = lean / standard
    assert ratio < 0.6, (
        f"lean stack is {ratio:.2f}x the standard stack "
        f"({lean} vs {standard} bytes for {n} tuples)"
    )
