"""Tests for the figure-regeneration harness (small custom cells)."""

import pytest

from repro.experiments.figures import (
    GRID_ALPHAS,
    GRID_METRICS,
    FigureResult,
    _run_cells,
)

from .test_runner import tiny


def tiny_factory(scheduler, distribution, load, alpha, seed):
    return tiny(
        scheduler=scheduler,
        distribution=distribution,
        load=load,
        alpha=alpha,
        seed=seed,
        measure_intervals=4,
        warmup_intervals=1,
    )


@pytest.fixture(scope="module")
def figure():
    return _run_cells(
        "Test Figure",
        "zipf",
        "low",
        alphas=(1.0, 0.6),
        schedulers=("ApplyAll", "Hybrid"),
        config_factory=tiny_factory,
    )


class TestRunCells:
    def test_one_run_per_cell(self, figure):
        assert set(figure.runs) == {
            ("ApplyAll", 1.0),
            ("Hybrid", 1.0),
            ("ApplyAll", 0.6),
            ("Hybrid", 0.6),
        }

    def test_records_are_measured_intervals(self, figure):
        records = figure.records("ApplyAll", 1.0)
        assert len(records) == 4  # measure_intervals

    def test_panel_selects_one_alpha(self, figure):
        panel = figure.panel("rep_rate", 0.6)
        assert set(panel) == {"ApplyAll", "Hybrid"}

    def test_progress_callback_invoked(self):
        seen = []
        _run_cells(
            "F",
            "zipf",
            "low",
            alphas=(1.0,),
            schedulers=("ApplyAll",),
            config_factory=tiny_factory,
            progress=seen.append,
        )
        assert seen == ["F: ApplyAll alpha=1.0"]


class TestRendering:
    def test_render_covers_grid(self, figure):
        text = figure.render(every=1)
        for _metric, label in GRID_METRICS:
            assert label in text
        assert "alpha=100%" in text and "alpha=60%" in text
        assert "ApplyAll" in text and "Hybrid" in text

    def test_render_includes_sparklines(self, figure):
        text = figure.render(every=1)
        assert any(block in text for block in "▁▂▃▄▅▆▇█")

    def test_grid_constants_match_paper(self):
        assert GRID_ALPHAS == (1.0, 0.6, 0.2)
        assert [m for m, _l in GRID_METRICS] == [
            "rep_rate", "throughput_txn_per_min", "mean_latency_ms",
        ]

    def test_empty_figure_renders(self):
        figure = FigureResult(figure="Empty")
        assert figure.render() == ""
