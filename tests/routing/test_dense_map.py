"""DensePartitionMap: behavioural equivalence with PartitionMap.

The dense map is a drop-in replacement selected by the scale tier, so it
must match ``PartitionMap`` through the whole public interface — same
results, same error messages, same check order — for in-range integer
keys, out-of-range keys, and every spill/collapse transition between
the flat single-replica column and the multi-replica overflow dict.
Only ``keys()`` ordering is allowed to differ (dense ascending instead
of insertion order), which the harness normalises by sorting.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import RoutingError
from repro.routing import DensePartitionMap, PartitionMap

CAPACITY = 8
#: In-range dense keys, out-of-range ints, and negatives all in one pool.
KEYS = st.integers(min_value=-2, max_value=CAPACITY + 3)
PIDS = st.integers(min_value=0, max_value=3)

OPS = st.lists(
    st.one_of(
        st.tuples(st.just("assign"), KEYS, PIDS, PIDS),
        st.tuples(st.just("add_replica"), KEYS, PIDS, PIDS),
        st.tuples(st.just("remove_replica"), KEYS, PIDS, PIDS),
        st.tuples(st.just("move"), KEYS, PIDS, PIDS),
        st.tuples(st.just("set_replicas"), KEYS, PIDS, PIDS),
        st.tuples(st.just("unmap"), KEYS, PIDS, PIDS),
        st.tuples(st.just("lookup"), KEYS, PIDS, PIDS),
    ),
    max_size=80,
)


def _apply(pmap, op, key, pid, pid2):
    """Run one operation; returns (result, error message or None)."""
    try:
        if op == "assign":
            pmap.assign(key, pid)
            return None, None
        if op == "add_replica":
            pmap.add_replica(key, pid)
            return None, None
        if op == "remove_replica":
            pmap.remove_replica(key, pid)
            return None, None
        if op == "move":
            pmap.move(key, pid, pid2)
            return None, None
        if op == "set_replicas":
            replicas = [pid] if pid == pid2 else [pid, pid2]
            pmap.set_replicas(key, replicas)
            return None, None
        if op == "unmap":
            pmap.set_replicas(key, None)
            return None, None
        if op == "lookup":
            if key not in pmap:
                return (False, len(pmap)), None
            return (
                pmap.replicas_of(key),
                pmap.primary_of(key),
                pmap.replica_count(key),
                len(pmap),
            ), None
        raise AssertionError(op)
    except RoutingError as exc:
        return None, str(exc)


@settings(max_examples=250, deadline=None)
@given(OPS)
def test_equivalent_to_partition_map(ops):
    """Same results, errors, sizes, and contents for any interleaving."""
    standard = PartitionMap()
    dense = DensePartitionMap(CAPACITY)
    for op, key, pid, pid2 in ops:
        expected = _apply(standard, op, key, pid, pid2)
        actual = _apply(dense, op, key, pid, pid2)
        assert actual == expected, (op, key, pid, pid2)
        assert dense.partition_sizes() == standard.partition_sizes()
        assert dense.version == standard.version
    assert sorted(dense.keys()) == sorted(standard.keys())
    for key in standard.keys():
        assert dense.replicas_of(key) == standard.replicas_of(key)
    # Copies are equivalent too — and detached from their originals.
    dense_copy, standard_copy = dense.copy(), standard.copy()
    assert isinstance(dense_copy, DensePartitionMap)
    assert sorted(dense_copy.keys()) == sorted(standard_copy.keys())
    assert dense_copy.partition_sizes() == standard_copy.partition_sizes()
    assert dense_copy.version == standard.version


def test_capacity_must_be_positive():
    with pytest.raises(RoutingError, match="capacity"):
        DensePartitionMap(0)


def test_negative_partition_id_rejected():
    """Negative pids would collide with the array sentinels, so every
    mutation path rejects them up front."""
    pmap = DensePartitionMap(CAPACITY)
    with pytest.raises(RoutingError, match="negative"):
        pmap.assign(1, -1)
    pmap.assign(1, 0)
    with pytest.raises(RoutingError, match="negative"):
        pmap.add_replica(1, -2)
    with pytest.raises(RoutingError, match="negative"):
        pmap.move(1, 0, -1)
    with pytest.raises(RoutingError, match="negative"):
        pmap.set_replicas(2, [-3])


def test_spill_and_collapse():
    """Adding a second replica spills a key to the overflow dict;
    dropping back to one collapses it into the flat column again."""
    pmap = DensePartitionMap(CAPACITY)
    pmap.assign(5, 0)
    assert 5 not in pmap._multi
    pmap.add_replica(5, 2)
    assert pmap._multi[5] == [0, 2]
    assert pmap.replicas_of(5) == (0, 2)
    pmap.remove_replica(5, 0)
    assert 5 not in pmap._multi
    assert pmap.replicas_of(5) == (2,)
    assert pmap.primary_of(5) == 2
    assert len(pmap) == 1


def test_out_of_range_keys_fall_back():
    """Keys outside [0, capacity) — including non-dense negatives and
    overshoots — take the dict path with identical behaviour."""
    pmap = DensePartitionMap(CAPACITY)
    for key in (-1, CAPACITY, CAPACITY + 100):
        pmap.assign(key, 1)
        pmap.add_replica(key, 3)
        assert pmap.replicas_of(key) == (1, 3)
    assert len(pmap) == 3
    assert pmap.partition_sizes() == {1: 3, 3: 3}


def test_keys_order_dense_ascending_then_overflow():
    pmap = DensePartitionMap(CAPACITY)
    pmap.assign(CAPACITY + 1, 0)  # overflow, inserted first
    pmap.assign(6, 0)
    pmap.assign(2, 0)
    assert list(pmap.keys()) == [2, 6, CAPACITY + 1]


def test_set_replicas_empty_list_and_multi():
    pmap = DensePartitionMap(CAPACITY)
    pmap.set_replicas(4, [1, 2, 3])
    assert pmap.replicas_of(4) == (1, 2, 3)
    pmap.set_replicas(4, [2])
    assert 4 not in pmap._multi
    assert pmap.replicas_of(4) == (2,)
    pmap.set_replicas(4, [])
    assert 4 in pmap
    assert pmap.replicas_of(4) == ()
    pmap.set_replicas(4, None)
    assert 4 not in pmap
    assert len(pmap) == 0


def test_copy_is_detached():
    pmap = DensePartitionMap(CAPACITY)
    pmap.assign(1, 0)
    pmap.add_replica(1, 2)
    clone = pmap.copy()
    clone.move(1, 0, 3)
    assert pmap.replicas_of(1) == (0, 2)
    assert clone.replicas_of(1) == (3, 2)
    pmap.assign(2, 1)
    assert 2 not in clone
