"""Tests for the query router."""

import random

import pytest

from repro.errors import RoutingError
from repro.routing import PartitionMap, Query, QueryRouter
from repro.types import AccessMode


@pytest.fixture
def pmap():
    mapping = PartitionMap()
    for key in range(10):
        mapping.assign(key, key % 3)
    return mapping


class TestReadRouting:
    def test_primary_policy_hits_primary(self, pmap):
        router = QueryRouter(pmap)
        assert router.route_read(4) == pmap.primary_of(4)

    def test_random_policy_requires_rng(self, pmap):
        with pytest.raises(RoutingError):
            QueryRouter(pmap, read_policy="random")

    def test_random_policy_spreads_over_replicas(self, pmap):
        pmap.add_replica(0, 1)
        pmap.add_replica(0, 2)
        router = QueryRouter(
            pmap, read_policy="random", rng=random.Random(0)
        )
        seen = {router.route_read(0) for _ in range(100)}
        assert seen == {0, 1, 2}

    def test_unknown_policy_rejected(self, pmap):
        with pytest.raises(RoutingError):
            QueryRouter(pmap, read_policy="nearest")


class TestWriteRouting:
    def test_write_goes_to_all_replicas(self, pmap):
        pmap.add_replica(5, 0)
        router = QueryRouter(pmap)
        assert set(router.route_write(5)) == {pmap.primary_of(5), 0}

    def test_counters(self, pmap):
        router = QueryRouter(pmap)
        router.route_read(1)
        router.route_write(2)
        router.route_write(3)
        assert router.reads_routed == 1
        assert router.writes_routed == 2


class TestTransactionRouting:
    def test_partitions_for_collects_all(self, pmap):
        router = QueryRouter(pmap)
        queries = [
            Query("t", 0, AccessMode.READ),   # partition 0
            Query("t", 1, AccessMode.WRITE),  # partition 1
            Query("t", 3, AccessMode.READ),   # partition 0
        ]
        assert router.partitions_for(queries) == frozenset((0, 1))

    def test_is_distributed(self, pmap):
        router = QueryRouter(pmap)
        local = [Query("t", 0, AccessMode.READ),
                 Query("t", 3, AccessMode.READ)]
        spread = [Query("t", 0, AccessMode.READ),
                  Query("t", 1, AccessMode.READ)]
        assert not router.is_distributed(local)
        assert router.is_distributed(spread)

    def test_route_query_read_vs_write(self, pmap):
        router = QueryRouter(pmap)
        read = router.route_query(Query("t", 6, AccessMode.READ))
        write = router.route_query(Query("t", 6, AccessMode.WRITE))
        assert read == (pmap.primary_of(6),)
        assert write == pmap.replicas_of(6)
