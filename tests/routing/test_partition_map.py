"""Tests for the partition lookup table."""

import pytest

from repro.errors import RoutingError
from repro.routing import PartitionMap


@pytest.fixture
def pmap():
    mapping = PartitionMap()
    for key in range(5):
        mapping.assign(key, key % 2)
    return mapping


class TestLookup:
    def test_assign_and_primary(self, pmap):
        assert pmap.primary_of(0) == 0
        assert pmap.primary_of(1) == 1

    def test_replicas_start_single(self, pmap):
        assert pmap.replicas_of(0) == (0,)
        assert pmap.replica_count(0) == 1

    def test_unknown_key_raises(self, pmap):
        with pytest.raises(RoutingError, match="not mapped"):
            pmap.primary_of(999)

    def test_contains_and_len(self, pmap):
        assert 0 in pmap
        assert 999 not in pmap
        assert len(pmap) == 5

    def test_partition_sizes(self, pmap):
        assert pmap.partition_sizes() == {0: 3, 1: 2}


class TestMutation:
    def test_double_assign_rejected(self, pmap):
        with pytest.raises(RoutingError, match="already mapped"):
            pmap.assign(0, 1)

    def test_add_replica(self, pmap):
        pmap.add_replica(0, 1)
        assert set(pmap.replicas_of(0)) == {0, 1}
        assert pmap.primary_of(0) == 0  # primary unchanged

    def test_duplicate_replica_rejected(self, pmap):
        with pytest.raises(RoutingError, match="already has a replica"):
            pmap.add_replica(0, 0)

    def test_remove_replica(self, pmap):
        pmap.add_replica(0, 1)
        pmap.remove_replica(0, 0)
        assert pmap.replicas_of(0) == (1,)

    def test_remove_last_replica_rejected(self, pmap):
        with pytest.raises(RoutingError, match="last replica"):
            pmap.remove_replica(0, 0)

    def test_remove_absent_replica_rejected(self, pmap):
        with pytest.raises(RoutingError, match="no replica"):
            pmap.remove_replica(0, 3)

    def test_move(self, pmap):
        pmap.move(0, 0, 4)
        assert pmap.primary_of(0) == 4

    def test_move_from_wrong_source_rejected(self, pmap):
        with pytest.raises(RoutingError, match="no replica"):
            pmap.move(0, 3, 4)

    def test_move_to_existing_replica_rejected(self, pmap):
        pmap.add_replica(0, 1)
        with pytest.raises(RoutingError, match="already has a replica"):
            pmap.move(0, 0, 1)

    def test_version_bumps_on_every_mutation(self, pmap):
        version = pmap.version
        pmap.add_replica(0, 1)
        pmap.move(1, 1, 0)
        pmap.remove_replica(0, 1)
        assert pmap.version == version + 3


class TestCopy:
    def test_copy_is_deep(self, pmap):
        clone = pmap.copy()
        pmap.move(0, 0, 4)
        assert clone.primary_of(0) == 0
        assert pmap.primary_of(0) == 4

    def test_copy_preserves_version(self, pmap):
        assert pmap.copy().version == pmap.version
