"""Tests for epoch-versioned partition maps (store, stages, epochs)."""

import pytest

from repro.errors import EpochError, RoutingError
from repro.routing import (
    MapDelta,
    MigrationState,
    PartitionMap,
    PartitionMapStore,
)


def build_store(max_delta_log: int = 1024) -> PartitionMapStore:
    pmap = PartitionMap()
    for key in range(6):
        pmap.assign(key, key % 3)
    return PartitionMapStore(pmap, max_delta_log=max_delta_log)


@pytest.fixture
def store() -> PartitionMapStore:
    return build_store()


class TestPublish:
    def test_publish_bumps_epoch_and_applies(self, store):
        stage = store.begin_stage()
        stage.move(0, 0, 2)
        epoch = store.publish(stage)
        assert epoch.epoch_id == 1
        assert store.epoch_id == 1
        assert store.primary_of(0) == 2
        assert store.publishes == 1

    def test_empty_publish_does_not_bump(self, store):
        stage = store.begin_stage()
        epoch = store.publish(stage)
        assert epoch.epoch_id == 0
        assert store.publishes == 0

    def test_no_op_deltas_elided(self, store):
        stage = store.begin_stage()
        stage.move(0, 0, 2)
        stage.move(0, 2, 0)  # net no change
        epoch = store.publish(stage)
        assert epoch.epoch_id == 0
        assert store.delta_log() == ()

    def test_closed_stage_rejected(self, store):
        stage = store.begin_stage()
        stage.move(0, 0, 2)
        store.publish(stage)
        with pytest.raises(EpochError, match="published"):
            stage.move(1, 1, 2)
        with pytest.raises(EpochError, match="published"):
            store.publish(stage)

    def test_foreign_stage_rejected(self, store):
        other = build_store()
        stage = other.begin_stage()
        with pytest.raises(EpochError, match="different store"):
            store.publish(stage)

    def test_publish_hook_fires(self, store):
        seen = []
        store.on_publish = seen.append
        stage = store.begin_stage()
        stage.move(0, 0, 2)
        store.publish(stage)
        assert [e.epoch_id for e in seen] == [1]

    def test_delta_log_records_canonical_deltas(self, store):
        stage = store.begin_stage()
        stage.move(0, 0, 1)
        stage.add_replica(3, 2)
        store.publish(stage)
        (transition,) = store.delta_log()
        assert transition.epoch_id == 1
        assert transition.deltas == (
            MapDelta(key=0, before=(0,), after=(1,)),
            MapDelta(key=3, before=(0,), after=(0, 2)),
        )


class TestStageOverlay:
    def test_reads_see_staged_values(self, store):
        stage = store.begin_stage()
        stage.move(0, 0, 2)
        assert stage.primary_of(0) == 2
        assert store.primary_of(0) == 0  # live map untouched pre-publish

    def test_sequential_visibility_within_stage(self, store):
        stage = store.begin_stage()
        stage.move(0, 0, 1)
        with pytest.raises(RoutingError, match="no replica"):
            stage.move(0, 0, 2)  # source already moved away
        stage.move(0, 1, 2)
        store.publish(stage)
        assert store.primary_of(0) == 2

    def test_validation_matches_partition_map(self, store):
        stage = store.begin_stage()
        with pytest.raises(RoutingError, match="already mapped"):
            stage.assign(0, 1)
        with pytest.raises(RoutingError, match="already has a replica"):
            stage.add_replica(0, 0)
        with pytest.raises(RoutingError, match="last replica"):
            stage.remove_replica(0, 0)

    def test_discard_is_clean_and_idempotent(self, store):
        stage = store.begin_stage()
        stage.move(0, 0, 2)
        stage.mark_moving(0)
        store.discard(stage)
        store.discard(stage)
        assert store.primary_of(0) == 0
        assert store.epoch_id == 0
        assert store.migration_state(0) is MigrationState.STABLE


class TestEpochSnapshots:
    def test_pinned_epoch_reads_old_placement(self, store):
        pinned = store.pin()
        stage = store.begin_stage()
        stage.move(0, 0, 2)
        store.publish(stage)
        assert pinned.replicas_of(0) == (0,)
        assert store.current_epoch.replicas_of(0) == (2,)
        store.unpin(pinned)

    def test_snapshot_across_multiple_epochs(self, store):
        pinned = store.pin()
        for target in (1, 2):
            stage = store.begin_stage()
            stage.move(3, store.primary_of(3), target)
            store.publish(stage)
        assert pinned.primary_of(3) == 0
        assert store.current_epoch.primary_of(3) == 2

    def test_snapshot_len_keys_and_sizes(self, store):
        pinned = store.pin()
        before_sizes = pinned.partition_sizes()
        stage = store.begin_stage()
        stage.assign(100, 0)
        stage.move(1, 1, 2)
        store.publish(stage)
        assert len(pinned) == 6
        assert 100 not in pinned
        assert sorted(pinned.keys()) == list(range(6))
        assert pinned.partition_sizes() == before_sizes
        assert len(store.current_epoch) == 7
        assert 100 in store.current_epoch

    def test_current_epoch_fast_path(self, store):
        current = store.current_epoch
        assert current.replicas_of(0) == (0,)

    def test_unpin_unknown_epoch_raises(self, store):
        epoch = store.current_epoch
        with pytest.raises(EpochError, match="not pinned"):
            store.unpin(epoch)


class TestTrimming:
    def publish_n(self, store, n, key=0):
        for _ in range(n):
            stage = store.begin_stage()
            primary = store.primary_of(key)
            stage.move(key, primary, (primary + 1) % 3)
            store.publish(stage)

    def test_log_bounded(self):
        store = build_store(max_delta_log=3)
        self.publish_n(store, 10)
        assert len(store.delta_log()) == 3

    def test_expired_epoch_raises(self):
        store = build_store(max_delta_log=2)
        ancient = store.current_epoch  # epoch 0, unpinned
        self.publish_n(store, 5)
        with pytest.raises(EpochError, match="expired"):
            ancient.replicas_of(0)

    def test_pin_blocks_trimming(self):
        store = build_store(max_delta_log=2)
        pinned = store.pin()
        self.publish_n(store, 8)
        assert len(store.delta_log()) == 8  # kept alive by the pin
        assert pinned.replicas_of(0) == (0,)
        store.unpin(pinned)
        assert len(store.delta_log()) == 2  # trimmed on release


class TestMigrationStates:
    def test_moving_while_staged(self, store):
        stage = store.begin_stage(owner=42)
        stage.mark_moving(0)
        assert store.migration_state(0) is MigrationState.MOVING
        assert store.moving_keys() == frozenset({0})

    def test_refcounted_across_stages(self, store):
        first = store.begin_stage()
        second = store.begin_stage()
        first.mark_moving(0)
        second.mark_moving(0)
        store.discard(first)
        assert store.migration_state(0) is MigrationState.MOVING
        store.discard(second)
        assert store.migration_state(0) is MigrationState.STABLE

    def test_moved_tombstone_after_publish(self, store):
        stage = store.begin_stage()
        stage.mark_moving(0)
        stage.move(0, 0, 2)
        store.publish(stage)
        assert store.migration_state(0) is MigrationState.MOVED
        tombstone = store.tombstone_of(0)
        assert (tombstone.source, tombstone.destination) == (0, 2)
        assert tombstone.epoch_id == 1

    def test_replica_changes_leave_no_tombstone(self, store):
        stage = store.begin_stage()
        stage.add_replica(0, 1)
        store.publish(stage)
        assert store.tombstone_of(0) is None
        assert store.migration_state(0) is MigrationState.STABLE

    def test_tombstone_trimmed_with_log(self):
        store = build_store(max_delta_log=1)
        stage = store.begin_stage()
        stage.move(0, 0, 2)
        store.publish(stage)
        assert store.tombstone_of(0) is not None
        stage = store.begin_stage()
        stage.move(1, 1, 2)
        store.publish(stage)
        assert store.tombstone_of(0) is None  # its transition was trimmed
        assert store.tombstone_of(1) is not None
