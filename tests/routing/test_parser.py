"""Tests for the mini-SQL parser."""

import pytest

from repro.routing import (
    Query,
    QueryParseError,
    extract_partition_attribute,
    parse_query,
    parse_transaction,
)
from repro.types import AccessMode


class TestSelect:
    def test_basic_select(self):
        query = parse_query("SELECT value FROM accounts WHERE key = 42")
        assert query.table == "accounts"
        assert query.key == 42
        assert query.mode is AccessMode.READ

    def test_case_insensitive(self):
        query = parse_query("select value from T where KEY=7")
        assert query.key == 7

    def test_trailing_semicolon(self):
        assert parse_query("SELECT value FROM t WHERE key = 1;").key == 1

    def test_negative_key(self):
        assert parse_query("SELECT value FROM t WHERE key = -5").key == -5


class TestUpdate:
    def test_basic_update(self):
        query = parse_query("UPDATE accounts SET value = 9 WHERE key = 3")
        assert query.mode is AccessMode.WRITE
        assert query.value == 9
        assert query.key == 3

    def test_whitespace_flexibility(self):
        query = parse_query("  UPDATE t SET value=1 WHERE key=2  ")
        assert (query.value, query.key) == (1, 2)


class TestErrors:
    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "DROP TABLE accounts",
            "SELECT * FROM t WHERE key = 1",
            "SELECT value FROM t WHERE name = 'bob'",
            "UPDATE t SET other = 1 WHERE key = 2",
            "INSERT INTO t VALUES (1)",
            "SELECT value FROM t",
        ],
    )
    def test_unsupported_statements_rejected(self, bad):
        with pytest.raises(QueryParseError):
            parse_query(bad)


class TestBatch:
    def test_semicolon_separated(self):
        queries = parse_transaction(
            "SELECT value FROM t WHERE key = 1; "
            "UPDATE t SET value = 2 WHERE key = 3"
        )
        assert [q.key for q in queries] == [1, 3]

    def test_newline_separated(self):
        queries = parse_transaction(
            "SELECT value FROM t WHERE key = 1\n"
            "SELECT value FROM t WHERE key = 2\n"
        )
        assert len(queries) == 2

    def test_empty_batch_rejected(self):
        with pytest.raises(QueryParseError, match="no statements"):
            parse_transaction("   \n ; ")


class TestRoundTrip:
    def test_read_query_roundtrips(self):
        query = Query(table="t", key=5, mode=AccessMode.READ)
        assert parse_query(query.to_sql()) == query

    def test_write_query_roundtrips(self):
        query = Query(table="t", key=5, mode=AccessMode.WRITE, value=7)
        assert parse_query(query.to_sql()) == query

    def test_extract_partition_attribute(self):
        assert extract_partition_attribute(
            "UPDATE t SET value = 1 WHERE key = 88"
        ) == 88


class TestQueryModel:
    def test_write_defaults_value_to_zero(self):
        query = Query(table="t", key=1, mode=AccessMode.WRITE)
        assert query.value == 0

    def test_is_write(self):
        assert Query("t", 1, AccessMode.WRITE).is_write
        assert not Query("t", 1, AccessMode.READ).is_write
