"""End-to-end routing over replicated tuples with the random read policy."""

import random

import pytest

from repro.partitioning import CreateReplica
from repro.routing import QueryRouter

from ..txn.conftest import build_stack


@pytest.fixture
def replicated_stack():
    """A stack whose key 0 has replicas on partitions 0 and 1, with a
    router that picks read replicas at random."""
    stack = build_stack()
    stack.run_txn(
        stack.tm.create_repartition(
            [CreateReplica(op_id=0, key=0, source=0, destination=1)]
        )
    )
    random_router = QueryRouter(
        stack.pmap, read_policy="random", rng=random.Random(0)
    )
    stack.executor.router = random_router
    stack.router = random_router
    return stack


class TestRandomReadPolicy:
    def test_reads_succeed_from_any_replica(self, replicated_stack):
        stack = replicated_stack
        txns = [
            stack.tm.create_normal([stack.read(0)]) for _ in range(20)
        ]
        for txn in txns:
            stack.tm.submit(txn)
        stack.env.run(until=stack.env.now + 200)
        assert all(txn.committed for txn in txns)

    def test_reads_actually_spread(self, replicated_stack):
        stack = replicated_stack
        served = {0: 0, 1: 0}
        for node in stack.cluster.nodes:
            node.store  # noqa: B018 - touch to keep refs obvious
        # Route (without executing) many reads and count destinations.
        for _ in range(200):
            pid = stack.router.route_read(0)
            served[pid] += 1
        assert served[0] > 0 and served[1] > 0

    def test_write_updates_both_replicas(self, replicated_stack):
        stack = replicated_stack
        txn = stack.tm.create_normal([stack.write(0, 31337)])
        stack.run_txn(txn)
        assert txn.committed
        for pid in (0, 1):
            node = stack.cluster.node_for_partition(pid)
            assert node.store.read(0) == 31337

    def test_read_after_write_sees_value_on_any_replica(
        self, replicated_stack
    ):
        stack = replicated_stack
        stack.run_txn(stack.tm.create_normal([stack.write(0, 5)]))
        readers = [
            stack.tm.create_normal([stack.read(0)]) for _ in range(10)
        ]
        for txn in readers:
            stack.tm.submit(txn)
        stack.env.run(until=stack.env.now + 200)
        assert all(txn.committed for txn in readers)
        # Replicas stayed consistent (write hit both copies).
        values = {
            stack.cluster.node_for_partition(pid).store.read(0)
            for pid in stack.pmap.replicas_of(0)
        }
        assert values == {5}
