"""Chaos tests for elastic membership: the worst day in production.

The cluster doubles and halves mid-run while nodes crash — including a
node that is mid-drain.  Acceptance: N → 2N then 2N → N completes under
every scheduler, every DRAINING node reaches zero resident tuples
before RETIRED, drain migrations lost to a crash are requeued, the
fault injector's last-live-node guard never counts departing members,
and the whole composition stays bit-for-bit deterministic.
"""

import dataclasses
import random

import pytest

from repro.cluster import Cluster, ClusterConfig, NodeState
from repro.elasticity import parse_elasticity_schedule
from repro.experiments import (
    SCHEDULER_NAMES,
    bench_scale,
    build_system,
    run_cells,
    run_experiment,
    start_repartitioning,
)
from repro.faults import FaultInjector, parse_fault_schedule
from repro.workload import WorkloadConfig

#: Double the cluster (3 → 6) early, then drain the three joiners
#: (2N → N) with time to finish before the 340 s horizon.
ELASTICITY = "40:add:3,200:drain:3,200:drain:4,200:drain:5"


def elastic_chaos_config(scheduler="Hybrid", elasticity=ELASTICITY,
                         faults=None, seed=0, measure_intervals=16):
    config = bench_scale(
        scheduler=scheduler,
        seed=seed,
        measure_intervals=measure_intervals,
        warmup_intervals=1,
        faults=parse_fault_schedule(faults) if faults else None,
        elasticity=(
            parse_elasticity_schedule(elasticity) if elasticity else None
        ),
    )
    return dataclasses.replace(
        config,
        cluster=ClusterConfig(node_count=3, capacity_units_per_s=4.0),
        workload=WorkloadConfig(
            tuple_count=200,
            distinct_types=40,
            distribution=config.workload.distribution,
        ),
    )


def run_system(config):
    system = build_system(config)
    env = system.env
    interval_s = config.runtime.interval_s
    warmup_s = interval_s * config.runtime.warmup_intervals

    def kickoff():
        yield env.timeout(warmup_s)
        start_repartitioning(system)

    env.process(kickoff())
    env.run(
        until=warmup_s + interval_s * config.runtime.measure_intervals + 1e-9
    )
    return system


def _assert_identical(first, second):
    assert first.summary == second.summary
    assert len(first.intervals) == len(second.intervals)
    for a, b in zip(first.intervals, second.intervals):
        assert dataclasses.asdict(a) == dataclasses.asdict(b)


class TestScaleCycleUnderEachScheduler:
    @pytest.mark.parametrize("scheduler", SCHEDULER_NAMES)
    def test_double_then_halve_completes(self, scheduler):
        system = run_system(elastic_chaos_config(scheduler))
        controller = system.elasticity_controller
        assert controller is not None
        assert controller.quiescent
        assert controller.nodes_added == 3
        assert controller.nodes_retired == 3
        sizes = system.store.partition_sizes()
        for node_id in (3, 4, 5):
            node = system.cluster.node(node_id)
            assert node.state is NodeState.RETIRED
            assert len(node.store) == 0
            assert sizes.get(node.partition_id, 0) == 0
        # The original three keep serving.
        assert system.cluster.placement_partition_ids == [0, 1, 2]
        assert system.metrics.intervals[-1].committed > 0


class TestCrashDuringDrain:
    def test_draining_node_crash_requeues_migrations(self):
        # Node 3 joins at 40 s, starts draining at 200 s, crashes at
        # 210 s (mid-drain) and comes back at 250 s.  Its unfinished
        # drain migrations abort with the node, are requeued, and the
        # drain still completes before the horizon.
        system = run_system(
            elastic_chaos_config(
                elasticity="40:add:1,200:drain:3",
                faults="210:crash:3,250:restart:3",
            )
        )
        assert system.fault_injector is not None
        assert system.fault_injector.crashes == 1
        node = system.cluster.node(3)
        assert node.state is NodeState.RETIRED
        assert len(node.store) == 0
        assert system.store.partition_sizes().get(node.partition_id, 0) == 0
        controller = system.elasticity_controller
        assert controller.quiescent
        assert controller.nodes_retired == 1

    def test_late_joiner_faces_stochastic_faults(self):
        # MTBF low enough that six nodes over 300+ s see crashes; the
        # late joiners are watched too (watch_node on add).
        system = run_system(
            elastic_chaos_config(
                elasticity="40:add:3",
                faults="mtbf=120,mttr=10",
            )
        )
        assert system.fault_injector is not None
        assert system.fault_injector.crashes > 0
        assert system.metrics.intervals[-1].committed > 0


class TestLastLiveNodeGuard:
    def test_draining_nodes_not_counted_as_live(self, env):
        cluster = Cluster(
            env, ClusterConfig(node_count=2, capacity_units_per_s=4.0)
        )
        cluster.begin_drain(1)
        injector = FaultInjector(
            env,
            cluster,
            parse_fault_schedule("10:crash:0"),
            rng=random.Random(0),
        )
        injector.start()
        env.run(until=20)
        # Node 0 is the last full member (node 1 is DRAINING): the
        # guard must refuse the crash rather than leave only departing
        # members serving.
        assert not cluster.node(0).is_down
        assert injector.crashes == 0
        assert injector.skipped == 1

    def test_retired_nodes_not_counted_and_not_crashed(self, env):
        cluster = Cluster(
            env, ClusterConfig(node_count=3, capacity_units_per_s=4.0)
        )
        cluster.begin_drain(1)
        cluster.retire(1)
        injector = FaultInjector(
            env,
            cluster,
            parse_fault_schedule("10:crash:1,15:crash:2,20:crash:0"),
            rng=random.Random(0),
        )
        injector.start()
        env.run(until=30)
        # Crashing the RETIRED node is refused outright; with it out of
        # the count, nodes 0 and 2 are the only live members, so one
        # crash lands and the next is refused as last-live.
        assert not cluster.node(1).is_down
        assert injector.crashes == 1
        assert injector.skipped == 2
        assert not cluster.node(0).is_down


class TestDeterminismUnderComposition:
    def test_same_seed_bit_identical(self):
        config = elastic_chaos_config(
            elasticity="40:add:1,200:drain:3",
            faults="210:crash:3,250:restart:3",
            measure_intervals=14,
        )
        _assert_identical(run_experiment(config), run_experiment(config))

    def test_parallel_matches_serial_bit_for_bit(self):
        configs = [
            elastic_chaos_config(
                scheduler,
                elasticity="40:add:1,200:drain:3",
                faults="210:crash:3,250:restart:3",
                measure_intervals=14,
            )
            for scheduler in ("AfterAll", "Piggyback")
        ]
        serial = run_cells(configs, jobs=1)
        parallel = run_cells(configs, jobs=2)
        for a, b in zip(serial, parallel):
            _assert_identical(a, b)
