"""Chaos tests: crash a node mid-run under every scheduler.

The acceptance bar for fault injection: with a node crashed and later
restarted while transactions are in flight, every scheduler must keep
making progress (no deadlocks, no unhandled exceptions), every abort
must carry a recorded cause, the restarted node's WAL recovery must
agree with its live store, and the whole run must stay bit-for-bit
deterministic — serial, parallel, and through the result cache.
"""

import dataclasses

import pytest

from repro.cluster import ClusterConfig
from repro.experiments import (
    SCHEDULER_NAMES,
    CellReport,
    ResultCache,
    bench_scale,
    build_system,
    config_key,
    run_cells,
    run_experiment,
    start_repartitioning,
)
from repro.faults import parse_fault_schedule
from repro.storage.wal import WalRecordType, recover
from repro.workload import WorkloadConfig

#: Crash node 1 during the second measured interval, restart it 35 s
#: later — both well inside the 120 s horizon below.
SCHEDULE = "40:crash:1,75:restart:1"


def chaos_config(scheduler="Hybrid", schedule=SCHEDULE, seed=0,
                 measure_intervals=5):
    """A small cell with a crash/restart cycle injected mid-run."""
    config = bench_scale(
        scheduler=scheduler,
        seed=seed,
        measure_intervals=measure_intervals,
        warmup_intervals=1,
        faults=parse_fault_schedule(schedule) if schedule else None,
    )
    return dataclasses.replace(
        config,
        cluster=ClusterConfig(node_count=3, capacity_units_per_s=4.0),
        workload=WorkloadConfig(
            tuple_count=200,
            distinct_types=40,
            distribution=config.workload.distribution,
        ),
    )


def run_system(config):
    """Like ``run_experiment`` but hands back the live system."""
    system = build_system(config)
    env = system.env
    interval_s = config.runtime.interval_s
    warmup_s = interval_s * config.runtime.warmup_intervals

    def kickoff():
        yield env.timeout(warmup_s)
        start_repartitioning(system)

    env.process(kickoff())
    env.run(
        until=warmup_s + interval_s * config.runtime.measure_intervals + 1e-9
    )
    return system


def open_txn_keys(wal):
    """Keys touched by transactions still open in the log."""
    open_ids = wal.open_transactions
    keys = set()
    for record in wal.records():
        if record.txn_id not in open_ids:
            continue
        if record.type in (WalRecordType.WRITE, WalRecordType.INSERT):
            keys.add(record.payload[0])
        elif record.type is WalRecordType.DELETE:
            keys.add(record.payload)
    return keys


def totals(intervals):
    causes = {}
    for record in intervals:
        for cause, count in record.aborted_by_cause.items():
            causes[cause] = causes.get(cause, 0) + count
    return {
        "committed": sum(r.committed for r in intervals),
        "aborted": sum(r.aborted for r in intervals),
        "retries": sum(r.retries for r in intervals),
        "degraded_s": sum(r.degraded_s for r in intervals),
        "causes": causes,
    }


def _assert_identical(first, second):
    assert first.summary == second.summary
    assert len(first.intervals) == len(second.intervals)
    for a, b in zip(first.intervals, second.intervals):
        assert dataclasses.asdict(a) == dataclasses.asdict(b)


class TestChaosUnderEachScheduler:
    @pytest.mark.parametrize("scheduler", SCHEDULER_NAMES)
    def test_crash_restart_cycle_survived(self, scheduler):
        system = run_system(chaos_config(scheduler))

        # The run finished (env.run would have raised on any unhandled
        # failure) and the crashed node rejoined.
        assert all(not node.is_down for node in system.cluster.nodes)
        assert system.cluster.node(1).crash_count == 1
        assert system.cluster.node(1).total_down_time_s == pytest.approx(35.0)
        assert system.fault_injector is not None
        assert system.fault_injector.crashes == 1
        assert system.fault_injector.restarts == 1

        stats = totals(system.metrics.intervals)
        # Forward progress throughout, including after the outage.
        assert stats["committed"] > 0
        assert system.metrics.intervals[-1].committed > 0
        # The crash was actually felt: transactions died with the node,
        # carried a recorded cause, and were retried.
        assert stats["causes"].get("node_down", 0) > 0
        assert stats["retries"] > 0
        assert sum(stats["causes"].values()) == stats["aborted"]
        # Degradation accounting matches the schedule exactly.
        assert stats["degraded_s"] == pytest.approx(75.0 - 40.0)

    @pytest.mark.parametrize("scheduler", SCHEDULER_NAMES)
    def test_recovery_state_consistent(self, scheduler):
        """Replaying each node's WAL reproduces its live store.

        Keys touched by transactions still open at the horizon are
        excluded: their in-place effects are legitimately invisible to
        redo recovery until a COMMIT lands.
        """
        system = run_system(chaos_config(scheduler))
        for node in system.cluster.nodes:
            recovered = recover(node.wal)
            dirty = open_txn_keys(node.wal)
            live_keys = set(node.store.keys()) - dirty
            recovered_keys = set(recovered.keys()) - dirty
            assert recovered_keys == live_keys
            for key in recovered_keys:
                assert recovered.read(key) == node.store.read(key)


class TestDeterminismUnderFaults:
    def test_same_seed_and_schedule_bit_identical(self):
        config = chaos_config("Hybrid", measure_intervals=3)
        _assert_identical(run_experiment(config), run_experiment(config))

    def test_schedule_changes_outcome(self):
        base = chaos_config("Hybrid", measure_intervals=3)
        quiet = chaos_config("Hybrid", schedule=None, measure_intervals=3)
        assert run_experiment(base).summary != run_experiment(quiet).summary

    def test_parallel_matches_serial_bit_for_bit(self):
        configs = [
            chaos_config(scheduler, measure_intervals=3)
            for scheduler in ("ApplyAll", "Hybrid")
        ]
        serial = run_cells(configs, jobs=1)
        parallel = run_cells(configs, jobs=2)
        for a, b in zip(serial, parallel):
            _assert_identical(a, b)

    def test_summary_reports_fault_metrics(self):
        result = run_experiment(chaos_config("Hybrid", measure_intervals=3))
        assert result.summary["aborted_node_down"] > 0
        assert result.summary["total_retries"] > 0
        assert result.summary["total_degraded_s"] > 0


class TestCacheKeyedOnFaults:
    def test_key_sensitive_to_schedule(self):
        base = chaos_config("Hybrid")
        assert config_key(base) == config_key(chaos_config("Hybrid"))
        assert config_key(base) != config_key(
            chaos_config("Hybrid", schedule="41:crash:1,75:restart:1")
        )
        assert config_key(base) != config_key(
            chaos_config("Hybrid", schedule=None)
        )
        assert config_key(base) != config_key(
            chaos_config("Hybrid", schedule="mtbf=300,mttr=30")
        )

    def test_hit_on_same_schedule_miss_on_other(self, tmp_path):
        cache = ResultCache(tmp_path)
        config = chaos_config("Hybrid", measure_intervals=3)
        run_cells([config], cache=cache)

        warm = CellReport()
        (cached,) = run_cells([config], cache=cache, report=warm)
        assert warm.cache_hits == 1 and warm.executed == 0
        _assert_identical(cached, run_experiment(config))

        other = chaos_config(
            "Hybrid", schedule="45:crash:1,75:restart:1", measure_intervals=3
        )
        cold = CellReport()
        run_cells([other], cache=cache, report=cold)
        assert cold.cache_hits == 0 and cold.executed == 1
