"""End-to-end integration tests: the paper's qualitative claims.

Each test runs small-but-real experiments through the full stack
(cluster, 2PL, 2PC, router, scheduler, workload, metrics) and asserts
the *shape* the paper reports, not absolute numbers.
"""

from dataclasses import replace

import pytest

from repro.cluster import ClusterConfig
from repro.experiments import bench_scale, run_experiment
from repro.metrics import mean, series
from repro.workload import WorkloadConfig


def small(scheduler, distribution="zipf", load="high", alpha=1.0, seed=0):
    config = bench_scale(
        scheduler=scheduler,
        distribution=distribution,
        load=load,
        alpha=alpha,
        seed=seed,
        measure_intervals=20,
        warmup_intervals=3,
    )
    distinct = 120 if distribution == "uniform" else 100
    return replace(
        config,
        cluster=ClusterConfig(node_count=5, capacity_units_per_s=4.0),
        workload=WorkloadConfig(
            tuple_count=600,
            distinct_types=distinct,
            distribution=distribution,
        ),
    )


@pytest.fixture(scope="module")
def zipf_high():
    return {
        name: run_experiment(small(name))
        for name in ("ApplyAll", "AfterAll", "Feedback", "Piggyback",
                     "Hybrid")
    }


@pytest.fixture(scope="module")
def zipf_low():
    return {
        name: run_experiment(small(name, load="low"))
        for name in ("ApplyAll", "AfterAll", "Feedback", "Piggyback",
                     "Hybrid")
    }


class TestApplyAllShape:
    def test_fastest_deployment(self, zipf_high):
        """ApplyAll reaches full RepRate before any other strategy."""
        apply_done = zipf_high["ApplyAll"].completion_interval
        assert apply_done is not None
        for name in ("AfterAll", "Feedback", "Piggyback", "Hybrid"):
            other_done = zipf_high[name].completion_interval
            if other_done is not None:
                assert apply_done <= other_done

    def test_throughput_collapses_during_stall(self, zipf_high):
        """The paper's signature ApplyAll dip: throughput ~0 early on."""
        throughput = series(
            zipf_high["ApplyAll"].measured, "throughput_txn_per_min"
        )
        done = zipf_high["ApplyAll"].completion_interval
        assert min(throughput[:done]) == 0.0

    def test_recovers_above_afterall_eventually(self, zipf_high):
        apply_tail = mean(
            series(zipf_high["ApplyAll"].measured,
                   "throughput_txn_per_min")[-5:]
        )
        afterall_tail = mean(
            series(zipf_high["AfterAll"].measured,
                   "throughput_txn_per_min")[-5:]
        )
        assert apply_tail > afterall_tail


class TestAfterAllShape:
    def test_no_progress_under_high_load(self, zipf_high):
        """No idle time => AfterAll barely deploys anything (§4.2)."""
        final = zipf_high["AfterAll"].measured[-1].rep_rate
        assert final < 0.1

    def test_sustained_failure_under_high_load(self, zipf_high):
        """The overloaded system keeps failing transactions (Figure 3a)."""
        failure = mean(
            series(zipf_high["AfterAll"].measured, "failure_rate")
        )
        assert failure > 0.15

    def test_progresses_under_low_load(self, zipf_low):
        final = zipf_low["AfterAll"].measured[-1].rep_rate
        assert final > 0.5


class TestFeedbackShape:
    def test_steady_partial_progress_under_high_load(self, zipf_high):
        rep_rate = series(zipf_high["Feedback"].measured, "rep_rate")
        assert rep_rate[-1] > 0.05  # more than AfterAll
        assert rep_rate[-1] > zipf_high["AfterAll"].measured[-1].rep_rate
        # Monotone non-decreasing deployment.
        assert all(b >= a for a, b in zip(rep_rate, rep_rate[1:]))

    def test_faster_than_afterall_under_low_load(self, zipf_low):
        feedback = series(zipf_low["Feedback"].measured, "rep_rate")
        afterall = series(zipf_low["AfterAll"].measured, "rep_rate")
        assert mean(feedback) >= mean(afterall)


class TestPiggybackShape:
    def test_fast_deployment_under_zipf_high(self, zipf_high):
        """Abundant carriers => piggyback deploys the hot mass quickly."""
        rep_rate = series(zipf_high["Piggyback"].measured, "rep_rate")
        assert rep_rate[-1] > 0.6

    def test_lower_failure_than_afterall(self, zipf_high):
        """Figure 3a: once the plan is largely deployed, piggyback's
        failure rate sits well below AfterAll's sustained overload."""
        piggy = mean(series(zipf_high["Piggyback"].measured,
                            "failure_rate")[-8:])
        afterall = mean(series(zipf_high["AfterAll"].measured,
                               "failure_rate")[-8:])
        assert piggy < afterall

    def test_no_throughput_collapse(self, zipf_high):
        """Unlike ApplyAll, piggyback never stalls normal processing."""
        throughput = series(
            zipf_high["Piggyback"].measured, "throughput_txn_per_min"
        )
        assert min(throughput[1:]) > 0


class TestHybridShape:
    def test_at_least_as_fast_as_piggyback(self, zipf_high):
        hybrid = series(zipf_high["Hybrid"].measured, "rep_rate")
        piggy = series(zipf_high["Piggyback"].measured, "rep_rate")
        assert hybrid[-1] >= piggy[-1] - 0.05

    def test_completes_under_low_load(self, zipf_low):
        """Hybrid uses idle capacity Piggyback cannot (§4.3)."""
        hybrid_final = zipf_low["Hybrid"].measured[-1].rep_rate
        piggy_final = zipf_low["Piggyback"].measured[-1].rep_rate
        assert hybrid_final >= piggy_final

    def test_low_failure_rate(self, zipf_high):
        hybrid = mean(series(zipf_high["Hybrid"].measured,
                             "failure_rate")[-8:])
        afterall = mean(series(zipf_high["AfterAll"].measured,
                               "failure_rate")[-8:])
        assert hybrid < afterall


class TestDataIntegrity:
    @pytest.mark.parametrize(
        "scheduler", ["ApplyAll", "AfterAll", "Feedback", "Piggyback",
                      "Hybrid"]
    )
    def test_stores_consistent_with_map_after_run(self, scheduler):
        from repro.experiments import build_system, start_repartitioning
        from repro.workload import verify_placement

        config = small(scheduler, load="low")
        system = build_system(config)

        def kickoff():
            yield system.env.timeout(
                config.runtime.interval_s * config.runtime.warmup_intervals
            )
            start_repartitioning(system)

        system.env.process(kickoff())
        horizon = config.runtime.interval_s * (
            config.runtime.warmup_intervals
            + config.runtime.measure_intervals
        )
        system.env.run(until=horizon)
        assert verify_placement(system.cluster, system.router.partition_map)
        # No key lost: total records equals the tuple count.
        total = sum(len(n.store) for n in system.cluster.nodes)
        assert total == config.workload.tuple_count


class TestAlphaScaling:
    def test_applyall_duration_scales_with_alpha(self):
        """Paper: ApplyAll finishes in intervals proportional to α."""
        durations = {}
        for alpha in (1.0, 0.2):
            result = run_experiment(small("ApplyAll", alpha=alpha))
            durations[alpha] = result.completion_interval
        assert durations[0.2] is not None
        assert durations[1.0] is None or (
            durations[0.2] < durations[1.0]
        )

    def test_rep_ops_scale_with_alpha(self):
        full = run_experiment(small("ApplyAll", alpha=1.0))
        fifth = run_experiment(small("ApplyAll", alpha=0.2))
        assert fifth.rep_ops_total < full.rep_ops_total
        ratio = fifth.rep_ops_total / full.rep_ops_total
        assert 0.1 < ratio < 0.35
