"""Chaos tests for epoch-versioned maps: staged epochs must die cleanly.

A node crash mid-repartition kills transactions that have already staged
map deltas (an unpublished epoch).  The bar: every stage opened during
the run is either published or discarded by the horizon, a discarded
stage leaves no MOVING mark and none of its staged placements in the
published map, and under the ``abort`` stale-route policy the
``stale_route`` abort cause shows up in the per-interval metrics of a
migration-heavy run.
"""

import dataclasses

import pytest

from repro.cluster import ClusterConfig
from repro.experiments import bench_scale, run_experiment
from repro.faults import parse_fault_schedule
from repro.routing import MigrationState
from repro.workload import WorkloadConfig

from .test_chaos import run_system

#: Crash node 1 right as the repartition burst is in full swing (the
#: warmup interval ends at 20 s), restart it before the horizon.
SCHEDULE = "30:crash:1,75:restart:1"


def epoch_chaos_config(scheduler="ApplyAll", stale_route_policy="follow",
                       seed=0, measure_intervals=5):
    """Migration-heavy cell (ApplyAll floods repartition transactions)
    with a crash injected while the deployment is in flight."""
    config = bench_scale(
        scheduler=scheduler,
        seed=seed,
        measure_intervals=measure_intervals,
        warmup_intervals=1,
        faults=parse_fault_schedule(SCHEDULE),
    )
    return dataclasses.replace(
        config,
        cluster=ClusterConfig(node_count=3, capacity_units_per_s=4.0),
        workload=WorkloadConfig(
            tuple_count=200,
            distinct_types=40,
            distribution=config.workload.distribution,
        ),
        runtime=dataclasses.replace(
            config.runtime, stale_route_policy=stale_route_policy
        ),
    )


def run_tracking_stages(config):
    """Run the cell recording every stage handed out and what each one
    still held at the moment it was discarded."""
    from repro.experiments import build_system

    system = build_system(config)
    stages = []
    dropped = []  # (stage, moving keys at discard, staged keys at discard)
    original_begin = system.store.begin_stage
    original_discard = system.store.discard

    def tracking_begin_stage(owner=-1):
        stage = original_begin(owner)
        stages.append(stage)
        return stage

    def tracking_discard(stage):
        if not (stage.published or stage.discarded):
            dropped.append(
                (stage, frozenset(stage._moving), stage.staged_keys)
            )
        original_discard(stage)

    system.store.begin_stage = tracking_begin_stage
    system.store.discard = tracking_discard

    env = system.env
    interval_s = config.runtime.interval_s
    warmup_s = interval_s * config.runtime.warmup_intervals

    def kickoff():
        yield env.timeout(warmup_s)
        from repro.experiments import start_repartitioning

        start_repartitioning(system)

    env.process(kickoff())
    env.run(
        until=warmup_s + interval_s * config.runtime.measure_intervals + 1e-9
    )
    return system, stages, dropped


class TestStagedEpochDroppedOnCrash:
    def test_crash_discards_staged_epochs_cleanly(self):
        system, stages, dropped = run_tracking_stages(epoch_chaos_config())

        # The crash was felt and repartition transactions died with it.
        causes = {}
        for record in system.metrics.intervals:
            for cause, n in record.aborted_by_cause.items():
                causes[cause] = causes.get(cause, 0) + n
        assert causes.get("node_down", 0) > 0
        rep_aborts = sum(r.rep_aborted for r in system.metrics.intervals)
        assert rep_aborts > 0

        # Every finished transaction closed its stage (published at
        # commit, discarded at abort).  Stages may legitimately remain
        # open only for transactions frozen in flight when the horizon
        # cut the simulation — never for an aborted one.
        assert stages, "no stage was ever opened"
        open_stages = [
            s for s in stages if not (s.published or s.discarded)
        ]
        assert len(open_stages) <= system.tm.in_flight
        discarded = [s for s in stages if s.discarded]
        assert discarded, "no staged epoch was ever dropped"
        # At least one dropped stage held in-flight migration state —
        # the scenario the test exists for (unpublished epoch at abort).
        assert any(moving for _, moving, _ in dropped)

        # No MOVING tuple leaked past its stage's lifetime: every
        # MOVING mark still registered belongs to a still-open stage,
        # and discard wiped each dropped stage's marks.
        held_by_open = set()
        for stage in open_stages:
            held_by_open.update(stage._moving)
        assert system.store.moving_keys() <= held_by_open
        for stage in discarded:
            assert not stage._moving

        # A tuple a dead transaction was moving is MOVING now only if a
        # *live* (still-open) stage is also relocating it.
        for _, moving, _ in dropped:
            for key in moving - held_by_open:
                assert (
                    system.store.migration_state(key)
                    is not MigrationState.MOVING
                )

        # ...and the published map holds only committed placements:
        # epoch count equals committed publishes, and the live map is
        # structurally sound (every key mapped, no duplicate replicas).
        assert system.store.epoch_id <= sum(
            1 for s in stages if s.published
        )
        live = system.store.live_map
        for key in live.keys():
            replicas = live.replicas_of(key)
            assert len(replicas) >= 1
            assert len(set(replicas)) == len(replicas)

    def test_live_map_reconstructs_from_published_epochs_only(self):
        """The live map is exactly the initial placement plus the logged
        (published) transitions — dropped stages contributed nothing."""
        config = epoch_chaos_config()
        # An untrimmable log so the full history is replayable.
        config = dataclasses.replace(
            config,
            runtime=dataclasses.replace(config.runtime, epoch_log_limit=10**6),
        )
        from repro.experiments import build_system

        initial = {
            key: tuple(build_system(config).store.live_map.replicas_of(key))
            for key in build_system(config).store.live_map.keys()
        }
        system, _, dropped = run_tracking_stages(config)
        assert dropped, "no staged epoch was ever dropped"
        replayed = dict(initial)
        for transition in system.store.delta_log():
            for delta in transition.deltas:
                assert replayed.get(delta.key) == delta.before
                if delta.after is None:
                    replayed.pop(delta.key, None)
                else:
                    replayed[delta.key] = delta.after
        live = system.store.live_map
        assert replayed == {
            key: tuple(live.replicas_of(key)) for key in live.keys()
        }

    def test_deterministic_under_chaos(self):
        config = epoch_chaos_config(measure_intervals=3)
        first = run_experiment(config)
        second = run_experiment(config)
        assert first.summary == second.summary
        for a, b in zip(first.intervals, second.intervals):
            assert dataclasses.asdict(a) == dataclasses.asdict(b)


class TestStaleRouteUnderMigrationChaos:
    def test_stale_route_cause_surfaces_in_intervals(self):
        """Under the ``abort`` policy, a migration-heavy chaos run aborts
        at least one transaction with the ``stale_route`` cause, and the
        cause reaches the per-interval metrics."""
        system = run_system(
            epoch_chaos_config(stale_route_policy="abort")
        )
        intervals = system.metrics.intervals
        stale = sum(
            r.aborted_by_cause.get("stale_route", 0) for r in intervals
        )
        assert stale > 0
        # stale_route aborts are retryable and feed the retry pipeline.
        assert sum(r.stale_route_retries for r in intervals) > 0

    def test_follow_policy_forwards_instead(self):
        """The default policy forwards stale reads rather than aborting:
        same cell, zero stale_route aborts, forwarded reads counted."""
        system = run_system(epoch_chaos_config(stale_route_policy="follow"))
        intervals = system.metrics.intervals
        assert all(
            "stale_route" not in r.aborted_by_cause for r in intervals
        )
        assert sum(r.forwarded_reads for r in intervals) > 0

    def test_epoch_publishes_counted(self):
        system = run_system(epoch_chaos_config())
        published = sum(
            r.epoch_publishes for r in system.metrics.intervals
        )
        assert published == system.store.publishes
        assert published > 0


@pytest.mark.parametrize("policy", ["follow", "abort"])
def test_progress_under_both_policies(policy):
    system = run_system(epoch_chaos_config(stale_route_policy=policy))
    assert sum(r.committed for r in system.metrics.intervals) > 0
    assert all(not node.is_down for node in system.cluster.nodes)
