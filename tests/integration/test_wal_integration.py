"""Integration: live traffic journals through the WAL; recovery matches.

Enables write-ahead logging on every node, runs real workloads —
including a full repartition deployment — then recovers each node's
store from its log and checks the recovered state equals the live state
tuple by tuple.
"""

from repro.partitioning import Migrate
from repro.storage.wal import recover

from ..txn.conftest import build_stack


def enable_wals(stack):
    for node in stack.cluster.nodes:
        node.enable_wal()


def assert_recovery_matches(stack):
    for node in stack.cluster.nodes:
        recovered = recover(node.wal)
        live_keys = set(node.store.keys())
        assert set(recovered.keys()) >= {
            k for k in live_keys if _touched(node, k)
        }
        for key in recovered.keys():
            if key in node.store:
                assert recovered.read(key) == node.store.read(key), (
                    f"key {key} on node {node.node_id} diverged"
                )


def _touched(node, key):
    """Keys never journaled (loaded at setup) are not in the WAL."""
    return any(
        r.payload is not None
        and (r.payload == key or (isinstance(r.payload, tuple)
                                  and r.payload and r.payload[0] == key))
        for r in node.wal.records()
    )


class TestWalIntegration:
    def test_committed_writes_recoverable(self):
        stack = build_stack()
        enable_wals(stack)
        txn = stack.tm.create_normal(
            [stack.write(0, 111), stack.write(1, 222)]
        )
        stack.run_txn(txn)
        assert txn.committed
        assert_recovery_matches(stack)

    def test_aborted_writes_not_recovered(self):
        stack = build_stack(rep_op_failure_probability=1.0, max_attempts=1)
        enable_wals(stack)
        txn = stack.tm.create_normal([stack.write(0, 999)])
        txn.attach_rep_ops(
            7, [Migrate(op_id=0, key=0, source=0, destination=1)]
        )
        stack.tm.submit(txn)
        stack.env.run(until=10)
        assert not txn.committed
        node = stack.cluster.node_for_partition(0)
        recovered = recover(node.wal)
        # The aborted write must not surface after recovery.
        if 0 in recovered:
            assert recovered.read(0) != 999

    def test_migration_journaled_on_both_nodes(self):
        stack = build_stack()
        enable_wals(stack)
        txn = stack.tm.create_repartition(
            [Migrate(op_id=0, key=0, source=0, destination=1)]
        )
        stack.run_txn(txn)
        assert txn.committed
        source = stack.cluster.node_for_partition(0)
        dest = stack.cluster.node_for_partition(1)
        recovered_dest = recover(dest.wal)
        assert 0 in recovered_dest
        recovered_source = recover(source.wal)
        assert 0 not in recovered_source

    def test_mixed_workload_recovery_consistency(self):
        stack = build_stack(keys=30)
        enable_wals(stack)
        for i in range(20):
            stack.tm.submit(
                stack.tm.create_normal([stack.write(i % 30, i * 7)])
            )
        stack.tm.submit(
            stack.tm.create_repartition(
                [Migrate(op_id=0, key=5, source=2, destination=0)]
            )
        )
        stack.env.run(until=500)
        assert_recovery_matches(stack)

    def test_checkpoint_then_more_traffic(self):
        stack = build_stack()
        enable_wals(stack)
        stack.run_txn(stack.tm.create_normal([stack.write(0, 1)]))
        node = stack.cluster.node_for_partition(0)
        node.wal.log_checkpoint(node.store)
        node.wal.truncate_before_checkpoint()
        stack.run_txn(stack.tm.create_normal([stack.write(0, 2)]))
        recovered = recover(node.wal)
        assert recovered.read(0) == 2

    def test_wal_disabled_by_default(self):
        stack = build_stack()
        stack.run_txn(stack.tm.create_normal([stack.write(0, 5)]))
        assert all(node.wal is None for node in stack.cluster.nodes)
