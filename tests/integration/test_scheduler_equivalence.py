"""Old-vs-new scheduler equivalence on full experiment runs.

The calendar-queue scheduler must be *invisible*: every figure series and
per-interval metric the experiment stack produces has to be bit-identical
to what the old single-heap scheduler produced.  These tests run the real
pipeline twice — once normally, once with
``repro.experiments.runner.Environment`` monkeypatched to the heapq
oracle (the runner is the only place in ``src/`` that constructs an
environment) — and diff everything: summaries, full interval series, and
figure-3/figure-4 shaped grids, across all five schedulers, a
deterministic fault schedule, and a migration-heavy chaos cell.
"""

import dataclasses

import pytest

from repro.experiments.config import SCHEDULER_NAMES
from repro.experiments.figures import _run_cells
from repro.experiments.runner import run_experiment
from repro.faults import FaultEvent, FaultScheduleConfig

from ..experiments.test_runner import tiny
from ..sim.heapq_reference import HeapqEnvironment


def _oracle(monkeypatch):
    """Swap the runner's kernel for the single-heap reference."""
    monkeypatch.setattr(
        "repro.experiments.runner.Environment", HeapqEnvironment
    )


def _assert_identical(first, second):
    """Summaries and the full interval series match bit-for-bit."""
    assert first.summary == second.summary
    assert len(first.intervals) == len(second.intervals)
    for a, b in zip(first.intervals, second.intervals):
        assert dataclasses.asdict(a) == dataclasses.asdict(b)


def _crash_schedule():
    """Crash node 1 mid-run, restart it two intervals later."""
    return FaultScheduleConfig(
        events=(
            FaultEvent(60.0, "crash", 1),
            FaultEvent(100.0, "restart", 1),
        )
    )


class TestPerScheduler:
    @pytest.mark.parametrize("scheduler", SCHEDULER_NAMES)
    def test_run_bit_identical(self, monkeypatch, scheduler):
        config = tiny(scheduler=scheduler, measure_intervals=4, warmup_intervals=1)
        with_new = run_experiment(config)
        _oracle(monkeypatch)
        with_old = run_experiment(config)
        _assert_identical(with_new, with_old)


class TestChaosConfigs:
    def test_fault_schedule_bit_identical(self, monkeypatch):
        config = tiny(
            scheduler="Hybrid",
            measure_intervals=5,
            warmup_intervals=1,
            faults=_crash_schedule(),
        )
        with_new = run_experiment(config)
        _oracle(monkeypatch)
        with_old = run_experiment(config)
        _assert_identical(with_new, with_old)

    def test_migration_heavy_chaos_bit_identical(self, monkeypatch):
        """Full-α ApplyAll migration under faults with abort-on-stale-route.

        The worst case for event-order sensitivity: every interval
        publishes map epochs while transactions race the migration, node
        crashes inject retries, and the abort policy makes outcomes
        depend on the exact interleaving of routing, locking, and epoch
        publication — any ordering drift between schedulers shows up
        immediately.
        """
        base = tiny(
            scheduler="ApplyAll",
            measure_intervals=5,
            warmup_intervals=1,
            faults=_crash_schedule(),
        )
        config = base.with_overrides(
            runtime=dataclasses.replace(
                base.runtime, stale_route_policy="abort"
            )
        )
        with_new = run_experiment(config)
        _oracle(monkeypatch)
        with_old = run_experiment(config)
        _assert_identical(with_new, with_old)


class TestFigureSeries:
    def _factory(self, scheduler, distribution, load, alpha, seed):
        return tiny(
            scheduler=scheduler,
            distribution=distribution,
            load=load,
            alpha=alpha,
            seed=seed,
            measure_intervals=3,
            warmup_intervals=1,
        )

    def _figure4_grid(self):
        """Figure-4 shape: all five schedulers × two α values, Zipf/High."""
        return _run_cells(
            "Figure 4 (equivalence)",
            "zipf",
            "high",
            (1.0, 0.2),
            schedulers=SCHEDULER_NAMES,
            config_factory=self._factory,
            jobs=1,
        )

    def _figure3_grid(self):
        """Figure-3 shape: α=100% across two workload panels."""
        grids = []
        for distribution, load in (("zipf", "high"), ("uniform", "low")):
            grids.append(
                _run_cells(
                    f"Figure 3 ({distribution}/{load})",
                    distribution,
                    load,
                    (1.0,),
                    schedulers=SCHEDULER_NAMES,
                    config_factory=self._factory,
                    jobs=1,
                )
            )
        return grids

    def test_figure4_series_bit_identical(self, monkeypatch):
        with_new = self._figure4_grid()
        _oracle(monkeypatch)
        with_old = self._figure4_grid()
        assert set(with_new.runs) == set(with_old.runs)
        for cell, result in with_new.runs.items():
            _assert_identical(result, with_old.runs[cell])

    def test_figure3_series_bit_identical(self, monkeypatch):
        with_new = self._figure3_grid()
        _oracle(monkeypatch)
        with_old = self._figure3_grid()
        for new_grid, old_grid in zip(with_new, with_old):
            assert set(new_grid.runs) == set(old_grid.runs)
            for cell, result in new_grid.runs.items():
                _assert_identical(result, old_grid.runs[cell])
