"""Tests for the C vs 2C cost model of §3.1."""

import pytest

from repro.errors import ConfigError
from repro.partitioning import (
    DISTRIBUTED_COST_FACTOR,
    CostModel,
    Migrate,
    PartitionPlan,
)
from repro.routing import PartitionMap
from repro.workload import TransactionType


@pytest.fixture
def pmap():
    mapping = PartitionMap()
    for key in range(10):
        mapping.assign(key, key % 2)  # evens on 0, odds on 1
    return mapping


@pytest.fixture
def model():
    return CostModel(base_cost=1.0, rep_op_cost=0.5)


class TestTxnCost:
    def test_collocated_costs_c(self, model):
        assert model.txn_cost(1) == 1.0

    def test_distributed_costs_2c(self, model):
        assert model.txn_cost(2) == DISTRIBUTED_COST_FACTOR
        assert model.txn_cost(5) == DISTRIBUTED_COST_FACTOR

    def test_zero_partitions_rejected(self, model):
        with pytest.raises(ConfigError):
            model.txn_cost(0)

    def test_scales_with_base_cost(self):
        model = CostModel(base_cost=3.0)
        assert model.txn_cost(1) == 3.0
        assert model.txn_cost(2) == 6.0


class TestCostUnderPlacement:
    def test_cost_under_map(self, model, pmap):
        assert model.cost_under_map([0, 2, 4], pmap) == 1.0
        assert model.cost_under_map([0, 1], pmap) == 2.0

    def test_cost_under_plan_overrides_map(self, model, pmap):
        plan = PartitionPlan({1: 0})
        assert model.cost_under_plan([0, 1], plan, pmap) == 1.0

    def test_improvement_positive_for_collocation(self, model, pmap):
        ttype = TransactionType(type_id=0, keys=(0, 1), frequency=2.0)
        plan = PartitionPlan({1: 0})
        assert model.improvement(ttype, plan, pmap) == 1.0

    def test_improvement_zero_when_already_local(self, model, pmap):
        ttype = TransactionType(type_id=0, keys=(0, 2), frequency=2.0)
        assert model.improvement(ttype, PartitionPlan(), pmap) == 0.0

    def test_improvement_negative_when_plan_splits(self, model, pmap):
        ttype = TransactionType(type_id=0, keys=(0, 2), frequency=1.0)
        plan = PartitionPlan({2: 1})
        assert model.improvement(ttype, plan, pmap) == -1.0


class TestRepartitionCosts:
    def test_rep_txn_cost_is_per_op(self, model):
        ops = [
            Migrate(op_id=i, key=i, source=0, destination=1)
            for i in range(4)
        ]
        assert model.rep_txn_cost(ops) == 2.0

    def test_benefit_sums_frequency_weighted(self, model):
        types = [
            (TransactionType(0, (0, 1), 5.0), 1.0),
            (TransactionType(1, (2, 3), 2.0), 1.0),
        ]
        assert model.benefit(types) == 7.0

    def test_benefit_density(self, model):
        assert model.benefit_density(6.0, 2.0) == 3.0

    def test_benefit_density_zero_cost_rejected(self, model):
        with pytest.raises(ConfigError):
            model.benefit_density(1.0, 0.0)


class TestExpectedCost:
    def test_weighted_mean(self, model, pmap):
        types = [
            TransactionType(0, (0, 2), 3.0),  # local, cost 1
            TransactionType(1, (0, 1), 1.0),  # distributed, cost 2
        ]
        assert model.expected_cost_per_txn(types, pmap) == pytest.approx(
            (3 * 1 + 1 * 2) / 4
        )

    def test_empty_profile_costs_zero(self, model, pmap):
        assert model.expected_cost_per_txn([], pmap) == 0.0

    def test_under_plan_everything_local(self, model, pmap):
        types = [TransactionType(0, (0, 1), 1.0)]
        plan = PartitionPlan({0: 0, 1: 0})
        assert model.expected_cost_per_txn(types, pmap, plan) == 1.0


class TestValidation:
    def test_non_positive_base_cost_rejected(self):
        with pytest.raises(ConfigError):
            CostModel(base_cost=0)

    def test_non_positive_rep_op_cost_rejected(self):
        with pytest.raises(ConfigError):
            CostModel(rep_op_cost=-1)
