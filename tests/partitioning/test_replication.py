"""Tests for the read-replication planner (CreateReplica/DeleteReplica)."""

import pytest

from repro.errors import PartitioningError
from repro.partitioning import (
    CostModel,
    CreateReplica,
    DeleteReplica,
    ReadReplicationPlanner,
    ReplicationConfig,
)
from repro.routing import PartitionMap
from repro.workload import TransactionType, WorkloadProfile


@pytest.fixture
def profile():
    # Type 0 is far hotter than the rest.
    types = [
        TransactionType(0, (0, 1), 100.0),
        TransactionType(1, (2, 3), 1.0),
        TransactionType(2, (4, 5), 1.0),
        TransactionType(3, (6, 7), 1.0),
        TransactionType(4, (8, 9), 1.0),
    ]
    return WorkloadProfile(table="t", types=types)


@pytest.fixture
def pmap():
    mapping = PartitionMap()
    for key in range(10):
        mapping.assign(key, key % 3)
    return mapping


@pytest.fixture
def planner():
    return ReadReplicationPlanner(
        [0, 1, 2], ReplicationConfig(target_replicas=2, hot_fraction=0.2)
    )


class TestHotKeys:
    def test_hottest_keys_selected(self, planner, profile):
        hot = planner.hot_keys(profile)
        assert set(hot) == {0, 1}  # 20% of 10 keys, heat 100 each

    def test_hot_fraction_bounds(self, profile):
        planner = ReadReplicationPlanner(
            [0, 1], ReplicationConfig(hot_fraction=1.0)
        )
        assert len(planner.hot_keys(profile)) == 10

    def test_config_validation(self):
        with pytest.raises(PartitioningError):
            ReplicationConfig(target_replicas=0)
        with pytest.raises(PartitioningError):
            ReplicationConfig(hot_fraction=0.0)
        with pytest.raises(PartitioningError):
            ReadReplicationPlanner([])


class TestPlanReplication:
    def test_ops_bring_hot_keys_to_target(self, planner, profile, pmap):
        ops = planner.plan_replication(profile, pmap)
        assert all(isinstance(op, CreateReplica) for op in ops)
        assert {op.key for op in ops} == {0, 1}
        # One new replica each (target 2, currently 1).
        assert len(ops) == 2

    def test_destination_avoids_existing_replicas(self, planner, profile,
                                                  pmap):
        for op in planner.plan_replication(profile, pmap):
            assert op.destination not in pmap.replicas_of(op.key)

    def test_already_replicated_keys_skipped(self, planner, profile, pmap):
        pmap.add_replica(0, 1)
        pmap.add_replica(1, 2)
        assert planner.plan_replication(profile, pmap) == []

    def test_target_capped_by_partition_count(self, profile, pmap):
        planner = ReadReplicationPlanner(
            [0, 1], ReplicationConfig(target_replicas=5, hot_fraction=0.2)
        )
        ops = planner.plan_replication(profile, pmap)
        # Only 2 partitions exist; keys 0/1 already have one replica on
        # partition 0/1 respectively -> one extra copy each at most.
        for op in ops:
            assert op.destination in (0, 1)

    def test_op_ids_sequential(self, planner, profile, pmap):
        ops = planner.plan_replication(profile, pmap, start_op_id=7)
        assert [op.op_id for op in ops] == [7, 8]


class TestPlanCleanup:
    def test_cold_extra_replicas_deleted(self, planner, profile, pmap):
        pmap.add_replica(5, 0)  # key 5 is cold but replicated
        ops = planner.plan_cleanup(profile, pmap)
        assert len(ops) == 1
        op = ops[0]
        assert isinstance(op, DeleteReplica)
        assert op.key == 5
        assert op.partition == 0  # the non-primary copy

    def test_hot_replicas_kept(self, planner, profile, pmap):
        pmap.add_replica(0, 1)  # hot key: keep it
        assert planner.plan_cleanup(profile, pmap) == []

    def test_primary_never_deleted(self, planner, profile, pmap):
        pmap.add_replica(4, 0)  # key 4's primary is partition 1
        pmap.add_replica(4, 2)
        ops = planner.plan_cleanup(profile, pmap)
        primaries = {pmap.primary_of(op.key) for op in ops}
        for op in ops:
            assert op.partition != pmap.primary_of(op.key)


class TestBuildSpecs:
    def test_specs_ranked_by_heat_density(self, planner, profile, pmap):
        ops = planner.plan_replication(profile, pmap)
        specs = planner.build_specs(ops, profile, CostModel())
        densities = [s.benefit_density for s in specs]
        assert densities == sorted(densities, reverse=True)
        assert all(s.benefit > 0 for s in specs)

    def test_specs_one_per_key(self, planner, profile, pmap):
        ops = planner.plan_replication(profile, pmap)
        specs = planner.build_specs(ops, profile, CostModel())
        assert len(specs) == 2
        assert {s.ops[0].key for s in specs} == {0, 1}


class TestEndToEnd:
    def test_replication_deploys_through_soap(self, profile):
        """Replica creation runs through the full scheduler pipeline."""
        from repro.core import ApplyAllScheduler, Repartitioner

        from ..txn.conftest import build_stack

        stack = build_stack(keys=10)
        planner = ReadReplicationPlanner(
            stack.cluster.partition_ids,
            ReplicationConfig(target_replicas=2, hot_fraction=0.2),
        )
        ops = planner.plan_replication(profile, stack.pmap)
        specs = planner.build_specs(ops, profile, stack.cost_model)
        repartitioner = Repartitioner(
            stack.env, stack.tm, stack.router, stack.metrics,
            stack.cost_model,
        )
        session = repartitioner.deploy(specs, ApplyAllScheduler())
        stack.env.run(until=1000)
        assert session.is_complete
        for key in (0, 1):
            replicas = stack.pmap.replicas_of(key)
            assert len(replicas) == 2
            for pid in replicas:
                node = stack.cluster.node_for_partition(pid)
                assert key in node.store
