"""Tests for static partitioners, the collocation optimizer, and Schism-like graphs."""

import pytest

from repro.errors import PartitioningError
from repro.partitioning import (
    CostModel,
    GraphPartitioner,
    HashPartitioner,
    RangePartitioner,
    RepartitionOptimizer,
)
from repro.routing import PartitionMap
from repro.workload import TransactionType, WorkloadProfile


def make_profile(n_types=6, keys_per_type=3, zipf=False):
    types = []
    for i in range(n_types):
        keys = tuple(range(i * keys_per_type, (i + 1) * keys_per_type))
        freq = 1.0 / (i + 1) if zipf else 1.0
        types.append(TransactionType(type_id=i, keys=keys, frequency=freq))
    return WorkloadProfile(table="t", types=types)


def spread_map(profile, partitions):
    """Place each type's keys round-robin (all types distributed)."""
    pmap = PartitionMap()
    for ttype in profile.types:
        for offset, key in enumerate(ttype.keys):
            pmap.assign(key, partitions[offset % len(partitions)])
    return pmap


class TestHashPartitioner:
    def test_modular_assignment(self):
        partitioner = HashPartitioner([0, 1, 2])
        assert partitioner.partition_of(0) == 0
        assert partitioner.partition_of(4) == 1

    def test_plan_covers_all_keys(self):
        partitioner = HashPartitioner([0, 1])
        plan = partitioner.plan_for(range(10))
        assert len(plan) == 10
        assert plan.partitions_used() == frozenset((0, 1))

    def test_empty_partitions_rejected(self):
        with pytest.raises(PartitioningError):
            HashPartitioner([])

    def test_duplicate_partitions_rejected(self):
        with pytest.raises(PartitioningError):
            HashPartitioner([0, 0])


class TestRangePartitioner:
    def test_contiguous_ranges(self):
        partitioner = RangePartitioner([0, 1], key_space=10)
        assert partitioner.boundaries() == [(0, 5), (5, 10)]
        assert partitioner.partition_of(4) == 0
        assert partitioner.partition_of(5) == 1

    def test_uneven_split(self):
        partitioner = RangePartitioner([0, 1, 2], key_space=10)
        for key in range(10):
            assert partitioner.partition_of(key) in (0, 1, 2)

    def test_out_of_range_rejected(self):
        partitioner = RangePartitioner([0], key_space=5)
        with pytest.raises(PartitioningError):
            partitioner.partition_of(5)

    def test_invalid_key_space(self):
        with pytest.raises(PartitioningError):
            RangePartitioner([0], key_space=0)


class TestRepartitionOptimizer:
    def test_plan_collocates_every_distributed_type(self):
        profile = make_profile()
        partitions = [0, 1, 2]
        pmap = spread_map(profile, partitions)
        optimizer = RepartitionOptimizer(CostModel(), partitions)
        plan = optimizer.derive_plan(profile, pmap)
        for ttype in profile.types:
            targets = {
                plan.effective_partition(k, pmap) for k in ttype.keys
            }
            assert len(targets) == 1, f"type {ttype.type_id} still split"

    def test_already_collocated_types_untouched(self):
        profile = make_profile(n_types=2)
        pmap = PartitionMap()
        for ttype in profile.types:
            for key in ttype.keys:
                pmap.assign(key, ttype.type_id)
        optimizer = RepartitionOptimizer(CostModel(), [0, 1])
        plan = optimizer.derive_plan(profile, pmap)
        assert len(plan) == 0

    def test_subset_selection_fixes_only_selected(self):
        profile = make_profile(n_types=4)
        partitions = [0, 1, 2]
        pmap = spread_map(profile, partitions)
        optimizer = RepartitionOptimizer(CostModel(), partitions)
        selected = [profile.types[0], profile.types[2]]
        plan = optimizer.derive_plan(profile, pmap, selected)
        planned_keys = set(plan.keys())
        assert planned_keys == set(
            profile.types[0].keys + profile.types[2].keys
        )

    def test_load_stays_roughly_balanced(self):
        profile = make_profile(n_types=30, zipf=True)
        partitions = [0, 1, 2]
        pmap = spread_map(profile, partitions)
        optimizer = RepartitionOptimizer(CostModel(), partitions)
        plan = optimizer.derive_plan(profile, pmap)
        load = {p: 0.0 for p in partitions}
        for ttype in profile.types:
            target = plan.effective_partition(ttype.keys[0], pmap)
            load[target] += ttype.frequency
        total = sum(load.values())
        assert max(load.values()) < 0.7 * total  # nothing hogs everything

    def test_should_repartition_threshold(self):
        profile = make_profile(n_types=2)
        partitions = [0, 1]
        pmap = spread_map(profile, partitions)
        optimizer = RepartitionOptimizer(CostModel(), partitions)
        # all types distributed -> expected cost 2; capacity 10
        assert optimizer.should_repartition(10.0, profile, pmap, 10.0)
        assert not optimizer.should_repartition(1.0, profile, pmap, 10.0)


class TestGraphPartitioner:
    def test_coaccess_graph_shape(self):
        profile = make_profile(n_types=2, keys_per_type=3)
        graph = GraphPartitioner([0, 1]).build_graph(profile)
        assert graph.number_of_nodes() == 6
        # each type is a 3-clique: 3 edges per type
        assert graph.number_of_edges() == 6

    def test_shared_key_merges_edge_weight(self):
        types = [
            TransactionType(0, (0, 1), 2.0),
            TransactionType(1, (0, 1), 3.0),
        ]
        profile = WorkloadProfile(table="t", types=types)
        graph = GraphPartitioner([0]).build_graph(profile)
        assert graph[0][1]["weight"] == 5.0

    def test_disjoint_cliques_yield_zero_cut(self):
        profile = make_profile(n_types=8, keys_per_type=3)
        partitioner = GraphPartitioner([0, 1, 2, 3])
        plan = partitioner.derive_plan(profile)
        assert partitioner.cut_weight(profile, plan) == 0.0

    def test_plan_covers_all_profiled_keys(self):
        profile = make_profile(n_types=5)
        partitioner = GraphPartitioner([0, 1])
        plan = partitioner.derive_plan(profile)
        assert set(plan.keys()) == profile.all_keys()

    def test_load_balanced_by_lpt(self):
        profile = make_profile(n_types=10)
        partitioner = GraphPartitioner([0, 1])
        plan = partitioner.derive_plan(profile)
        counts = {0: 0, 1: 0}
        for key in plan.keys():
            counts[plan.target_of(key)] += 1
        assert abs(counts[0] - counts[1]) <= 10  # within two cliques

    def test_empty_profile_gives_empty_plan(self):
        profile = WorkloadProfile(table="t", types=[])
        plan = GraphPartitioner([0, 1]).derive_plan(profile)
        assert len(plan) == 0

    def test_oversized_component_is_split(self):
        # One giant connected chain of types sharing keys.
        types = []
        for i in range(6):
            types.append(
                TransactionType(i, (i, i + 1, i + 2), 1.0)
            )
        profile = WorkloadProfile(table="t", types=types)
        partitioner = GraphPartitioner([0, 1])
        plan = partitioner.derive_plan(profile)
        used = {plan.target_of(k) for k in plan.keys()}
        assert used == {0, 1}  # the single component got split

    def test_deterministic(self):
        profile = make_profile(n_types=12, zipf=True)
        plan_a = GraphPartitioner([0, 1, 2]).derive_plan(profile)
        plan_b = GraphPartitioner([0, 1, 2]).derive_plan(profile)
        assert plan_a.assignment == plan_b.assignment

    def test_needs_partitions(self):
        with pytest.raises(PartitioningError):
            GraphPartitioner([])
