"""Tests for repartition operations, plans, and plan diffing."""

import pytest

from repro.errors import PartitioningError
from repro.partitioning import (
    CreateReplica,
    DeleteReplica,
    Migrate,
    PartitionPlan,
    diff_plan,
    plan_from_map,
)
from repro.routing import PartitionMap


class TestOperations:
    def test_migrate_touches_both_partitions(self):
        op = Migrate(op_id=0, key=1, source=0, destination=2)
        assert op.partitions_touched == frozenset((0, 2))
        assert op.kind == "migrate"

    def test_create_replica_touches_both(self):
        op = CreateReplica(op_id=0, key=1, source=1, destination=3)
        assert op.partitions_touched == frozenset((1, 3))
        assert op.kind == "create-replica"

    def test_delete_replica_touches_one(self):
        op = DeleteReplica(op_id=0, key=1, partition=4)
        assert op.partitions_touched == frozenset((4,))
        assert op.kind == "delete-replica"

    def test_migrate_same_partition_rejected(self):
        with pytest.raises(PartitioningError):
            Migrate(op_id=0, key=1, source=2, destination=2)

    def test_create_same_partition_rejected(self):
        with pytest.raises(PartitioningError):
            CreateReplica(op_id=0, key=1, source=2, destination=2)

    def test_benefit_accumulator_defaults_zero(self):
        op = Migrate(op_id=0, key=1, source=0, destination=1)
        assert op.benefit == 0.0


class TestPartitionPlan:
    def test_assign_and_lookup(self):
        plan = PartitionPlan()
        plan.assign(5, 2)
        assert plan.target_of(5) == 2
        assert plan.target_of(6) is None
        assert 5 in plan and 6 not in plan

    def test_effective_partition_falls_back_to_map(self):
        pmap = PartitionMap()
        pmap.assign(1, 0)
        plan = PartitionPlan()
        assert plan.effective_partition(1, pmap) == 0
        plan.assign(1, 3)
        assert plan.effective_partition(1, pmap) == 3

    def test_partitions_used(self):
        plan = PartitionPlan({1: 0, 2: 0, 3: 4})
        assert plan.partitions_used() == frozenset((0, 4))


class TestDiffPlan:
    def test_emits_migrations_only_for_moves(self):
        pmap = PartitionMap()
        for key in range(4):
            pmap.assign(key, 0)
        plan = PartitionPlan({0: 0, 1: 1, 2: 2, 3: 0})
        ops = diff_plan(pmap, plan)
        moved = {(op.key, op.source, op.destination) for op in ops}
        assert moved == {(1, 0, 1), (2, 0, 2)}

    def test_all_ops_are_migrations(self):
        pmap = PartitionMap()
        pmap.assign(0, 0)
        plan = PartitionPlan({0: 1})
        ops = diff_plan(pmap, plan)
        assert all(isinstance(op, Migrate) for op in ops)

    def test_op_ids_sequential_from_start(self):
        pmap = PartitionMap()
        for key in range(3):
            pmap.assign(key, 0)
        plan = PartitionPlan({0: 1, 1: 1, 2: 1})
        ops = diff_plan(pmap, plan, start_op_id=10)
        assert [op.op_id for op in ops] == [10, 11, 12]

    def test_unmapped_key_rejected(self):
        with pytest.raises(PartitioningError, match="unmapped"):
            diff_plan(PartitionMap(), PartitionPlan({1: 0}))

    def test_identity_plan_produces_no_ops(self):
        pmap = PartitionMap()
        for key in range(5):
            pmap.assign(key, key % 2)
        assert diff_plan(pmap, plan_from_map(pmap)) == []


class TestPlanFromMap:
    def test_snapshot_matches_primaries(self):
        pmap = PartitionMap()
        pmap.assign(1, 3)
        pmap.assign(2, 4)
        plan = plan_from_map(pmap)
        assert plan.target_of(1) == 3
        assert plan.target_of(2) == 4
