"""Tests for data nodes and cluster assembly."""

import random

import pytest

from repro.cluster import Cluster, ClusterConfig, DataNode
from repro.errors import ConfigError
from repro.sim import RandomStreams
from repro.storage import Record


class TestDataNode:
    def test_work_consumes_capacity(self, env):
        node = DataNode(env, node_id=0, partition_id=0,
                        capacity_units_per_s=10.0)
        done = []

        def job():
            yield from node.work(20)
            done.append(env.now)

        env.process(job())
        env.run()
        assert done == [2.0]

    def test_store_and_locks_attached(self, env):
        node = DataNode(env, 0, 0, 1.0)
        node.store.insert(Record(key=1))
        assert 1 in node.store
        assert node.locks.name == "node0"

    def test_capacity_noise_changes_rate(self, env):
        node = DataNode(env, 0, 0, 10.0)
        node.start_capacity_noise(
            random.Random(0), interval_s=1.0, relative_sigma=0.5
        )
        env.run(until=5)
        assert node.server.rate != 10.0
        assert node.server.rate >= 0.3 * node.base_rate

    def test_noise_floor_respected(self, env):
        node = DataNode(env, 0, 0, 10.0)
        node.start_capacity_noise(
            random.Random(0), interval_s=0.5, relative_sigma=10.0,
            floor_fraction=0.4,
        )
        env.run(until=20)
        assert node.server.rate >= 0.4 * node.base_rate

    def test_double_noise_rejected(self, env):
        node = DataNode(env, 0, 0, 10.0)
        node.start_capacity_noise(random.Random(0), 1.0, 0.1)
        with pytest.raises(RuntimeError):
            node.start_capacity_noise(random.Random(0), 1.0, 0.1)

    def test_invalid_noise_interval(self, env):
        node = DataNode(env, 0, 0, 10.0)
        with pytest.raises(ValueError):
            node.start_capacity_noise(random.Random(0), 0, 0.1)


class TestClusterConfig:
    def test_defaults_match_paper(self):
        config = ClusterConfig()
        assert config.node_count == 5
        assert config.max_connections == 100

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"node_count": 0},
            {"capacity_units_per_s": 0},
            {"max_connections": 0},
            {"capacity_noise_sigma": -1},
        ],
    )
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            ClusterConfig(**kwargs)


class TestCluster:
    def test_one_partition_per_node(self, env):
        cluster = Cluster(env, ClusterConfig(node_count=3))
        assert cluster.partition_ids == [0, 1, 2]
        for pid in cluster.partition_ids:
            assert cluster.node_for_partition(pid).partition_id == pid

    def test_total_capacity(self, env):
        cluster = Cluster(
            env, ClusterConfig(node_count=4, capacity_units_per_s=2.5)
        )
        assert cluster.total_capacity_units_per_s == 10.0

    def test_shared_deadlock_detector(self, env):
        cluster = Cluster(env, ClusterConfig(node_count=2))
        assert (
            cluster.nodes[0].locks.detector
            is cluster.nodes[1].locks.detector
        )

    def test_unknown_partition_raises(self, env):
        cluster = Cluster(env, ClusterConfig(node_count=2))
        with pytest.raises(ConfigError):
            cluster.node_for_partition(99)

    def test_unknown_node_raises(self, env):
        cluster = Cluster(env, ClusterConfig(node_count=2))
        with pytest.raises(ConfigError):
            cluster.node(5)

    def test_noise_requires_streams(self, env):
        with pytest.raises(ConfigError):
            Cluster(env, ClusterConfig(capacity_noise_sigma=0.2))

    def test_noise_with_streams(self, env):
        cluster = Cluster(
            env,
            ClusterConfig(capacity_noise_sigma=0.2,
                          capacity_noise_interval_s=1.0),
            RandomStreams(0),
        )
        env.run(until=3)
        rates = {node.server.rate for node in cluster.nodes}
        assert rates != {cluster.config.capacity_units_per_s}

    def test_tuples_per_partition(self, env):
        cluster = Cluster(env, ClusterConfig(node_count=2))
        cluster.nodes[0].store.insert(Record(key=1))
        assert cluster.tuples_per_partition() == {0: 1, 1: 0}
