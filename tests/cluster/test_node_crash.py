"""Tests for node crash/restart with WAL-based recovery."""

import pytest

from repro.cluster import DataNode
from repro.storage import Record


@pytest.fixture
def node(env):
    node = DataNode(env, node_id=0, partition_id=0,
                    capacity_units_per_s=10.0)
    node.enable_wal()
    return node


def committed_insert(node, txn_id, key, value):
    node.wal.log_begin(txn_id)
    record = Record(key=key, value=value)
    node.store.insert(record)
    node.wal.log_insert(txn_id, record)
    node.wal.log_commit(txn_id)


class TestCrash:
    def test_crash_wipes_volatile_state(self, node):
        committed_insert(node, 1, 5, 50)
        node.locks.acquire(9, 5, __import__(
            "repro.locking", fromlist=["LockMode"]
        ).LockMode.EXCLUSIVE)
        node.crash()
        assert node.is_down
        assert len(node.store) == 0
        assert node.locks.holders_of(5) == {}

    def test_restart_recovers_committed_data(self, node):
        committed_insert(node, 1, 5, 50)
        committed_insert(node, 2, 6, 60)
        node.crash()
        store = node.restart()
        assert not node.is_down
        assert store.read(5) == 50
        assert store.read(6) == 60

    def test_uncommitted_work_lost_on_crash(self, node):
        committed_insert(node, 1, 5, 50)
        node.wal.log_begin(2)
        node.store.insert(Record(key=7, value=70))
        node.wal.log_insert(2, Record(key=7, value=70))
        # crash before COMMIT
        node.crash()
        node.restart()
        assert 5 in node.store
        assert 7 not in node.store

    def test_double_crash_rejected(self, node):
        node.crash()
        with pytest.raises(RuntimeError):
            node.crash()

    def test_restart_without_crash_rejected(self, node):
        with pytest.raises(RuntimeError):
            node.restart()

    def test_crash_count_tracked(self, node):
        node.crash()
        node.restart()
        node.crash()
        node.restart()
        assert node.crash_count == 2

    def test_crash_without_wal_loses_everything(self, env):
        node = DataNode(env, 0, 0, 10.0)  # no WAL
        node.store.insert(Record(key=1, value=10))
        node.crash()
        node.restart()
        assert len(node.store) == 0

    def test_repeated_crash_recover_cycles_idempotent(self, node):
        committed_insert(node, 1, 5, 50)
        for _ in range(3):
            node.crash()
            node.restart()
        assert node.store.read(5) == 50

    def test_new_traffic_after_restart_journals(self, node):
        committed_insert(node, 1, 5, 50)
        node.crash()
        node.restart()
        committed_insert(node, 2, 6, 60)
        node.crash()
        node.restart()
        assert node.store.read(5) == 50
        assert node.store.read(6) == 60
