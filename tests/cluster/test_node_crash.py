"""Tests for node crash/restart with WAL-based recovery."""

import random

import pytest

from repro.cluster import DataNode
from repro.errors import NodeDownError
from repro.locking import LockMode
from repro.storage import CompactPartitionStore, Record


@pytest.fixture
def node(env):
    node = DataNode(env, node_id=0, partition_id=0,
                    capacity_units_per_s=10.0)
    node.enable_wal()
    return node


def committed_insert(node, txn_id, key, value):
    node.wal.log_begin(txn_id)
    record = Record(key=key, value=value)
    node.store.insert(record)
    node.wal.log_insert(txn_id, record)
    node.wal.log_commit(txn_id)


class TestCrash:
    def test_crash_wipes_volatile_state(self, node):
        committed_insert(node, 1, 5, 50)
        node.locks.acquire(9, 5, LockMode.EXCLUSIVE)
        node.crash()
        assert node.is_down
        assert len(node.store) == 0
        assert node.locks.holders_of(5) == {}

    def test_restart_recovers_committed_data(self, node):
        committed_insert(node, 1, 5, 50)
        committed_insert(node, 2, 6, 60)
        node.crash()
        store = node.restart()
        assert not node.is_down
        assert store.read(5) == 50
        assert store.read(6) == 60

    def test_uncommitted_work_lost_on_crash(self, node):
        committed_insert(node, 1, 5, 50)
        node.wal.log_begin(2)
        node.store.insert(Record(key=7, value=70))
        node.wal.log_insert(2, Record(key=7, value=70))
        # crash before COMMIT
        node.crash()
        node.restart()
        assert 5 in node.store
        assert 7 not in node.store

    def test_double_crash_rejected(self, node):
        node.crash()
        with pytest.raises(RuntimeError):
            node.crash()

    def test_restart_without_crash_rejected(self, node):
        with pytest.raises(RuntimeError):
            node.restart()

    def test_crash_count_tracked(self, node):
        node.crash()
        node.restart()
        node.crash()
        node.restart()
        assert node.crash_count == 2

    def test_crash_without_wal_loses_everything(self, env):
        node = DataNode(env, 0, 0, 10.0)  # no WAL
        node.store.insert(Record(key=1, value=10))
        node.crash()
        node.restart()
        assert len(node.store) == 0

    def test_repeated_crash_recover_cycles_idempotent(self, node):
        committed_insert(node, 1, 5, 50)
        for _ in range(3):
            node.crash()
            node.restart()
        assert node.store.read(5) == 50

    def test_new_traffic_after_restart_journals(self, node):
        committed_insert(node, 1, 5, 50)
        node.crash()
        node.restart()
        committed_insert(node, 2, 6, 60)
        node.crash()
        node.restart()
        assert node.store.read(5) == 50
        assert node.store.read(6) == 60


class TestCrashUnderLoad:
    """Crashes with transactions in flight (the fault-injection path)."""

    def test_pending_lock_wait_fails_with_node_down(self, env, node):
        node.locks.acquire(1, 5, LockMode.EXCLUSIVE)
        outcomes = []

        def waiter():
            try:
                yield node.locks.acquire(2, 5, LockMode.EXCLUSIVE)
                outcomes.append("granted")
            except NodeDownError as exc:
                outcomes.append(exc)

        env.process(waiter())
        env.run(until=1.0)
        node.crash()
        env.run(until=2.0)
        (outcome,) = outcomes
        assert isinstance(outcome, NodeDownError)
        assert outcome.node_id == node.node_id

    def test_in_service_job_killed_when_interruptible(self, env, node):
        node.enable_fault_injection()
        outcomes = []

        def job():
            try:
                yield from node.work(100.0)  # 10 s at 10 units/s
                outcomes.append("done")
            except NodeDownError as exc:
                outcomes.append(exc)

        env.process(job())
        env.run(until=1.0)
        node.crash()
        env.run(until=20.0)
        (outcome,) = outcomes
        assert isinstance(outcome, NodeDownError)
        assert env.now < 20.0 or outcomes != ["done"]

    def test_queued_job_killed_even_without_interruptibility(self, env, node):
        outcomes = []

        def job(units):
            try:
                yield from node.work(units)
                outcomes.append("done")
            except NodeDownError as exc:
                outcomes.append("down")

        env.process(job(50.0))   # occupies the single serving slot
        env.process(job(50.0))   # queued behind it
        env.run(until=1.0)
        node.crash()
        env.run(until=0.0 + 30.0)
        assert "down" in outcomes  # the queued job died with the node

    def test_work_on_down_node_rejected(self, env, node):
        node.crash()
        with pytest.raises(NodeDownError):
            next(node.work(1.0))

    def test_down_time_accounted(self, env, node):
        def script():
            yield env.timeout(5.0)
            node.crash()
            yield env.timeout(7.0)
            node.restart()

        env.process(script())
        env.run(until=20.0)
        assert node.total_down_time_s == pytest.approx(7.0)


class TestCapacityNoiseAcrossCrash:
    def test_noise_paused_while_down_and_resumed_after(self, env, node):
        node.start_capacity_noise(
            random.Random(0), interval_s=1.0, relative_sigma=0.5
        )
        env.run(until=3.5)
        assert node.server.rate != node.base_rate  # noise is live

        node.crash()
        rate_at_crash = node.server.rate
        env.run(until=10.0)
        # A dead node's rate must not keep fluctuating.
        assert node.server.rate == rate_at_crash

        node.restart()
        assert node.server.rate == node.base_rate  # restored on rejoin
        env.run(until=15.0)
        assert node.server.rate != node.base_rate  # noise ticking again

    def test_stop_capacity_noise_restores_base_rate(self, env, node):
        node.start_capacity_noise(
            random.Random(0), interval_s=1.0, relative_sigma=0.5
        )
        env.run(until=3.5)
        node.stop_capacity_noise()
        env.run(until=10.0)
        assert node.server.rate == node.base_rate

    def test_stopped_noise_does_not_resume_after_restart(self, env, node):
        node.start_capacity_noise(
            random.Random(0), interval_s=1.0, relative_sigma=0.5
        )
        node.stop_capacity_noise()
        node.crash()
        node.restart()
        env.run(until=10.0)
        assert node.server.rate == node.base_rate

    def test_double_start_rejected(self, env, node):
        node.start_capacity_noise(
            random.Random(0), interval_s=1.0, relative_sigma=0.5
        )
        with pytest.raises(RuntimeError):
            node.start_capacity_noise(
                random.Random(0), interval_s=1.0, relative_sigma=0.5
            )


class TestCompactStoreFactory:
    """Crash/restart must honour the injected store implementation."""

    @pytest.fixture
    def compact_node(self, env):
        node = DataNode(env, node_id=0, partition_id=0,
                        capacity_units_per_s=10.0,
                        store_factory=CompactPartitionStore)
        node.enable_wal()
        return node

    def test_node_builds_compact_store(self, compact_node):
        assert isinstance(compact_node.store, CompactPartitionStore)

    def test_crash_recovers_into_compact_store(self, compact_node):
        committed_insert(compact_node, 1, 5, 50)
        compact_node.wal.log_checkpoint(compact_node.store)
        committed_insert(compact_node, 2, 6, 60)
        compact_node.wal.log_begin(3)
        compact_node.store.insert(Record(key=7, value=70))
        compact_node.wal.log_insert(3, Record(key=7, value=70))
        compact_node.crash()  # before txn 3 commits
        assert isinstance(compact_node.store, CompactPartitionStore)
        assert len(compact_node.store) == 0
        store = compact_node.restart()
        assert isinstance(store, CompactPartitionStore)
        assert store.read(5) == 50
        assert store.read(6) == 60
        assert 7 not in store

    def test_cluster_propagates_store_factory(self, env):
        from repro.cluster import Cluster, ClusterConfig
        from repro.sim.random import RandomStreams

        cluster = Cluster(
            env,
            ClusterConfig(node_count=3, capacity_units_per_s=10.0),
            RandomStreams(0),
            store_factory=CompactPartitionStore,
        )
        assert all(
            isinstance(n.store, CompactPartitionStore)
            for n in cluster.nodes
        )
