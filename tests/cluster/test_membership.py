"""Tests for the cluster membership authority (node lifecycle)."""

import pytest

from repro.cluster import Cluster, ClusterConfig, NodeState
from repro.errors import ConfigError, MembershipError
from repro.sim import RandomStreams
from repro.storage import Record


def make_cluster(env, node_count=3, **kwargs):
    return Cluster(env, ClusterConfig(node_count=node_count, **kwargs))


class TestLifecycle:
    def test_seed_nodes_start_active(self, env):
        cluster = make_cluster(env)
        assert all(n.state is NodeState.ACTIVE for n in cluster.nodes)
        assert cluster.state_counts() == {
            "joining": 0, "active": 3, "draining": 0, "retired": 0,
        }

    def test_add_node_joins_with_next_id(self, env):
        cluster = make_cluster(env)
        node = cluster.add_node()
        assert node.node_id == 3
        assert node.partition_id == 3
        assert node.state is NodeState.JOINING
        assert cluster.node(3) is node
        assert cluster.node_for_partition(3) is node
        assert cluster.state_of(3) is NodeState.JOINING

    def test_full_lifecycle_walk(self, env):
        cluster = make_cluster(env)
        node = cluster.add_node()
        cluster.activate(node.node_id)
        assert node.state is NodeState.ACTIVE
        cluster.begin_drain(node.node_id)
        assert node.state is NodeState.DRAINING
        cluster.retire(node.node_id)
        assert node.state is NodeState.RETIRED
        assert node.retired

    def test_illegal_transitions_raise(self, env):
        cluster = make_cluster(env)
        node = cluster.add_node()
        # JOINING node cannot drain or retire.
        with pytest.raises(MembershipError):
            cluster.begin_drain(node.node_id)
        with pytest.raises(MembershipError):
            cluster.retire(node.node_id)
        # ACTIVE node cannot re-activate.
        with pytest.raises(MembershipError):
            cluster.activate(0)
        cluster.activate(node.node_id)
        cluster.begin_drain(node.node_id)
        with pytest.raises(MembershipError):
            cluster.begin_drain(node.node_id)
        cluster.retire(node.node_id)
        with pytest.raises(MembershipError):
            cluster.retire(node.node_id)

    def test_retire_refuses_while_tuples_resident(self, env):
        cluster = make_cluster(env)
        node = cluster.node(0)
        node.store.insert(Record(key=7))
        cluster.begin_drain(0)
        with pytest.raises(MembershipError, match="still resident"):
            cluster.retire(0)
        node.store.delete(7)
        cluster.retire(0)
        assert node.state is NodeState.RETIRED

    def test_unknown_node_id_raises(self, env):
        cluster = make_cluster(env)
        with pytest.raises(ConfigError):
            cluster.state_of(99)


class TestServingSets:
    def test_partition_ids_exclude_retired_only(self, env):
        cluster = make_cluster(env)
        joiner = cluster.add_node()
        cluster.begin_drain(0)
        assert cluster.partition_ids == [0, 1, 2, 3]
        cluster.retire(0)
        assert cluster.partition_ids == [1, 2, 3]
        assert joiner.partition_id in cluster.partition_ids

    def test_placement_targets_are_active_and_joining(self, env):
        cluster = make_cluster(env)
        cluster.add_node()
        cluster.begin_drain(1)
        assert cluster.placement_partition_ids == [0, 2, 3]
        cluster.retire(1)
        assert cluster.placement_partition_ids == [0, 2, 3]

    def test_capacity_excludes_retired(self, env):
        cluster = make_cluster(env, capacity_units_per_s=10.0)
        assert cluster.total_capacity_units_per_s == 30.0
        cluster.add_node()
        assert cluster.total_capacity_units_per_s == 40.0
        cluster.begin_drain(0)
        assert cluster.total_capacity_units_per_s == 40.0
        cluster.retire(0)
        assert cluster.total_capacity_units_per_s == 30.0

    def test_nodes_in_filters_by_state(self, env):
        cluster = make_cluster(env)
        joiner = cluster.add_node()
        cluster.begin_drain(2)
        assert [n.node_id for n in cluster.nodes_in(NodeState.ACTIVE)] == [0, 1]
        assert cluster.nodes_in(NodeState.JOINING) == [joiner]
        assert [
            n.node_id
            for n in cluster.nodes_in(NodeState.ACTIVE, NodeState.JOINING)
        ] == [0, 1, 3]


class TestWiring:
    def test_on_node_added_sees_fully_wired_node(self, env):
        cluster = make_cluster(env)
        seen = []
        cluster.on_node_added.append(lambda node: seen.append(node))
        node = cluster.add_node()
        assert seen == [node]
        assert cluster.node_for_partition(node.partition_id) is node

    def test_joiner_gets_capacity_noise_stream(self, env):
        streams = RandomStreams(7)
        cluster = Cluster(
            env,
            ClusterConfig(node_count=2, capacity_noise_sigma=0.5,
                          capacity_noise_interval_s=1.0),
            streams,
        )
        node = cluster.add_node()
        env.run(until=5)
        assert node.server.rate != node.base_rate

    def test_retire_stops_capacity_noise(self, env):
        streams = RandomStreams(7)
        cluster = Cluster(
            env,
            ClusterConfig(node_count=2, capacity_noise_sigma=0.5,
                          capacity_noise_interval_s=1.0),
            streams,
        )
        node = cluster.add_node()
        cluster.activate(node.node_id)
        cluster.begin_drain(node.node_id)
        cluster.retire(node.node_id)
        env.run(until=5)
        assert node.server.rate == node.base_rate

    def test_noise_without_streams_raises(self, env):
        with pytest.raises(ConfigError, match="RandomStreams"):
            Cluster(
                env, ClusterConfig(node_count=2, capacity_noise_sigma=0.5)
            )
