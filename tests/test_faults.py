"""Tests for the declarative fault-injection schedule and injector."""

import random

import pytest

from repro.cluster import Cluster, ClusterConfig
from repro.errors import ConfigError
from repro.faults import (
    FaultEvent,
    FaultInjector,
    FaultScheduleConfig,
    format_fault_schedule,
    parse_fault_schedule,
)


@pytest.fixture
def cluster(env):
    return Cluster(env, ClusterConfig(node_count=3, capacity_units_per_s=10.0))


class TestParsing:
    def test_deterministic_events(self):
        schedule = parse_fault_schedule("120:crash:2,180:restart:2")
        assert schedule.events == (
            FaultEvent(at_s=120.0, action="crash", node_id=2),
            FaultEvent(at_s=180.0, action="restart", node_id=2),
        )
        assert schedule.mtbf_s is None
        assert schedule.enabled

    def test_events_sorted_by_time(self):
        schedule = parse_fault_schedule("180:restart:2,120:crash:2")
        assert [e.at_s for e in schedule.events] == [120.0, 180.0]

    def test_stochastic(self):
        schedule = parse_fault_schedule("mtbf=300,mttr=30")
        assert schedule.mtbf_s == 300.0
        assert schedule.mttr_s == 30.0
        assert schedule.start_s == 0.0
        assert schedule.end_s is None
        assert schedule.enabled

    def test_stochastic_window(self):
        schedule = parse_fault_schedule("mtbf=300,mttr=30,start=100,end=900")
        assert schedule.start_s == 100.0
        assert schedule.end_s == 900.0

    @pytest.mark.parametrize("text", [
        "",
        "120:crash",                 # missing node field
        "120:explode:2",             # unknown action
        "abc:crash:2",               # non-numeric time
        "120:crash:x",               # non-numeric node
        "mtbf=300",                  # mttr missing
        "mtbf=300,mttr=0",           # non-positive mttr
        "mtbf=300,mttr=30,foo=1",    # unknown key
        "mtbf=300,mttr=abc",         # non-numeric value
        "120:crash:2,mtbf=300",      # mixed grammars
        "mtbf=300,mttr=30,start=50,end=40",  # window ends before start
        "-5:crash:2",                # negative time
    ])
    def test_malformed_raises_config_error(self, text):
        with pytest.raises(ConfigError):
            parse_fault_schedule(text)

    @pytest.mark.parametrize("text", [
        "120:crash:2,180:restart:2",
        "mtbf=300,mttr=30",
        "mtbf=300,mttr=30,start=100,end=900",
    ])
    def test_format_round_trips(self, text):
        assert parse_fault_schedule(format_fault_schedule(
            parse_fault_schedule(text)
        )) == parse_fault_schedule(text)

    def test_empty_schedule_disabled(self):
        assert not FaultScheduleConfig().enabled


class TestDeterministicInjection:
    def test_events_applied_at_scheduled_times(self, env, cluster):
        schedule = parse_fault_schedule("10:crash:1,25:restart:1")
        injector = FaultInjector(env, cluster, schedule)
        injector.start()
        env.run(until=11.0)
        assert cluster.node(1).is_down
        env.run(until=26.0)
        assert not cluster.node(1).is_down
        assert injector.crashes == 1
        assert injector.restarts == 1
        assert injector.skipped == 0

    def test_crash_of_down_node_skipped(self, env, cluster):
        schedule = parse_fault_schedule("10:crash:1,12:crash:1")
        injector = FaultInjector(env, cluster, schedule)
        injector.start()
        env.run(until=15.0)
        assert injector.crashes == 1
        assert injector.skipped == 1

    def test_restart_of_live_node_skipped(self, env, cluster):
        injector = FaultInjector(
            env, cluster, parse_fault_schedule("10:restart:0")
        )
        injector.start()
        env.run(until=15.0)
        assert injector.restarts == 0
        assert injector.skipped == 1

    def test_never_crashes_last_live_node(self, env, cluster):
        schedule = parse_fault_schedule("10:crash:0,11:crash:1,12:crash:2")
        injector = FaultInjector(env, cluster, schedule)
        injector.start()
        env.run(until=15.0)
        live = [n for n in cluster.nodes if not n.is_down]
        assert len(live) == 1  # node 2 spared
        assert injector.crashes == 2
        assert injector.skipped == 1

    def test_start_is_idempotent(self, env, cluster):
        injector = FaultInjector(
            env, cluster, parse_fault_schedule("10:crash:1")
        )
        injector.start()
        injector.start()  # second call must not double-schedule
        env.run(until=15.0)
        assert injector.crashes == 1

    def test_metrics_notified(self, env, cluster):
        class Notes:
            def __init__(self):
                self.down, self.up = [], []

            def note_node_down(self, node_id):
                self.down.append((round(self.env_now()), node_id))

            def note_node_up(self, node_id):
                self.up.append((round(self.env_now()), node_id))

        notes = Notes()
        notes.env_now = lambda: env.now
        injector = FaultInjector(
            env, cluster,
            parse_fault_schedule("10:crash:1,25:restart:1"),
            metrics=notes,
        )
        injector.start()
        env.run(until=30.0)
        assert notes.down == [(10, 1)]
        assert notes.up == [(25, 1)]


class TestStochasticInjection:
    def test_requires_rng(self, env, cluster):
        with pytest.raises(ConfigError):
            FaultInjector(
                env, cluster, parse_fault_schedule("mtbf=50,mttr=5")
            )

    def test_nodes_cycle_down_and_up(self, env, cluster):
        schedule = parse_fault_schedule("mtbf=40,mttr=5")
        injector = FaultInjector(
            env, cluster, schedule, rng=random.Random(7)
        )
        injector.start()
        env.run(until=2_000.0)
        assert injector.crashes > 0
        assert injector.restarts > 0
        # Crashed nodes always come back: at most one outstanding outage
        # per node beyond the restarts already performed.
        assert injector.crashes - injector.restarts <= len(cluster.nodes)

    def test_same_seed_same_fault_sequence(self, env, cluster):
        def run_one():
            local_env = type(env)()
            local_cluster = Cluster(
                local_env,
                ClusterConfig(node_count=3, capacity_units_per_s=10.0),
            )
            injector = FaultInjector(
                local_env, local_cluster,
                parse_fault_schedule("mtbf=40,mttr=5"),
                rng=random.Random(11),
            )
            injector.start()
            local_env.run(until=1_000.0)
            return (injector.crashes, injector.restarts, injector.skipped)

        assert run_one() == run_one()

    def test_window_bounds_new_crashes(self, env, cluster):
        schedule = parse_fault_schedule("mtbf=30,mttr=5,start=100,end=200")
        injector = FaultInjector(
            env, cluster, schedule, rng=random.Random(3)
        )
        injector.start()
        env.run(until=99.0)
        assert injector.crashes == 0  # nothing before the window opens
        env.run(until=5_000.0)
        assert injector.crashes > 0
        # Every node is back up once the window is well past.
        assert all(not node.is_down for node in cluster.nodes)
