"""Tests for the wait-for-graph deadlock detector."""

from repro.locking import DeadlockDetector, youngest_victim


class TestGraphMaintenance:
    def test_set_and_read_waits(self):
        detector = DeadlockDetector()
        detector.set_waits(1, [2, 3])
        assert detector.waits_of(1) == frozenset((2, 3))

    def test_self_edges_ignored(self):
        detector = DeadlockDetector()
        detector.set_waits(1, [1, 2])
        assert detector.waits_of(1) == frozenset((2,))

    def test_clear_waits(self):
        detector = DeadlockDetector()
        detector.set_waits(1, [2])
        detector.clear_waits(1)
        assert detector.waits_of(1) == frozenset()

    def test_empty_blockers_removes_node(self):
        detector = DeadlockDetector()
        detector.set_waits(1, [2])
        detector.set_waits(1, [])
        assert detector.waits_of(1) == frozenset()

    def test_remove_transaction_purges_both_directions(self):
        detector = DeadlockDetector()
        detector.set_waits(1, [2])
        detector.set_waits(3, [1])
        detector.remove_transaction(1)
        assert detector.waits_of(1) == frozenset()
        assert detector.waits_of(3) == frozenset()


class TestCycleDetection:
    def test_no_cycle(self):
        detector = DeadlockDetector()
        detector.set_waits(1, [2])
        detector.set_waits(2, [3])
        assert detector.find_cycle(1) is None

    def test_two_cycle(self):
        detector = DeadlockDetector()
        detector.set_waits(1, [2])
        detector.set_waits(2, [1])
        cycle = detector.find_cycle(1)
        assert cycle is not None
        assert set(cycle) == {1, 2}

    def test_long_cycle(self):
        detector = DeadlockDetector()
        for i in range(5):
            detector.set_waits(i, [(i + 1) % 5])
        cycle = detector.find_cycle(0)
        assert set(cycle) == {0, 1, 2, 3, 4}

    def test_cycle_not_reachable_from_start(self):
        detector = DeadlockDetector()
        detector.set_waits(1, [2])  # 1 -> 2 (no cycle from 1)
        detector.set_waits(3, [4])
        detector.set_waits(4, [3])  # separate cycle
        assert detector.find_cycle(1) is None
        assert detector.find_cycle(3) is not None

    def test_check_counts_and_picks_victim(self):
        detector = DeadlockDetector()
        detector.set_waits(1, [7])
        detector.set_waits(7, [1])
        victim = detector.check(1)
        assert victim == 7  # youngest
        assert detector.cycles_found == 1

    def test_check_without_cycle_returns_none(self):
        detector = DeadlockDetector()
        detector.set_waits(1, [2])
        assert detector.check(1) is None


class TestVictimPolicy:
    def test_youngest_is_max_id(self):
        assert youngest_victim((3, 9, 1)) == 9

    def test_custom_policy(self):
        detector = DeadlockDetector(victim_policy=min)
        detector.set_waits(1, [2])
        detector.set_waits(2, [1])
        assert detector.check(1) == 1


class TestWaitSites:
    def test_register_and_lookup(self):
        detector = DeadlockDetector()
        manager, key, event = object(), 5, object()
        detector.register_wait_site(1, manager, key, event)
        assert detector.wait_site(1) == (manager, key, event)

    def test_unregister(self):
        detector = DeadlockDetector()
        detector.register_wait_site(1, object(), 5, object())
        detector.unregister_wait_site(1)
        assert detector.wait_site(1) is None

    def test_remove_transaction_clears_site(self):
        detector = DeadlockDetector()
        detector.register_wait_site(1, object(), 5, object())
        detector.remove_transaction(1)
        assert detector.wait_site(1) is None
