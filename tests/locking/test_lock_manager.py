"""Tests for the 2PL lock manager."""

import pytest

from repro.errors import DeadlockAbort
from repro.locking import DeadlockDetector, LockManager, LockMode
from repro.types import AccessMode


@pytest.fixture
def lm(env):
    return LockManager(env, DeadlockDetector())


class TestModeMapping:
    def test_read_maps_to_shared(self):
        assert LockMode.for_access(AccessMode.READ) is LockMode.SHARED

    def test_write_maps_to_exclusive(self):
        assert LockMode.for_access(AccessMode.WRITE) is LockMode.EXCLUSIVE


class TestBasicGrants:
    def test_uncontended_grant_is_immediate(self, lm):
        event = lm.acquire(1, 100, LockMode.EXCLUSIVE)
        assert event.triggered and event.ok
        assert lm.holds(1, 100) is LockMode.EXCLUSIVE

    def test_shared_locks_coexist(self, lm):
        assert lm.acquire(1, 5, LockMode.SHARED).triggered
        assert lm.acquire(2, 5, LockMode.SHARED).triggered
        assert lm.holds(1, 5) is LockMode.SHARED
        assert lm.holds(2, 5) is LockMode.SHARED

    def test_exclusive_blocks_everyone(self, lm):
        lm.acquire(1, 5, LockMode.EXCLUSIVE)
        assert not lm.acquire(2, 5, LockMode.SHARED).triggered
        assert not lm.acquire(3, 5, LockMode.EXCLUSIVE).triggered
        assert lm.queue_length(5) == 2

    def test_shared_blocks_exclusive(self, lm):
        lm.acquire(1, 5, LockMode.SHARED)
        assert not lm.acquire(2, 5, LockMode.EXCLUSIVE).triggered

    def test_reentrant_same_mode(self, lm):
        lm.acquire(1, 5, LockMode.SHARED)
        again = lm.acquire(1, 5, LockMode.SHARED)
        assert again.triggered

    def test_exclusive_holder_may_rerequest_shared(self, lm):
        lm.acquire(1, 5, LockMode.EXCLUSIVE)
        assert lm.acquire(1, 5, LockMode.SHARED).triggered
        assert lm.holds(1, 5) is LockMode.EXCLUSIVE


class TestFifoOrdering:
    def test_release_grants_in_arrival_order(self, lm):
        lm.acquire(1, 5, LockMode.EXCLUSIVE)
        second = lm.acquire(2, 5, LockMode.EXCLUSIVE)
        third = lm.acquire(3, 5, LockMode.EXCLUSIVE)
        lm.release(1, 5)
        assert second.triggered and not third.triggered
        lm.release(2, 5)
        assert third.triggered

    def test_shared_batch_granted_together(self, lm):
        lm.acquire(1, 5, LockMode.EXCLUSIVE)
        reader_a = lm.acquire(2, 5, LockMode.SHARED)
        reader_b = lm.acquire(3, 5, LockMode.SHARED)
        lm.release(1, 5)
        assert reader_a.triggered and reader_b.triggered

    def test_new_shared_waits_behind_queued_exclusive(self, lm):
        """Writer starvation prevention: strict FIFO."""
        lm.acquire(1, 5, LockMode.SHARED)
        writer = lm.acquire(2, 5, LockMode.EXCLUSIVE)
        late_reader = lm.acquire(3, 5, LockMode.SHARED)
        assert not writer.triggered
        assert not late_reader.triggered  # behind the writer
        lm.release(1, 5)
        assert writer.triggered and not late_reader.triggered
        lm.release(2, 5)
        assert late_reader.triggered


class TestUpgrade:
    def test_sole_holder_upgrades_immediately(self, lm):
        lm.acquire(1, 5, LockMode.SHARED)
        upgrade = lm.acquire(1, 5, LockMode.EXCLUSIVE)
        assert upgrade.triggered
        assert lm.holds(1, 5) is LockMode.EXCLUSIVE

    def test_upgrade_waits_for_coholders(self, lm):
        lm.acquire(1, 5, LockMode.SHARED)
        lm.acquire(2, 5, LockMode.SHARED)
        upgrade = lm.acquire(1, 5, LockMode.EXCLUSIVE)
        assert not upgrade.triggered
        lm.release(2, 5)
        assert upgrade.triggered
        assert lm.holds(1, 5) is LockMode.EXCLUSIVE

    def test_upgrade_jumps_ahead_of_queue(self, lm):
        lm.acquire(1, 5, LockMode.SHARED)
        lm.acquire(2, 5, LockMode.SHARED)
        queued_writer = lm.acquire(3, 5, LockMode.EXCLUSIVE)
        upgrade = lm.acquire(1, 5, LockMode.EXCLUSIVE)
        lm.release(2, 5)
        assert upgrade.triggered
        assert not queued_writer.triggered
        lm.release(1, 5)
        assert queued_writer.triggered


class TestCancelAndReleaseAll:
    def test_cancel_removes_waiting_request(self, lm):
        lm.acquire(1, 5, LockMode.EXCLUSIVE)
        lm.acquire(2, 5, LockMode.EXCLUSIVE)
        lm.cancel(2, 5)
        assert lm.queue_length(5) == 0
        lm.release(1, 5)
        assert lm.holders_of(5) == {}

    def test_cancel_unblocks_later_waiters(self, lm):
        lm.acquire(1, 5, LockMode.EXCLUSIVE)
        lm.acquire(2, 5, LockMode.EXCLUSIVE)
        third = lm.acquire(3, 5, LockMode.EXCLUSIVE)
        lm.release(1, 5)  # grants txn 2... no wait: FIFO grants 2 first
        lm.cancel(2, 5)  # cancelling a *waiting* request is a no-op here
        assert lm.holds(2, 5) is LockMode.EXCLUSIVE or third.triggered

    def test_release_all_frees_everything(self, lm):
        lm.acquire(1, 5, LockMode.EXCLUSIVE)
        lm.acquire(1, 6, LockMode.SHARED)
        waiting = lm.acquire(1, 7, LockMode.EXCLUSIVE)
        lm.acquire(2, 7, LockMode.EXCLUSIVE)  # not granted; 2 waits
        lm.release_all(1)
        assert lm.locked_keys(1) == frozenset()
        assert lm.holders_of(5) == {}
        assert not lm.is_waiting(1)

    def test_release_unheld_is_noop(self, lm):
        lm.release(1, 999)  # must not raise

    def test_locked_keys_snapshot(self, lm):
        lm.acquire(1, 5, LockMode.SHARED)
        lm.acquire(1, 6, LockMode.EXCLUSIVE)
        assert lm.locked_keys(1) == frozenset((5, 6))


class TestCounters:
    def test_grants_and_waits_counted(self, lm):
        lm.acquire(1, 5, LockMode.EXCLUSIVE)
        lm.acquire(2, 5, LockMode.EXCLUSIVE)
        assert lm.grants == 1
        assert lm.waits == 1
        lm.release(1, 5)
        assert lm.grants == 2


class TestDeadlockIntegration:
    def test_two_party_deadlock_aborts_youngest(self, env):
        detector = DeadlockDetector()
        lm_a = LockManager(env, detector, name="A")
        lm_b = LockManager(env, detector, name="B")
        lm_a.acquire(1, 10, LockMode.EXCLUSIVE)
        lm_b.acquire(2, 20, LockMode.EXCLUSIVE)
        wait_1 = lm_b.acquire(1, 20, LockMode.EXCLUSIVE)  # 1 waits on 2
        wait_2 = lm_a.acquire(2, 10, LockMode.EXCLUSIVE)  # 2 waits on 1
        assert wait_2.failed
        assert isinstance(wait_2.value, DeadlockAbort)
        wait_2.defused = True
        assert not wait_1.triggered  # survivor still waits
        lm_a.release_all(2)
        lm_b.release_all(2)
        assert wait_1.triggered and wait_1.ok

    def test_victim_cycle_recorded(self, env):
        detector = DeadlockDetector()
        lm = LockManager(env, detector)
        lm.acquire(1, 10, LockMode.EXCLUSIVE)
        lm.acquire(2, 20, LockMode.EXCLUSIVE)
        lm.acquire(1, 20, LockMode.EXCLUSIVE)
        bad = lm.acquire(2, 10, LockMode.EXCLUSIVE)
        assert bad.failed
        bad.defused = True
        assert set(bad.value.cycle) == {1, 2}
        assert lm.deadlock_aborts == 1

    def test_shared_locks_do_not_deadlock(self, env):
        detector = DeadlockDetector()
        lm = LockManager(env, detector)
        lm.acquire(1, 10, LockMode.SHARED)
        lm.acquire(2, 20, LockMode.SHARED)
        assert lm.acquire(1, 20, LockMode.SHARED).triggered
        assert lm.acquire(2, 10, LockMode.SHARED).triggered
        assert detector.cycles_found == 0

    def test_three_party_cycle(self, env):
        detector = DeadlockDetector()
        lm = LockManager(env, detector)
        for txn, key in ((1, 10), (2, 20), (3, 30)):
            lm.acquire(txn, key, LockMode.EXCLUSIVE)
        lm.acquire(1, 20, LockMode.EXCLUSIVE)
        lm.acquire(2, 30, LockMode.EXCLUSIVE)
        closing = lm.acquire(3, 10, LockMode.EXCLUSIVE)
        assert closing.failed  # 3 is youngest -> victim
        closing.defused = True

    def test_no_detector_means_no_abort(self, env):
        lm = LockManager(env, detector=None)
        lm.acquire(1, 10, LockMode.EXCLUSIVE)
        lm.acquire(2, 20, LockMode.EXCLUSIVE)
        wait_1 = lm.acquire(1, 20, LockMode.EXCLUSIVE)
        wait_2 = lm.acquire(2, 10, LockMode.EXCLUSIVE)
        assert not wait_1.triggered and not wait_2.triggered
