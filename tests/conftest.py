"""Shared pytest fixtures; also makes the suite runnable uninstalled."""

import pathlib
import sys

SRC = pathlib.Path(__file__).resolve().parent.parent / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

import pytest  # noqa: E402

from repro.sim import Environment  # noqa: E402


@pytest.fixture
def env() -> Environment:
    """A fresh simulation environment."""
    return Environment()
